#!/usr/bin/env python3
"""Concurrent load generator for the routing service (stdlib only).

Drives a running ``repro-wasn serve`` instance with a deterministic,
seeded query stream and reports throughput and latency as JSON::

    PYTHONPATH=src python -m repro.cli serve --port 0 --port-file /tmp/p &
    python tools/loadgen.py --server 127.0.0.1:$(cat /tmp/p) \
        --clients 8 --requests 50 --mix route=3,route_pairs=1

Two loop disciplines:

* **closed** (default): each client issues its next request when the
  previous one answers — measures the server's sustainable throughput
  under a fixed concurrency level;
* **open**: each client fires requests on a fixed schedule
  (``--rate`` per second per client) regardless of responses —
  measures latency under offered load, the discipline that actually
  exposes queueing collapse.

Determinism: the query *content* (kinds, source/destination pairs) is
a pure function of ``--seed``; latencies of course are not.  The
session is created (idempotently) before any load, so runs against a
warm server measure serving, not materialisation.

``--verify`` additionally asks the server for one ``route_pairs``
answer and replays the same call on a direct in-process
:class:`repro.api.Session`, exiting non-zero on any difference — the
script doubles as an end-to-end identity check for CI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

DEFAULT_SCENARIO = {
    "deployment_model": "IA",
    "node_count": 250,
    "seed": 11,
    "routers": ["GF", "SLGF2"],
    "routes_per_network": 20,
}


class HttpClient:
    """One keep-alive HTTP/1.1 connection speaking JSON."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None

    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        if self._writer is None:
            await self.connect()
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        ).encode()
        self._writer.write(head + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value)
        raw = await self._reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else {})


def _percentile(sorted_values: list[float], p: float) -> float:
    """Exact (nearest-rank) percentile over the collected latencies."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(p * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class _Recorder:
    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.statuses: dict[int, int] = {}
        self.kinds: dict[str, int] = {}

    def note(self, kind: str, status: int, elapsed: float) -> None:
        self.latencies.append(elapsed)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.kinds[kind] = self.kinds.get(kind, 0) + 1


def _pick_query(
    rng: random.Random,
    mix: list[tuple[str, float]],
    node_ids: list[int],
    routers: list[str],
    session_id: str,
    pair_count: int,
) -> tuple[str, str, dict]:
    """One deterministic query: (kind, path, body)."""
    total = sum(weight for _, weight in mix)
    roll = rng.random() * total
    kind = mix[-1][0]
    for name, weight in mix:
        roll -= weight
        if roll <= 0:
            kind = name
            break
    if kind == "route":
        source, destination = rng.sample(node_ids, 2)
        return kind, f"/sessions/{session_id}/route", {
            "source": source,
            "destination": destination,
            "router": rng.choice(routers),
        }
    return kind, f"/sessions/{session_id}/route_pairs", {
        "count": pair_count,
    }


async def _closed_loop_client(
    index: int, args, session_id: str, node_ids: list[int],
    routers: list[str], recorder: _Recorder,
) -> None:
    rng = random.Random(args.seed * 7919 + index)
    client = HttpClient(args.host, args.port)
    try:
        for _ in range(args.requests):
            kind, path, body = _pick_query(
                rng, args.mix, node_ids, routers, session_id, args.count
            )
            started = time.perf_counter()
            status, _ = await client.request("POST", path, body)
            recorder.note(kind, status, time.perf_counter() - started)
    finally:
        await client.close()


async def _open_loop_client(
    index: int, args, session_id: str, node_ids: list[int],
    routers: list[str], recorder: _Recorder,
) -> None:
    """Fire on schedule; each in-flight request gets its own task."""
    rng = random.Random(args.seed * 7919 + index)
    interval = 1.0 / args.rate
    pending: list[asyncio.Task] = []

    async def fire(kind: str, path: str, body: dict) -> None:
        client = HttpClient(args.host, args.port)
        try:
            started = time.perf_counter()
            status, _ = await client.request("POST", path, body)
            recorder.note(kind, status, time.perf_counter() - started)
        except (ConnectionError, OSError):
            recorder.note(kind, 0, 0.0)
        finally:
            await client.close()

    next_at = time.perf_counter()
    for _ in range(args.requests):
        now = time.perf_counter()
        if next_at > now:
            await asyncio.sleep(next_at - now)
        next_at += interval
        pending.append(
            asyncio.ensure_future(
                fire(*_pick_query(rng, args.mix, node_ids, routers,
                                  session_id, args.count))
            )
        )
    await asyncio.gather(*pending)


async def _run(args) -> dict:
    setup = HttpClient(args.host, args.port)
    status, created = await setup.request(
        "POST", "/sessions", {"scenario": args.scenario}
    )
    if status not in (200, 201):
        raise SystemExit(
            f"loadgen: session creation failed ({status}): {created}"
        )
    session_id = created["session"]
    node_ids = created["node_ids"]
    routers = created["routers"]
    recorder = _Recorder()
    client_fn = (
        _open_loop_client if args.mode == "open" else _closed_loop_client
    )
    started = time.perf_counter()
    await asyncio.gather(
        *(
            client_fn(i, args, session_id, node_ids, routers, recorder)
            for i in range(args.clients)
        )
    )
    elapsed = time.perf_counter() - started
    latencies = sorted(recorder.latencies)
    ok = sum(
        count
        for status, count in recorder.statuses.items()
        if 200 <= status < 300
    )
    report = {
        "mode": args.mode,
        "clients": args.clients,
        "requests": len(latencies),
        "ok": ok,
        "statuses": {
            str(status): count
            for status, count in sorted(recorder.statuses.items())
        },
        "kinds": recorder.kinds,
        "elapsed_s": elapsed,
        "qps": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": _percentile(latencies, 0.50) * 1e3,
            "p90": _percentile(latencies, 0.90) * 1e3,
            "p99": _percentile(latencies, 0.99) * 1e3,
            "mean": (
                sum(latencies) / len(latencies) * 1e3 if latencies else 0.0
            ),
            "max": latencies[-1] * 1e3 if latencies else 0.0,
        },
    }
    if args.verify:
        report["verified"] = await _verify(setup, session_id, args)
    await setup.close()
    return report


async def _verify(client: HttpClient, session_id: str, args) -> bool:
    """Server answer == direct in-process Session answer, bit for bit."""
    status, answer = await client.request(
        "POST",
        f"/sessions/{session_id}/route_pairs",
        {"count": args.count},
    )
    if status != 200:
        print(f"loadgen: verify request failed ({status}): {answer}",
              file=sys.stderr)
        return False
    from repro.api import Session  # deferred: needs PYTHONPATH=src
    from repro.serve.wire import scenario_from_dict

    session = Session(scenario_from_dict(args.scenario))
    direct = session.route_pairs(count=args.count).to_dict()
    if direct != answer["routeset"]:
        print("loadgen: served routeset differs from direct Session",
              file=sys.stderr)
        return False
    return True


def _parse_mix(text: str) -> list[tuple[str, float]]:
    mix = []
    for part in text.split(","):
        name, _, weight = part.partition("=")
        name = name.strip()
        if name not in ("route", "route_pairs"):
            raise argparse.ArgumentTypeError(
                f"unknown query kind {name!r} (route, route_pairs)"
            )
        mix.append((name, float(weight) if weight else 1.0))
    return mix


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Seeded load generator for repro-wasn serve."
    )
    parser.add_argument(
        "--server",
        default="127.0.0.1:8707",
        help="host:port of a running repro-wasn serve",
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--requests",
        type=int,
        default=50,
        help="requests per client",
    )
    parser.add_argument(
        "--mode", choices=["closed", "open"], default="closed"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="open loop: requests per second per client",
    )
    parser.add_argument(
        "--mix",
        type=_parse_mix,
        default=[("route", 3.0), ("route_pairs", 1.0)],
        help="query mix weights, e.g. route=3,route_pairs=1",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=10,
        help="pairs per route_pairs query",
    )
    parser.add_argument("--seed", type=int, default=2009)
    parser.add_argument(
        "--scenario",
        type=Path,
        default=None,
        help="scenario JSON document (default: built-in small IA)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="after the load, assert server == direct Session "
        "(needs repro importable, e.g. PYTHONPATH=src)",
    )
    parser.add_argument(
        "--fail-on-error",
        action="store_true",
        help="exit 1 if any request answered outside 2xx",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    host, _, port = args.server.partition(":")
    args.host = host or "127.0.0.1"
    try:
        args.port = int(port)
    except ValueError:
        print(f"loadgen: bad --server {args.server!r} (want host:port)",
              file=sys.stderr)
        return 2
    if args.scenario is not None:
        args.scenario = json.loads(args.scenario.read_text("utf-8"))
    else:
        args.scenario = dict(DEFAULT_SCENARIO)
    report = asyncio.run(_run(args))
    print(json.dumps(report, indent=2))
    if args.verify and not report.get("verified"):
        return 1
    if args.fail_on_error and report["ok"] != report["requests"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
