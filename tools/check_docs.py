#!/usr/bin/env python3
"""Docs link check: every path/module the docs mention must exist.

Scans ``README.md`` and ``docs/*.md`` for

* backtick-quoted repository paths (``src/repro/...py``,
  ``benchmarks/...``, ``examples/...``, ``docs/...``, ``tests/...``,
  ``tools/...``, top-level ``*.md`` / ``*.py``), and
* backtick-quoted dotted module references (``repro.experiments.engine``,
  ``repro.cli:main``),

and fails (exit 1) listing anything that does not resolve to a real
file or directory.  Run from anywhere::

    python tools/check_docs.py

Wired into CI next to the test matrix, and into the test suite via
``tests/test_docs.py``, so documentation rot fails the build.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Directories whose mention in docs implies a checkable path.
_CHECKED_PREFIXES = (
    "src/",
    "docs/",
    "benchmarks/",
    "examples/",
    "tests/",
    "tools/",
    ".github/",
)

_BACKTICK = re.compile(r"`([^`\s]+)`")
_MODULE = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)*(:[A-Za-z_]\w*)?$")


def _doc_files() -> list[Path]:
    docs = [ROOT / "README.md"]
    docs.extend(sorted((ROOT / "docs").glob("*.md")))
    return [path for path in docs if path.exists()]


def _is_checked_path(candidate: str) -> bool:
    if "*" in candidate:  # glob patterns describe families, not files
        return False
    if candidate.startswith(_CHECKED_PREFIXES):
        return True
    # Top-level files like README.md / setup.py / ROADMAP.md.
    return "/" not in candidate and candidate.endswith((".md", ".py"))


def _module_exists(dotted: str) -> bool:
    module = dotted.split(":", 1)[0]
    base = ROOT / "src" / Path(*module.split("."))
    return base.with_suffix(".py").exists() or base.is_dir()


def check() -> list[str]:
    """All broken references, as ``file: reference`` strings."""
    broken = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(ROOT)
        for match in _BACKTICK.finditer(text):
            candidate = match.group(1)
            if _MODULE.match(candidate):
                if not _module_exists(candidate):
                    broken.append(f"{rel}: module `{candidate}`")
            elif _is_checked_path(candidate):
                if not (ROOT / candidate).exists():
                    broken.append(f"{rel}: path `{candidate}`")
    return broken


def main() -> int:
    broken = check()
    docs = ", ".join(str(d.relative_to(ROOT)) for d in _doc_files())
    if broken:
        print(f"Broken documentation references ({docs}):")
        for item in broken:
            print(f"  {item}")
        return 1
    print(f"docs link check OK ({docs})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
