#!/usr/bin/env python3
"""Cross-process determinism check for the lossy-radio channel layer.

The channel's contract is that every draw is a pure function of the
scenario seed — immune to Python hash randomisation, process boundaries
and the scalar/numpy backend split.  This script is the executable
proof CI runs:

* ``--digest`` (worker mode) evaluates a fixed grid of lossy scenarios
  (log-normal shadowing crossed with every fault model) through
  :func:`repro.api.run_scenario` and prints one SHA-256 over the
  canonical JSON of every route record, transmissions included;
* the default (driver) mode spawns that worker twice in *fresh*
  interpreters with different ``PYTHONHASHSEED`` values and fails
  unless the digests are bit-identical — then repeats the comparison
  across ``backend="scalar"`` and ``backend="numpy"`` when numpy is
  importable (skipped, loudly, when it is not).

Run from the repository root::

    PYTHONPATH=src python tools/check_lossy_determinism.py

Exit status 0 means every digest matched.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def build_grid():
    """The fixed lossy grid: shadowing crossed with every fault model."""
    from repro.api import (
        DeadLinks,
        DutyCycle,
        IntermittentLinks,
        LogNormalShadowing,
        Scenario,
    )

    base = Scenario(
        node_count=150,
        routes_per_network=8,
        networks=2,
        seed=77,
        routers=("GF", "SLGF2"),
        channel=LogNormalShadowing(sigma=6.0),
    )
    return [
        base,
        base.with_(link_faults=IntermittentLinks()),
        base.with_(link_faults=DutyCycle(on_slots=3, period=5)),
        base.with_(link_faults=DeadLinks(count=8)),
    ]


def digest(backend: str) -> str:
    from repro.api import run_scenario

    blob = hashlib.sha256()
    for scenario in build_grid():
        routes = run_scenario(scenario, backend=backend)
        blob.update(
            json.dumps(routes.to_dicts(), sort_keys=True).encode()
        )
    return blob.hexdigest()


def spawn(backend: str, hash_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(ROOT / "src")
    out = subprocess.run(
        [sys.executable, __file__, "--digest", "--backend", backend],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        cwd=ROOT,
    ).stdout.strip()
    print(f"  backend={backend} PYTHONHASHSEED={hash_seed}: {out}")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--digest", action="store_true", help="worker mode")
    parser.add_argument("--backend", default="scalar")
    args = parser.parse_args()

    if args.digest:
        sys.path.insert(0, str(ROOT / "src"))
        print(digest(args.backend))
        return 0

    print("lossy determinism: scalar backend across fresh processes")
    first = spawn("scalar", 0)
    second = spawn("scalar", 12345)
    if first != second:
        print("FAIL: scalar digests diverged across processes")
        return 1

    try:
        import numpy  # noqa: F401

        has_numpy = True
    except ImportError:
        has_numpy = False

    if has_numpy:
        print("lossy determinism: numpy backend must match scalar")
        vector = spawn("numpy", 999)
        if vector != first:
            print("FAIL: numpy backend digest diverged from scalar")
            return 1
    else:
        print("numpy not importable: backend comparison skipped")

    print("OK: lossy scenarios reproduce bit-identically")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
