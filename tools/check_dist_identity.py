#!/usr/bin/env python3
"""Distributed-identity check: sharded == local, even through a kill.

The headline guarantee of :mod:`repro.dist` is that a Study executed
as shard plans by worker subprocesses, merged back through cache
bundles, produces a StudyResult **bit-identical** to a plain local
``Study.run()`` — and that a worker killed mid-shard costs nothing but
the interrupted cell.  This script is the executable proof CI runs:

1. evaluate a fixed multi-axis study locally into a fresh cache and
   digest the canonical JSON of its full StudyResult;
2. compile the same study into a 3-shard plan, start one shard's
   worker subprocess and ``SIGKILL`` it right after its first cell
   lands in the bundle — the simulated host failure;
3. run the full :class:`~repro.dist.driver.LocalSubprocessDriver`
   fleet over the same work directory, so the killed shard *resumes*
   its partial bundle (verified: at least one cell is skipped, not
   recomputed), merge the bundles, assemble the StudyResult;
4. fail (exit 1) unless both digests are byte-for-byte equal.

Run from the repository root::

    PYTHONPATH=src python tools/check_dist_identity.py
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
sys.path.insert(0, str(SRC))


def build_study():
    from repro.api import Scenario, Study

    base = Scenario(
        node_count=150,
        networks=1,
        routes_per_network=6,
        seed=41,
        routers=("GF", "SLGF2"),
    )
    return Study(base, nodes=(150, 200), seeds=(41, 42, 43))


def digest_result(result) -> str:
    payload = json.dumps(result.to_dicts(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def kill_one_worker_mid_shard(shard_path: Path, bundle_dir: Path) -> None:
    """Start a worker on one shard, SIGKILL it after its first cell."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "dist-worker",
            "--plan",
            str(shard_path),
            "--bundle",
            str(bundle_dir),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert process.stdout is not None
    killed = False
    for line in process.stdout:
        event = json.loads(line)
        if event.get("ev") == "unit":
            # The entry for this cell is on disk (entries are written
            # before the event) — now the "host" dies, mid-shard.
            process.send_signal(signal.SIGKILL)
            killed = True
            break
    process.wait()
    if not killed:
        raise SystemExit(
            "worker finished before it could be killed — grow the shard"
        )
    entries = list((bundle_dir / "entries").glob("*.json"))
    if not entries:
        raise SystemExit("killed worker left no entries to resume from")
    print(
        f"[check] killed worker on {shard_path.name} after "
        f"{len(entries)} cell(s); partial bundle left behind"
    )


def main() -> int:
    from repro.dist import LocalSubprocessDriver, run_study
    from repro.dist.driver import ShardMonitor, execute_plan
    from repro.dist.plan import compile_plan, shard_plan, write_plan
    from repro.experiments import ResultCache

    with tempfile.TemporaryDirectory(prefix="repro_dist_check_") as tmp:
        tmp = Path(tmp)

        print("[check] local baseline run ...")
        local = build_study().run(cache=ResultCache(tmp / "local_cache"))
        local_digest = digest_result(local)
        print(f"[check] local digest {local_digest[:16]}…")

        dist_cache = ResultCache(tmp / "dist_cache")
        plan = compile_plan(build_study(), cache=dist_cache)
        workdir = tmp / "work"
        shards = shard_plan(plan, 3)
        shard_paths = [
            write_plan(sub, workdir / "shards" / f"{sub.shard}.json")
            for sub in shards
        ]

        # Simulated host failure on the first shard.
        kill_one_worker_mid_shard(
            shard_paths[0], workdir / "bundles" / "shard_0"
        )

        print("[check] dispatching full fleet (killed shard resumes) ...")
        monitor = ShardMonitor(
            progress=lambda event: print(f"  {event}"), total=plan.total
        )
        driver = LocalSubprocessDriver(
            extra_env={"PYTHONPATH": str(SRC)}
        )
        execute_plan(
            plan, driver, dist_cache, shards=3, workdir=workdir,
            monitor=monitor,
        )

        done = json.loads(
            (workdir / "bundles" / "shard_0" / "done.json").read_text()
        )
        if done["skipped"] < 1:
            print(
                "[check] FAIL: resumed shard recomputed every cell "
                f"(done.json: {done})"
            )
            return 1
        print(
            f"[check] shard_0 resumed: {done['skipped']} cell(s) reused, "
            f"{done['computed']} computed after the kill"
        )

        dist = build_study().run(cache=dist_cache, progress=None)
        dist_digest = digest_result(dist)
        print(f"[check] distributed digest {dist_digest[:16]}…")

        if dist_digest != local_digest:
            print(
                "[check] FAIL: distributed result differs from the "
                f"local run ({dist_digest[:16]}… vs {local_digest[:16]}…)"
            )
            return 1
        print(
            f"[check] OK: {plan.total} cells bit-identical across "
            "local and sharded execution, through a worker kill"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
