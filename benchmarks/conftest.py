"""Shared fixtures for the benchmark suite.

The figure benches share one evaluation sweep per deployment model
(running it once instead of once per figure), default to the quick
configuration, and switch to the paper-scale sweep when ``REPRO_FULL=1``
is set.  Regenerated tables/CSVs are written under
``benchmarks/results/`` so a benchmark run leaves the paper's numbers
on disk.

The shared sweeps deliberately go through the default result cache
(``.repro_cache/``): running ``bench_fig5.py`` then ``bench_fig6.py``
in separate pytest invocations computes the sweep once, which at
paper scale is the difference between minutes and milliseconds.  The
cache key includes a digest of the package source, so it can never
serve results from edited code; set ``REPRO_CACHE=0`` to force fresh
computation (as CI does).  Note the *timed* portions of the benches
never touch this cache — only the session fixtures do.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import Study
from repro.experiments import active_config


def _density_sweep(config, model):
    """One model's classic density sweep via the Study pipeline."""
    return (
        Study.from_config(config, (model,)).run().sweep_result(model)
    )


@pytest.fixture(scope="session")
def config():
    return active_config()


@pytest.fixture(scope="session")
def ia_sweep(config):
    return _density_sweep(config, "IA")


@pytest.fixture(scope="session")
def fa_sweep(config):
    return _density_sweep(config, "FA")


@pytest.fixture(scope="session")
def results_dir():
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path
