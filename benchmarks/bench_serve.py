"""SERVE — the service layer must stay close to the in-process facade.

Two pinned contracts for :mod:`repro.serve`:

* **Serving efficiency.**  A resident session answering a concurrent
  closed-loop ``route_pairs`` stream over real HTTP must sustain at
  least ``PINNED_SERVE_EFFICIENCY`` of the routes/second a direct
  in-process ``Session.route_pairs`` loop achieves single-threaded.
  The gap is the full service stack — HTTP parsing, JSON encoding of
  every route, queueing, micro-batch scheduling, executor handoff —
  and it must not silently grow.
* **O(1) resident startup.**  ``Session.clone`` must load a
  routing-side variant at least ``PINNED_CLONE_SPEEDUP`` times faster
  than materialising the scenario from scratch — the mechanism that
  makes loading the Nth variant of a resident network effectively
  free (``SessionManager`` uses it for ``POST /sessions``).

Identity is asserted before any timing: a benchmark of wrong answers
is meaningless.  Regression policy matches ``bench_core.py``: pins sit
at the measured-on-CI threshold; a run below ``pin * 0.9`` fails.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import threading
import time

from repro.api import Scenario, Session
from repro.serve import RoutingServer, ServerConfig, scenario_to_dict

_TOLERANCE = 0.9

#: Measured ~0.55-0.75 on a shared runner (8 clients, 120-node
#: network); pinned well below so only a structural regression —
#: per-request materialisation, lost batching, serialization blowup —
#: can trip it.
PINNED_SERVE_EFFICIENCY = 0.25

#: Measured >1000x (clone is a constructor call; materialising 800
#: nodes takes tens of milliseconds).  Pinned at the ISSUE's floor
#: order: anything under 10x means the clone re-materialised.
PINNED_CLONE_SPEEDUP = 10.0

SCENARIO = Scenario(
    node_count=120,
    seed=5,
    routes_per_network=10,
    routers=("GF", "SLGF2"),
)
CLIENTS = 8


class _Server:
    """RoutingServer on its own loop thread (see tests/serve)."""

    def __init__(self) -> None:
        self.server = RoutingServer(
            ServerConfig(port=0, flush_interval=0.001)
        )
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Server":
        self._thread.start()
        assert self._ready.wait(30)
        return self

    def __exit__(self, *exc) -> None:
        self.loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def request(self, method: str, path: str, body=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=60
        )
        try:
            conn.request(
                method,
                path,
                body=None if body is None else json.dumps(body),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()


def _closed_loop(port: int, path: str, body: dict, requests: int) -> None:
    """One keep-alive client issuing ``requests`` sequential queries."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    payload = json.dumps(body)
    try:
        for _ in range(requests):
            conn.request(
                "POST",
                path,
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 200
            response.read()
    finally:
        conn.close()


def test_serve_throughput_floor(results_dir):
    direct = Session(SCENARIO)
    reference = direct.route_pairs().to_dict()
    routes_per_call = len(reference["routes"])

    with _Server() as served:
        status, created = served.request(
            "POST", "/sessions", {"scenario": scenario_to_dict(SCENARIO)}
        )
        assert status == 201, created
        path = f"/sessions/{created['session']}/route_pairs"

        # Identity before timing: the served stream must be the direct
        # answer, bit for bit, or the throughput number is fiction.
        status, body = served.request("POST", path, {})
        assert status == 200
        assert body["routeset"] == reference

        requests = 40 if os.environ.get("REPRO_FULL", "") == "1" else 15

        def served_run() -> float:
            threads = [
                threading.Thread(
                    target=_closed_loop,
                    args=(served.server.port, path, {}, requests),
                )
                for _ in range(CLIENTS)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            return CLIENTS * requests * routes_per_call / elapsed

        def direct_run() -> float:
            start = time.perf_counter()
            for _ in range(CLIENTS * requests):
                direct.route_pairs()
            elapsed = time.perf_counter() - start
            return CLIENTS * requests * routes_per_call / elapsed

        # Interleaved best-of: a load spike hits both rivals.
        served_rps = direct_rps = 0.0
        for _ in range(3):
            served_rps = max(served_rps, served_run())
            direct_rps = max(direct_rps, direct_run())

    efficiency = served_rps / direct_rps if direct_rps else float("inf")
    floor = PINNED_SERVE_EFFICIENCY * _TOLERANCE
    report = "\n".join(
        [
            f"route_pairs stream, {CLIENTS} closed-loop HTTP clients "
            f"vs 1 in-process thread (n={SCENARIO.node_count})",
            f"direct facade:   {direct_rps:10.0f} routes/s",
            f"served (HTTP):   {served_rps:10.0f} routes/s",
            f"efficiency:      {efficiency:10.2f}x "
            f"(pinned {PINNED_SERVE_EFFICIENCY}x, floor {floor:.3f}x)",
        ]
    )
    (results_dir / "serve.txt").write_text(report + "\n")
    print()
    print(report)
    assert efficiency >= floor, report


def test_clone_startup_is_constant_time(results_dir):
    """Loading a routing-side variant must not re-materialise."""
    big = Scenario(
        node_count=800,
        seed=7,
        routes_per_network=5,
        routers=("GF",),
    )
    resident = Session(big)
    resident.graph  # force materialisation outside the timed region

    variant_changes = dict(routers=("SLGF2",), routes_per_network=9)

    # Identity first: the clone answers exactly like a fresh build.
    fresh = Session(big.with_(**variant_changes))
    clone = resident.clone(**variant_changes)
    assert clone.instance is resident.instance
    assert clone.route_pairs() == fresh.route_pairs()

    repeats = 7 if os.environ.get("REPRO_FULL", "") == "1" else 3
    best_fresh = best_clone = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        session = Session(big.with_(**variant_changes))
        session.graph
        best_fresh = min(best_fresh, time.perf_counter() - start)
        start = time.perf_counter()
        session = resident.clone(**variant_changes)
        session.graph
        best_clone = min(best_clone, time.perf_counter() - start)

    speedup = best_fresh / best_clone if best_clone else float("inf")
    floor = PINNED_CLONE_SPEEDUP * _TOLERANCE
    report = "\n".join(
        [
            f"resident variant startup at n={big.node_count}",
            f"fresh Session:   {1e3 * best_fresh:8.2f} ms",
            f"Session.clone:   {1e3 * best_clone:8.3f} ms",
            f"speedup:         {speedup:8.0f}x "
            f"(pinned {PINNED_CLONE_SPEEDUP}x, floor {floor:.0f}x)",
        ]
    )
    (results_dir / "serve_clone.txt").write_text(report + "\n")
    print()
    print(report)
    assert speedup >= floor, report
