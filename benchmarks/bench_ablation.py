"""ABL — ablations of SLGF2's design choices.

DESIGN.md calls out the decisions layered on Algorithm 3; this bench
measures each against the full configuration on a fixed FA workload:

* ABL-EH     — superseding rule (critical/forbidden filter) off;
* ABL-BP     — backup-path phase off (straight to perimeter);
* ABL-BOUND  — perimeter mechanics: face (default) vs DFS vs
               rectangle-bounded DFS (the literal contribution (c));
* ABL-HAND   — perimeter hand: right (default) vs either-hand (the
               paper's letter);
* ABL-SCOPE  — candidate scope: quadrant (default) vs request-zone
               (Algorithm 1's letter).

The persisted table is the evidence behind the implementation-choice
notes in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from statistics import mean

from repro.experiments import ExperimentConfig, build_network, sample_pairs
from repro.routing import Slgf2Router

_CONFIG = ExperimentConfig(
    node_counts=(500,), networks_per_point=1, routes_per_network=1
)

_VARIANTS: dict[str, dict] = {
    "full": {},
    "no-superseding": {"use_superseding": False},
    "no-backup": {"use_backup": False},
    "perimeter-dfs": {"perimeter_mode": "dfs"},
    "perimeter-dfs-bounded": {"perimeter_mode": "dfs-bounded"},
    "either-hand-perimeter": {"perimeter_hand": "either"},
    "zone-scope": {"candidate_scope": "zone"},
    # Future-work extensions (Section 6):
    "adaptive-greedy": {"adaptive_greedy": True},
    "exact-shapes": {"_shape_mode": "exact"},
}


def _workloads(seeds=(4, 5, 6)):
    out = []
    for seed in seeds:
        instance = build_network(_CONFIG, "FA", 500, seed=seed)
        pairs = sample_pairs(instance.graph, 40, random.Random(seed + 1))
        out.append((instance, pairs))
    return out


def _evaluate(workloads, **kwargs):
    from repro.core import InformationModel

    shape_mode = kwargs.pop("_shape_mode", None)
    hops, lengths, delivered, total = [], [], 0, 0
    max_hops = 0
    for instance, pairs in workloads:
        model = instance.model
        if shape_mode is not None:
            model = InformationModel.build(instance.graph, shape_mode)
        router = Slgf2Router(model, **kwargs)
        for s, d in pairs:
            result = router.route(s, d)
            total += 1
            if result.delivered:
                delivered += 1
                hops.append(result.hops)
                lengths.append(result.length)
                max_hops = max(max_hops, result.hops)
    return {
        "delivery": delivered / total,
        "mean_hops": mean(hops),
        "max_hops": max_hops,
        "mean_length": mean(lengths),
    }


def test_slgf2_ablations(benchmark, results_dir):
    workloads = _workloads()
    results = {name: _evaluate(workloads, **kw) for name, kw in _VARIANTS.items()}
    # The timed unit: the full configuration on the same workload.
    benchmark(_evaluate, workloads)

    lines = ["ABL: SLGF2 ablations (FA, n=500, 3 networks x 40 routes)"]
    lines.append(
        f"{'variant':24s} {'deliv':>6s} {'hops':>7s} {'max':>5s} {'len':>8s}"
    )
    for name, stats in results.items():
        lines.append(
            f"{name:24s} {stats['delivery']:6.2f} "
            f"{stats['mean_hops']:7.2f} {stats['max_hops']:5d} "
            f"{stats['mean_length']:8.1f}"
        )
    (results_dir / "ablation.txt").write_text("\n".join(lines) + "\n")

    full = results["full"]
    # Everything must still deliver.
    for name, stats in results.items():
        assert stats["delivery"] >= 0.95, name
    # The backup phase is the load-bearing contribution: removing it
    # must not make things better.
    assert full["mean_hops"] <= 1.05 * results["no-backup"]["mean_hops"]
