"""Serial vs. parallel vs. warm-cache sweep execution.

The engine's contract is threefold, and this bench measures all of it
on a Fig. 5-sized (densities 400-800) but quick-scaled sweep:

* **Correctness** — parallel execution and cache replay must be
  bit-identical to the serial run (asserted unconditionally);
* **Parallel speedup** — ``--jobs 4`` should cut wall-clock by >= 2x;
  asserted when the host actually has >= 4 CPUs, reported otherwise;
* **Cache speedup** — a warm re-run must complete in < 10% of the
  cold serial time (asserted unconditionally; replay is pure JSON
  loading).

Timings land in ``benchmarks/results/parallel.txt``.  Scale up with
``REPRO_FULL=1`` for a paper-sized measurement.
"""

from __future__ import annotations

import os
import time

from repro.api import Study
from repro.experiments import ExperimentConfig, ResultCache

# Fig. 5's density axis at reduced replication: enough work per unit
# for process dispatch to amortise, small enough to stay a quick bench.
_BENCH = ExperimentConfig(
    node_counts=(400, 500, 600, 700, 800),
    networks_per_point=2,
    routes_per_network=5,
)
_MODELS = ("IA", "FA")
_JOBS = 4


def _run(
    config: ExperimentConfig, jobs: int, cache: ResultCache
) -> tuple[float, dict]:
    start = time.perf_counter()
    result = Study.from_config(config, _MODELS).run(jobs=jobs, cache=cache)
    sweeps = {model: result.sweep_result(model) for model in _MODELS}
    return time.perf_counter() - start, sweeps


def test_parallel_and_cache(results_dir, tmp_path):
    """One cold serial run, one cold parallel run, one warm replay."""
    full = os.environ.get("REPRO_FULL", "") == "1"
    config = ExperimentConfig() if full else _BENCH

    serial_s, serial = _run(config, jobs=1, cache=ResultCache.disabled())
    cache = ResultCache(tmp_path / "cache")
    parallel_s, parallel = _run(config, jobs=_JOBS, cache=cache)
    warm_s, warm = _run(config, jobs=1, cache=cache)

    # Bit-identical results regardless of execution strategy.
    for model in _MODELS:
        assert parallel[model].points == serial[model].points
        assert warm[model].points == serial[model].points

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    warm_frac = warm_s / serial_s if serial_s else 0.0
    cpus = os.cpu_count() or 1
    report = "\n".join(
        [
            f"sweep: {len(config.node_counts)} densities x "
            f"{len(_MODELS)} models x {config.networks_per_point} networks "
            f"x {config.routes_per_network} routes ({cpus} CPUs)",
            f"serial (jobs=1, no cache):   {serial_s:8.2f} s",
            f"parallel (jobs={_JOBS}, cold):    {parallel_s:8.2f} s  "
            f"({speedup:.2f}x)",
            f"warm cache (jobs=1):         {warm_s:8.2f} s  "
            f"({warm_frac:.1%} of serial)",
            f"cache: {cache.stats()}",
        ]
    )
    (results_dir / "parallel.txt").write_text(report + "\n")
    print()
    print(report)

    # Replay must be near-free: pure JSON loads, no routing at all.
    assert warm_frac < 0.10
    # The >= 2x parallel target only holds where 4 workers can
    # actually run concurrently.
    if cpus >= 4:
        assert speedup >= 2.0
