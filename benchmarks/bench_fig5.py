"""Fig. 5 — maximum number of hops, IA and FA panels.

Regenerates both panels of the paper's Fig. 5 (the per-point *maximum*
hop count over the sampled routes) from the shared evaluation sweep,
writes table/CSV/chart artifacts under ``benchmarks/results/`` and
checks the reproduction's shape claims:

* SLGF2's worst case stays at or below LGF's and SLGF's at (almost)
  every density — the paper's "reducing a great number of detours in
  its perimeter routing phase";
* the FA panel is at least as bad as the IA panel for every router.

The timed portion regenerates one densest-point evaluation end to end
(deployment -> information construction -> all four routers), i.e. the
cost of producing one figure point from scratch.
"""

from __future__ import annotations

from repro.experiments import (
    ExperimentConfig,
    evaluate_point,
    figure_table,
    format_table,
    to_chart,
    to_csv,
)

_POINT = ExperimentConfig(
    node_counts=(400,), networks_per_point=1, routes_per_network=5
)


def _persist(table, results_dir):
    name = f"{table.figure_id}_{table.deployment_model.lower()}"
    (results_dir / f"{name}.txt").write_text(
        format_table(table) + "\n\n" + to_chart(table) + "\n"
    )
    to_csv(table, results_dir / f"{name}.csv")


def test_fig5_point_regeneration(benchmark):
    """Time one from-scratch figure point (n=400, one network)."""
    point = benchmark(evaluate_point, _POINT, "IA", 400)
    assert set(point.per_router) == {"GF", "LGF", "SLGF", "SLGF2"}


def test_fig5_ia_panel(benchmark, ia_sweep, results_dir):
    table = benchmark(figure_table, ia_sweep, "fig5")
    _persist(table, results_dir)
    # Shape: SLGF2's worst case never the worst of the family.
    for i in range(len(table.node_counts)):
        family_worst = max(
            table.values[r][i] for r in ("LGF", "SLGF", "SLGF2")
        )
        assert table.values["SLGF2"][i] <= family_worst


def test_fig5_fa_panel(benchmark, fa_sweep, ia_sweep, results_dir):
    table = benchmark(figure_table, fa_sweep, "fig5")
    _persist(table, results_dir)
    ia_table = figure_table(ia_sweep, "fig5")
    # Shape: forbidden areas make the worst case worse (or equal) for
    # the family on aggregate.
    for router in ("LGF", "SLGF", "SLGF2"):
        fa_total = sum(table.values[router])
        ia_total = sum(ia_table.values[router])
        assert fa_total >= 0.8 * ia_total
