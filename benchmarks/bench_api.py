"""SCALE — the Session facade must add no measurable overhead.

The facade routes through exactly the same router objects as the
legacy hand-wired loop; its extra work per packet is one dict lookup,
one RouteSet append and (optionally) an energy fold.  This bench pins
that: batch throughput of :meth:`Session.route_pairs` is compared
against the legacy per-call loop over identical pairs on an identical
network, and the facade must stay within a small factor of raw.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_api.py -q
"""

from __future__ import annotations

import time

from repro.api import Scenario, Session

_N = 600
_PAIRS = 200


def _session() -> Session:
    return Session(
        Scenario(
            deployment_model="IA",
            node_count=_N,
            seed=17,
            routes_per_network=_PAIRS,
            routers=("SLGF2",),
        )
    )


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_route_pairs_matches_legacy_loop_output():
    """Same pairs, same routers -> identical results either way."""
    session = _session()
    pairs = session.sample_pairs()
    router = session.router("SLGF2")
    legacy = [router.route(s, d) for s, d in pairs]
    facade = session.route_pairs(energy=False)
    assert list(facade.results("SLGF2")) == legacy


def test_facade_overhead_is_negligible(results_dir):
    session = _session()
    pairs = session.sample_pairs()
    router = session.router("SLGF2")

    def legacy_loop():
        return [router.route(s, d) for s, d in pairs]

    legacy_s = _time(legacy_loop)
    facade_s = _time(lambda: session.route_pairs(energy=False))
    energy_s = _time(lambda: session.route_pairs(energy=True))

    per_route_us = facade_s / _PAIRS * 1e6
    overhead = facade_s / legacy_s - 1.0
    lines = [
        "Session.route_pairs vs legacy per-call loop "
        f"({_N} nodes, {_PAIRS} routes, SLGF2)",
        f"  legacy loop        : {legacy_s * 1e3:8.1f} ms",
        f"  facade             : {facade_s * 1e3:8.1f} ms "
        f"({overhead * 100:+.1f}%)",
        f"  facade + energy    : {energy_s * 1e3:8.1f} ms",
        f"  facade per route   : {per_route_us:8.1f} us",
    ]
    report = "\n".join(lines)
    print("\n" + report)
    (results_dir / "api_overhead.txt").write_text(report + "\n")

    # Generous bound: the facade may not cost more than 25% over the
    # raw loop (typical runs measure low single digits — noise-level).
    assert facade_s <= legacy_s * 1.25, report
