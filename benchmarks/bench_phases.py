"""PHASES — where each router spends its hops.

Section 5 attributes the win to phase structure: "LGF routing may
experience more perimeter routing phases than GF routing ... With the
safety information, the routing can predict the holes ahead and avoid
being blocked ... the SLGF2 routing can improve the performance by
reducing a great number of detours in its perimeter routing phase."

This bench routes a fixed workload on one FA network and breaks every
router's hop total down by phase label, persisting the table and
asserting the structural claims (perimeter entries: SLGF2 < SLGF <=
LGF; SLGF2 shifts hops from perimeter to safe/backup phases).
"""

from __future__ import annotations

import random

from repro.experiments import ExperimentConfig, build_network, sample_pairs
from repro.experiments.runner import registry_routers

_CONFIG = ExperimentConfig(
    node_counts=(500,), networks_per_point=1, routes_per_network=1
)


def _workload(seed=4):
    instance = build_network(_CONFIG, "FA", 500, seed=seed)
    pairs = sample_pairs(instance.graph, 60, random.Random(seed + 1))
    return instance, pairs


def _route_all(instance, pairs):
    breakdown: dict[str, dict[str, float]] = {}
    for name, router in registry_routers()(instance).items():
        phase_hops: dict[str, int] = {}
        perimeter_entries = 0
        delivered = 0
        for s, d in pairs:
            result = router.route(s, d)
            delivered += result.delivered
            perimeter_entries += result.perimeter_entries
            for phase, hops in result.phase_hops().items():
                phase_hops[phase] = phase_hops.get(phase, 0) + hops
        breakdown[name] = {
            "delivered": delivered,
            "perimeter_entries": perimeter_entries,
            **phase_hops,
        }
    return breakdown


def test_phase_breakdown(benchmark, results_dir):
    instance, pairs = _workload()
    breakdown = benchmark(_route_all, instance, pairs)

    phases = ("greedy", "safe", "backup", "perimeter")
    lines = ["PHASES: hop breakdown per router (FA, n=500, 60 routes)"]
    header = f"{'router':8s} {'deliv':>5s} {'peri#':>5s} " + " ".join(
        f"{p:>9s}" for p in phases
    )
    lines.append(header)
    for name, stats in breakdown.items():
        lines.append(
            f"{name:8s} {stats['delivered']:5.0f} "
            f"{stats['perimeter_entries']:5.0f} "
            + " ".join(f"{stats.get(p, 0):9.0f}" for p in phases)
        )
    (results_dir / "phase_breakdown.txt").write_text("\n".join(lines) + "\n")

    # Structural claims.
    assert (
        breakdown["SLGF2"]["perimeter_entries"]
        <= breakdown["SLGF"]["perimeter_entries"]
    )
    assert (
        breakdown["SLGF"]["perimeter_entries"]
        <= breakdown["LGF"]["perimeter_entries"]
    )
    assert breakdown["SLGF2"].get("perimeter", 0) <= breakdown["SLGF"].get(
        "perimeter", 0
    )
