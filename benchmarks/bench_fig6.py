"""Fig. 6 — average number of hops, IA and FA panels.

Regenerates both panels of the paper's Fig. 6, persists artifacts and
checks the headline ordering: the safety-informed routers beat LGF on
average hops, with SLGF2 the best of the information-based family
("both information based routings SLGF and SLGF2 ... require the
fewest number of hops in detour", with SLGF2 improving further).
"""

from __future__ import annotations

from repro.experiments import (
    ExperimentConfig,
    evaluate_point,
    figure_table,
    format_table,
    to_chart,
    to_csv,
)

_POINT = ExperimentConfig(
    node_counts=(600,), networks_per_point=1, routes_per_network=5
)


def _persist(table, results_dir):
    name = f"{table.figure_id}_{table.deployment_model.lower()}"
    (results_dir / f"{name}.txt").write_text(
        format_table(table) + "\n\n" + to_chart(table) + "\n"
    )
    to_csv(table, results_dir / f"{name}.csv")


def test_fig6_point_regeneration(benchmark):
    """Time one mid-density figure point end to end."""
    point = benchmark(evaluate_point, _POINT, "FA", 600)
    assert set(point.per_router) == {"GF", "LGF", "SLGF", "SLGF2"}


def test_fig6_ia_panel(benchmark, ia_sweep, results_dir):
    table = benchmark(figure_table, ia_sweep, "fig6")
    _persist(table, results_dir)
    # Aggregate family ordering across the sweep.  Under IA the SLGF /
    # SLGF2 averages sit within a hop of each other (as in the paper's
    # Fig. 6(a)); the 5% slack absorbs quick-config sampling noise —
    # the paper-scale run (REPRO_FULL=1) tightens both curves.
    slgf2 = sum(table.values["SLGF2"])
    slgf = sum(table.values["SLGF"])
    lgf = sum(table.values["LGF"])
    assert slgf2 <= 1.05 * slgf
    assert slgf <= 1.10 * lgf


def test_fig6_fa_panel(benchmark, fa_sweep, results_dir):
    table = benchmark(figure_table, fa_sweep, "fig6")
    _persist(table, results_dir)
    slgf2 = sum(table.values["SLGF2"])
    slgf = sum(table.values["SLGF"])
    lgf = sum(table.values["LGF"])
    gf = sum(table.values["GF"])
    assert slgf2 <= 1.05 * slgf
    assert slgf <= 1.10 * lgf
    # Under FA, BOUNDHOLE-guided GF pays for its blunt boundary walks:
    # the safety-informed routers win (the paper's headline).
    assert slgf2 <= gf
