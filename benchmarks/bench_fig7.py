"""Fig. 7 — average routing path length, IA and FA panels.

Regenerates both panels of the paper's Fig. 7 (mean Euclidean length
of the delivered paths), persists artifacts and checks the paper's
conclusion for this figure: "the new routing under our safety
information model can always achieve shorter path and conserve more
energy" — i.e. SLGF2 produces the shortest paths of the LGF family,
and under FA beats the BOUNDHOLE-guided GF baseline too.
"""

from __future__ import annotations

from repro.experiments import (
    ExperimentConfig,
    evaluate_point,
    figure_table,
    format_table,
    to_chart,
    to_csv,
)

_POINT = ExperimentConfig(
    node_counts=(800,), networks_per_point=1, routes_per_network=5
)


def _persist(table, results_dir):
    name = f"{table.figure_id}_{table.deployment_model.lower()}"
    (results_dir / f"{name}.txt").write_text(
        format_table(table) + "\n\n" + to_chart(table) + "\n"
    )
    to_csv(table, results_dir / f"{name}.csv")


def test_fig7_point_regeneration(benchmark):
    """Time the densest figure point end to end."""
    point = benchmark(evaluate_point, _POINT, "IA", 800)
    assert set(point.per_router) == {"GF", "LGF", "SLGF", "SLGF2"}


def test_fig7_ia_panel(benchmark, ia_sweep, results_dir):
    table = benchmark(figure_table, ia_sweep, "fig7")
    _persist(table, results_dir)
    slgf2 = sum(table.values["SLGF2"])
    slgf = sum(table.values["SLGF"])
    lgf = sum(table.values["LGF"])
    assert slgf2 <= slgf <= 1.10 * lgf


def test_fig7_fa_panel(benchmark, fa_sweep, results_dir):
    table = benchmark(figure_table, fa_sweep, "fig7")
    _persist(table, results_dir)
    slgf2 = sum(table.values["SLGF2"])
    gf = sum(table.values["GF"])
    lgf = sum(table.values["LGF"])
    assert slgf2 <= lgf
    assert slgf2 <= gf
