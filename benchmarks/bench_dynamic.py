"""DYNAMIC — incremental topology maintenance vs. full rebuild.

The dynamic-topology engine's performance contract: a single-node
perturbation step (move one node, take the updated graph) on a
paper-scale 800-node network must be markedly cheaper through
:class:`repro.network.dynamic.DynamicTopology` than through the static
pipeline's rebuild (``build_unit_disk_graph`` + ``EdgeDetector``),
because the engine touches only the 3x3-cell neighbourhood of the
moved node while the rebuild re-tests every candidate pair.  The
pinned floor (see ``MIN_SPEEDUP``) is measured against the *current*
static pipeline — it was re-pinned downward when the columnar core
made full rebuilds themselves ~2x faster.

Correctness is asserted before speed: both pipelines must agree on the
final graph, edge for edge, after the whole event sequence.

Timings land in ``benchmarks/results/dynamic.txt``.  Scale up with
``REPRO_FULL=1`` for a longer measurement.
"""

from __future__ import annotations

import os
import random
import time

from repro.geometry import Point
from repro.network import DynamicTopology, EdgeDetector, build_unit_disk_graph

AREA = 200.0
RADIUS = 20.0
NODES = 800
SEED = 2009
# Re-pinned when the columnar core landed: the *rebuild* baseline got
# ~2x faster (bulk columnar construction, no per-rebuild validation),
# so the same incremental engine now clears a smaller ratio.  Both
# pipelines pay the identical per-snapshot hull detection, which now
# dominates the incremental side; measured ~3.8x, floor 3x.
MIN_SPEEDUP = 3.0


def _positions(rng: random.Random) -> list[Point]:
    return [
        Point(rng.uniform(0, AREA), rng.uniform(0, AREA))
        for _ in range(NODES)
    ]


def _perturbations(rng: random.Random, events: int) -> list[tuple[int, Point]]:
    """Single-node mobility steps: symmetric drift under one radius."""
    return [
        (
            rng.randrange(NODES),
            Point(
                rng.uniform(-RADIUS / 2, RADIUS / 2),
                rng.uniform(-RADIUS / 2, RADIUS / 2),
            ),
        )
        for _ in range(events)
    ]


def _drift(p: Point, d: Point) -> Point:
    """Apply a displacement, clamped to the deployment area."""
    return Point(
        min(AREA, max(0.0, p.x + d.x)),
        min(AREA, max(0.0, p.y + d.y)),
    )


def test_dynamic_vs_rebuild(results_dir):
    events = 200 if os.environ.get("REPRO_FULL", "") == "1" else 40
    rng = random.Random(SEED)
    start_positions = _positions(rng)
    steps = _perturbations(rng, events)
    detector = EdgeDetector(strategy="convex")

    # Static pipeline: every event pays a full rebuild.
    positions = list(start_positions)
    t0 = time.perf_counter()
    for node, delta in steps:
        positions[node] = _drift(positions[node], delta)
        rebuilt = detector.apply(build_unit_disk_graph(positions, RADIUS))
    rebuild_s = time.perf_counter() - t0

    # Dynamic engine: every event applies one delta + one snapshot.
    topology = DynamicTopology(
        start_positions, RADIUS, edge_detector=detector
    )
    t0 = time.perf_counter()
    for node, delta in steps:
        topology.move(node, _drift(topology.position(node), delta))
        snapshot = topology.graph
    dynamic_s = time.perf_counter() - t0

    # Both pipelines must land on the identical final graph.
    assert snapshot.node_ids == rebuilt.node_ids
    for u in rebuilt.node_ids:
        assert snapshot.neighbors(u) == rebuilt.neighbors(u)
        assert snapshot.position(u) == rebuilt.position(u)
        assert snapshot.is_edge_node(u) == rebuilt.is_edge_node(u)

    speedup = rebuild_s / dynamic_s if dynamic_s else float("inf")
    report = "\n".join(
        [
            f"single-node perturbation steps at n={NODES}, "
            f"r={RADIUS}, {events} events",
            f"full rebuild per event:   {rebuild_s:8.3f} s "
            f"({1e3 * rebuild_s / events:7.2f} ms/event)",
            f"incremental per event:    {dynamic_s:8.3f} s "
            f"({1e3 * dynamic_s / events:7.2f} ms/event)",
            f"speedup:                  {speedup:8.1f}x "
            f"(floor: {MIN_SPEEDUP}x)",
        ]
    )
    (results_dir / "dynamic.txt").write_text(report + "\n")
    print()
    print(report)
    assert speedup >= MIN_SPEEDUP, report
