"""SCALE — microbenchmarks of the substrate hot paths.

Times the building blocks the evaluation pipeline leans on, at the
paper's densest setting (800 nodes / 200 m x 200 m / r = 20 m):

* unit-disk graph construction (spatial-grid pair enumeration);
* Gabriel planarization;
* safety labeling + shape propagation;
* a routed packet per scheme (steady-state router throughput).
"""

from __future__ import annotations

import random

from repro.core import InformationModel, compute_safety
from repro.geometry import Rect
from repro.network import (
    EdgeDetector,
    UniformDeployment,
    build_unit_disk_graph,
    gabriel_graph,
)
from repro.protocols import build_hole_boundaries
from repro.routing import GreedyRouter, LgfRouter, SlgfRouter, Slgf2Router

_AREA = Rect(0, 0, 200, 200)
_N = 800
_RADIUS = 20.0


def _positions(seed=21):
    rng = random.Random(seed)
    return UniformDeployment(_AREA).sample(_N, rng)


def _graph(seed=21):
    g = build_unit_disk_graph(_positions(seed), _RADIUS)
    return EdgeDetector(strategy="convex").apply(g)


def test_unit_disk_construction(benchmark):
    positions = _positions()
    g = benchmark(build_unit_disk_graph, positions, _RADIUS)
    assert len(g) == _N


def test_gabriel_planarization(benchmark):
    g = _graph()
    adj = benchmark(gabriel_graph, g)
    assert len(adj) == _N


def test_safety_labeling(benchmark):
    g = _graph()
    safety = benchmark(compute_safety, g)
    assert len(safety.statuses) == _N


def _route_batch(router, pairs):
    delivered = 0
    for s, d in pairs:
        delivered += router.route(s, d).delivered
    return delivered


def _pairs(g, count=50, seed=3):
    rng = random.Random(seed)
    pool = sorted(g.connected_components()[0])
    return [tuple(rng.sample(pool, 2)) for _ in range(count)]


def test_gf_throughput(benchmark):
    g = _graph()
    boundaries = build_hole_boundaries(g)
    router = GreedyRouter(g, recovery="boundhole", hole_boundaries=boundaries)
    delivered = benchmark(_route_batch, router, _pairs(g))
    assert delivered >= 45


def test_lgf_throughput(benchmark):
    g = _graph()
    router = LgfRouter(g, candidate_scope="quadrant")
    delivered = benchmark(_route_batch, router, _pairs(g))
    assert delivered >= 45


def test_slgf_throughput(benchmark):
    g = _graph()
    model = InformationModel.build(g)
    router = SlgfRouter(model, candidate_scope="quadrant")
    delivered = benchmark(_route_batch, router, _pairs(g))
    assert delivered >= 45


def test_slgf2_throughput(benchmark):
    g = _graph()
    model = InformationModel.build(g)
    router = Slgf2Router(model)
    delivered = benchmark(_route_batch, router, _pairs(g))
    assert delivered >= 45
