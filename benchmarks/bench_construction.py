"""CONS-COST — information construction cost.

Section 5: "Note that the construction cost of safety information has
been proved to be the minimum in [7]."  The paper does not plot it;
this bench regenerates the comparison the claim rests on, for a
representative 400-node IA network:

* hello beacons (both schemes need them): n transmissions;
* safety + shape construction (distributed Algorithm 2): transmissions
  == nodes that changed status/shape, counted by the protocol engine;
* BOUNDHOLE: one walk per hole, total boundary hops as the message
  cost (each boundary edge carries the walk token once).

It also times the centralized constructions, which is the cost a
simulation user actually pays per generated network — and pins the
vectorized construction backend's speedup over the scalar reference
(``test_vectorized_construction_speedup``): the numpy kernels of
:mod:`repro.network.construct` must keep delivering at least
``PINNED_VECTOR_SPEEDUP * _TOLERANCE`` on the full columnar pipeline
(unit-disk build, lengths, both planarizations, safety labels) at
n=2000, with bit-identity asserted before any timing counts.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro._optional import load_numpy
from repro.core import InformationModel, compute_safety, compute_shapes
from repro.geometry import Rect
from repro.network import EdgeDetector, UniformDeployment, build_unit_disk_graph
from repro.protocols import (
    build_hole_boundaries,
    run_hello,
    run_safety_protocol,
)

_AREA = Rect(0, 0, 200, 200)

# Pinned when the vectorized construction backend landed (measured
# ~4.4x at n=2000); a run below threshold * _TOLERANCE is a
# regression.  The ISSUE acceptance floor (>= 3x) sits just below the
# tolerance band: tripping the band trips the floor.
PINNED_VECTOR_SPEEDUP = 3.4
_TOLERANCE = 0.9
assert PINNED_VECTOR_SPEEDUP * _TOLERANCE >= 3.0


def _network(n=400, seed=11, radius=20.0):
    rng = random.Random(seed)
    positions = UniformDeployment(_AREA).sample(n, rng)
    g = build_unit_disk_graph(positions, radius)
    return EdgeDetector(strategy="convex").apply(g)


def test_centralized_safety_construction(benchmark):
    g = _network()
    safety = benchmark(compute_safety, g)
    assert len(safety.statuses) == 400


def test_centralized_shape_construction(benchmark):
    g = _network()
    safety = compute_safety(g)
    shapes = benchmark(compute_shapes, safety)
    assert shapes.graph is g


def test_full_information_model(benchmark):
    g = _network()
    model = benchmark(InformationModel.build, g)
    assert model.graph is g


def test_distributed_safety_protocol(benchmark):
    g = _network()
    engine, stats = benchmark(run_safety_protocol, g)
    assert stats.quiesced


def test_async_safety_protocol(benchmark):
    """The asynchronous variant (random link delays, same fixed point)."""
    from repro.protocols import AsyncEngine
    from repro.protocols.safety_protocol import SafetyProtocolNode

    g = _network()

    def run_async():
        engine = AsyncEngine(
            g,
            lambda u: SafetyProtocolNode(
                u, g.position(u), g.is_edge_node(u)
            ),
            seed=5,
        )
        return engine.run()

    stats = benchmark(run_async)
    assert stats.quiesced


def test_boundhole_construction(benchmark):
    g = _network()
    boundaries = benchmark(build_hole_boundaries, g)
    assert len(boundaries) >= 1  # the outer rim at minimum


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_construction_speedup(results_dir):
    """numpy vs scalar over the full columnar construction pipeline.

    The workload materialises everything a Session's prepared network
    eventually touches: the unit-disk build, the lengths column, both
    planarization masks with their adjacency dicts, and the safety
    labeling.  Identity is asserted column for column before the
    timing loop — the speedup is only worth pinning because the
    results are bit-equal.
    """
    if load_numpy() is None:
        pytest.skip("numpy not installed; scalar backend is the only one")

    n, area, radius = 2000, 450.0, 30.0
    rng = random.Random(7)
    positions = UniformDeployment(Rect(0, 0, area, area)).sample(n, rng)

    def pipeline(backend):
        graph = build_unit_disk_graph(positions, radius, backend=backend)
        core = graph.core
        core.lengths
        for kind in ("gabriel", "rng"):
            core.planar_mask(kind)
            core.planar_adjacency(kind)
        return core, compute_safety(graph, backend=backend)

    core_s, safety_s = pipeline("scalar")
    core_n, safety_n = pipeline("numpy")
    assert core_s.xs.tobytes() == core_n.xs.tobytes()
    assert core_s.indptr.tobytes() == core_n.indptr.tobytes()
    assert core_s.indices.tobytes() == core_n.indices.tobytes()
    assert core_s.lengths.tobytes() == core_n.lengths.tobytes()
    for kind in ("gabriel", "rng"):
        assert bytes(core_s.planar_mask(kind)) == bytes(
            core_n.planar_mask(kind)
        )
        assert core_s.planar_adjacency(kind) == core_n.planar_adjacency(kind)
    assert safety_s.statuses == safety_n.statuses
    assert safety_s.rounds == safety_n.rounds

    repeats = 10 if os.environ.get("REPRO_FULL", "") == "1" else 5
    scalar_s = _best_of(lambda: pipeline("scalar"), repeats)
    numpy_s = _best_of(lambda: pipeline("numpy"), repeats)
    speedup = scalar_s / numpy_s if numpy_s else float("inf")

    floor = PINNED_VECTOR_SPEEDUP * _TOLERANCE
    report = "\n".join(
        [
            f"vectorized construction at n={n}, r={radius} "
            "(build + lengths + planarizations + safety)",
            f"scalar reference: {1e3 * scalar_s:8.2f} ms",
            f"numpy backend:    {1e3 * numpy_s:8.2f} ms",
            f"speedup:          {speedup:8.2f}x "
            f"(pinned {PINNED_VECTOR_SPEEDUP}x, floor {floor:.2f}x)",
        ]
    )
    (results_dir / "construction_backend.txt").write_text(report + "\n")
    print()
    print(report)
    assert speedup >= floor, report


def test_construction_cost_report(benchmark, results_dir):
    """Persist the message-cost comparison table."""
    g = _network()
    _, hello_stats = benchmark(run_hello, g)
    _, safety_stats = run_safety_protocol(g)
    boundaries = build_hole_boundaries(g)
    lines = [
        "CONS-COST: information construction message cost (IA, n=400)",
        f"hello beacons:            {hello_stats.transmissions} transmissions",
        (
            "safety+shape (Algo 2):    "
            f"{safety_stats.transmissions} transmissions over "
            f"{safety_stats.rounds} rounds"
        ),
        (
            "BOUNDHOLE walks:          "
            f"{boundaries.total_boundary_hops()} boundary hops over "
            f"{len(boundaries)} boundaries"
        ),
    ]
    (results_dir / "construction_cost.txt").write_text("\n".join(lines) + "\n")
    # The safety construction must quiesce and stay linear-ish in n:
    # every transmission corresponds to a (node, change) event.
    assert safety_stats.quiesced
    assert safety_stats.transmissions <= 6 * len(g)
