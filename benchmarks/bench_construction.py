"""CONS-COST — information construction cost.

Section 5: "Note that the construction cost of safety information has
been proved to be the minimum in [7]."  The paper does not plot it;
this bench regenerates the comparison the claim rests on, for a
representative 400-node IA network:

* hello beacons (both schemes need them): n transmissions;
* safety + shape construction (distributed Algorithm 2): transmissions
  == nodes that changed status/shape, counted by the protocol engine;
* BOUNDHOLE: one walk per hole, total boundary hops as the message
  cost (each boundary edge carries the walk token once).

It also times the centralized constructions, which is the cost a
simulation user actually pays per generated network.
"""

from __future__ import annotations

import random

from repro.core import InformationModel, compute_safety, compute_shapes
from repro.geometry import Rect
from repro.network import EdgeDetector, UniformDeployment, build_unit_disk_graph
from repro.protocols import (
    build_hole_boundaries,
    run_hello,
    run_safety_protocol,
)

_AREA = Rect(0, 0, 200, 200)


def _network(n=400, seed=11, radius=20.0):
    rng = random.Random(seed)
    positions = UniformDeployment(_AREA).sample(n, rng)
    g = build_unit_disk_graph(positions, radius)
    return EdgeDetector(strategy="convex").apply(g)


def test_centralized_safety_construction(benchmark):
    g = _network()
    safety = benchmark(compute_safety, g)
    assert len(safety.statuses) == 400


def test_centralized_shape_construction(benchmark):
    g = _network()
    safety = compute_safety(g)
    shapes = benchmark(compute_shapes, safety)
    assert shapes.graph is g


def test_full_information_model(benchmark):
    g = _network()
    model = benchmark(InformationModel.build, g)
    assert model.graph is g


def test_distributed_safety_protocol(benchmark):
    g = _network()
    engine, stats = benchmark(run_safety_protocol, g)
    assert stats.quiesced


def test_async_safety_protocol(benchmark):
    """The asynchronous variant (random link delays, same fixed point)."""
    from repro.protocols import AsyncEngine
    from repro.protocols.safety_protocol import SafetyProtocolNode

    g = _network()

    def run_async():
        engine = AsyncEngine(
            g,
            lambda u: SafetyProtocolNode(
                u, g.position(u), g.is_edge_node(u)
            ),
            seed=5,
        )
        return engine.run()

    stats = benchmark(run_async)
    assert stats.quiesced


def test_boundhole_construction(benchmark):
    g = _network()
    boundaries = benchmark(build_hole_boundaries, g)
    assert len(boundaries) >= 1  # the outer rim at minimum


def test_construction_cost_report(benchmark, results_dir):
    """Persist the message-cost comparison table."""
    g = _network()
    _, hello_stats = benchmark(run_hello, g)
    _, safety_stats = run_safety_protocol(g)
    boundaries = build_hole_boundaries(g)
    lines = [
        "CONS-COST: information construction message cost (IA, n=400)",
        f"hello beacons:            {hello_stats.transmissions} transmissions",
        (
            "safety+shape (Algo 2):    "
            f"{safety_stats.transmissions} transmissions over "
            f"{safety_stats.rounds} rounds"
        ),
        (
            "BOUNDHOLE walks:          "
            f"{boundaries.total_boundary_hops()} boundary hops over "
            f"{len(boundaries)} boundaries"
        ),
    ]
    (results_dir / "construction_cost.txt").write_text("\n".join(lines) + "\n")
    # The safety construction must quiesce and stay linear-ish in n:
    # every transmission corresponds to a (node, change) event.
    assert safety_stats.quiesced
    assert safety_stats.transmissions <= 6 * len(g)
