"""SCALE — sharded dispatch must stay within 10% of the direct engine.

The distributed layer's pitch is "the same study, across hosts, for
free": compiling the plan, writing shard files, launching worker
subprocesses, streaming their progress, merging bundles and
reassembling from the cache is all bookkeeping around the identical
cell evaluations.  This bench pins that claim on one machine at equal
parallelism — ``Study.run(jobs=3)`` versus
:func:`repro.dist.run_study` over a 3-worker
:class:`~repro.dist.driver.LocalSubprocessDriver` — and both sides
must produce bit-identical StudyResults while the sharded run stays
within **10 %** wall-clock of the direct one.

The study is sized so evaluation dominates: per-worker interpreter
start-up (~0.5 s, paid once per shard, in parallel) must amortise
against seconds of routing work, exactly as it would on a real
cluster.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_dist.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import Scenario, Study
from repro.api.study import _evaluate_cell
from repro.dist import LocalSubprocessDriver, run_study
from repro.experiments import ResultCache

SRC = Path(__file__).resolve().parents[1] / "src"

_BASE = Scenario(
    deployment_model="IA",
    seed=23,
    networks=16,
    routes_per_network=12,
    routers=("GF", "SLGF2"),
)
# Six seeds per node count: round-robin over 3 shards hands every
# shard two cells of each node count, so the static partition is as
# balanced as the direct engine's dynamic scheduling — the comparison
# then measures dispatch overhead, not shard imbalance.
_NODES = (350, 400)
_SEEDS = (23, 24, 25, 26, 27, 28)
_JOBS = 3


def _study() -> Study:
    return Study(_BASE, nodes=_NODES, seeds=_SEEDS)


def _digest(result) -> str:
    return json.dumps(result.to_dicts(), sort_keys=True)


def _run_direct(cache_dir) -> tuple[float, object]:
    start = time.perf_counter()
    result = _study().run(jobs=_JOBS, cache=ResultCache(cache_dir))
    return time.perf_counter() - start, result


def _run_dist(cache_dir) -> tuple[float, object]:
    start = time.perf_counter()
    result = run_study(
        _study(),
        LocalSubprocessDriver(
            jobs=_JOBS, extra_env={"PYTHONPATH": str(SRC)}
        ),
        shards=_JOBS,
        cache=ResultCache(cache_dir),
    )
    return time.perf_counter() - start, result


def test_sharded_dispatch_overhead_under_10_percent(
    results_dir, tmp_path
):
    # Warm this process (imports, spatial-grid caches) so the direct
    # side isn't charged for one-time costs the workers pay themselves
    # — worker start-up is precisely the overhead under test.
    _evaluate_cell(_BASE.with_(node_count=150, networks=1), None)

    cells = len(_study())

    # Interleaved best-of-N, fresh caches each repeat: transient
    # machine noise on a ~10 s run easily exceeds the 10% bound, so a
    # single shot either way would be a coin flip (same pattern as
    # bench_study's _time_pair, repeats kept low because each rep is
    # seconds, not milliseconds).
    repeats = 2
    direct_s, dist_s = float("inf"), float("inf")
    direct = dist = None
    for rep in range(repeats):
        seconds, direct = _run_direct(tmp_path / f"direct_{rep}")
        direct_s = min(direct_s, seconds)
        seconds, dist = _run_dist(tmp_path / f"dist_{rep}")
        dist_s = min(dist_s, seconds)

    # Identity first: a fast-but-different distributed run is worthless.
    assert _digest(dist) == _digest(direct)

    overhead = dist_s / direct_s - 1.0
    lines = [
        "Sharded execution vs direct engine at equal parallelism "
        f"({cells} cells, jobs={_JOBS}, best of {repeats})",
        f"  Study.run(jobs={_JOBS})        : {direct_s:8.2f} s",
        f"  run_study (3 shards, subprocess): {dist_s:8.2f} s "
        f"({overhead * 100:+.1f}%)",
        f"  dispatch overhead per shard     : "
        f"{(dist_s - direct_s) / _JOBS * 1e3:8.1f} ms",
    ]
    report = "\n".join(lines)
    print("\n" + report)
    (results_dir / "dist_overhead.txt").write_text(report + "\n")

    # The ISSUE's bound: sharded dispatch <= 10% over the direct
    # engine at equal parallelism.
    assert dist_s <= direct_s * 1.10, report
