"""CORE — the columnar substrate's performance contract.

Two pinned speedups at the paper's densest setting (800 nodes,
200 m x 200 m, r = 20 m), correctness asserted before speed in both:

* **Construction**: ``build_unit_disk_graph`` (bulk grid pass straight
  into ``TopologyCore`` columns) vs. the historical dict pipeline —
  ``SpatialGrid.all_pairs_within`` into per-node dict adjacency plus
  the O(E) symmetry validation — replicated here verbatim as the
  baseline.  Both must produce identical graphs.

* **Batched routing**: ``router.route_batch(pairs)`` (the
  index-based successor-selection fast path of
  :mod:`repro.routing.batch`) vs. the pre-batch baseline of
  sequential ``router.route(s, d)`` calls, summed over all four
  schemes end to end.  Both must produce identical ``RouteResult``
  lists — the speed is free, the numbers are the same.

* **Vectorized backend** (skipped when numpy is absent):
  ``route_batch(backend="numpy")`` vs. the scalar batch executor on a
  2000-node field with 6000 long cross-field routes.  The workload is
  deliberately large: the kernel's per-step array cost is amortized
  over thousands of in-flight packets, and below ~6000 routes the
  ratio is too noisy on a loaded box to pin.  Identity is asserted
  before timing, same as the others.

Regression policy: each speedup is pinned at the threshold measured
when the corresponding fast path landed, minus a 10% tolerance band
(``_TOLERANCE``); dropping below ``threshold * 0.9`` fails the bench
(and the CI bench-smoke job).  Timings land in
``benchmarks/results/core.txt``; ``REPRO_FULL=1`` scales the route
batch up for a longer measurement.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro._optional import load_numpy
from repro.core import InformationModel
from repro.geometry import Rect
from repro.network import (
    EdgeDetector,
    Node,
    SpatialGrid,
    UniformDeployment,
    WasnGraph,
    build_unit_disk_graph,
)
from repro.routing import GreedyRouter, LgfRouter, SlgfRouter, Slgf2Router

AREA = Rect(0, 0, 200, 200)
RADIUS = 20.0
NODES = 800
SEED = 2009

# Pinned when the columnar core landed (measured 3.8x / 2.5x); a run
# below threshold * _TOLERANCE is a regression.
PINNED_ROUTING_SPEEDUP = 3.4
PINNED_CONSTRUCTION_SPEEDUP = 2.3
# Pinned when the numpy kernel landed (measured 3.4-3.7x at 6000
# cross-field routes over n=2000).
PINNED_NUMPY_SPEEDUP = 3.0
_TOLERANCE = 0.9

# The ISSUE acceptance floors (>= 3x routing, >= 2x construction) sit
# just below the tolerance band: tripping the band trips the floor.
assert PINNED_ROUTING_SPEEDUP * _TOLERANCE >= 3.0
assert PINNED_CONSTRUCTION_SPEEDUP * _TOLERANCE >= 2.0


def _positions():
    rng = random.Random(SEED)
    return UniformDeployment(AREA).sample(NODES, rng)


def _legacy_build(positions, radius):
    """The pre-columnar ``build_unit_disk_graph``, step for step."""
    grid = SpatialGrid(cell_size=radius)
    grid.bulk_insert(enumerate(positions))
    neighbor_sets = {i: [] for i in range(len(positions))}
    for a, b in grid.all_pairs_within(radius):
        neighbor_sets[a].append(b)
        neighbor_sets[b].append(a)
    nodes = [Node(i, p) for i, p in enumerate(positions)]
    adjacency = {
        i: tuple(sorted(neighbor_sets[i])) for i in range(len(positions))
    }
    return WasnGraph(nodes, adjacency, radius)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_construction_speedup(results_dir):
    positions = _positions()

    legacy = _legacy_build(positions, RADIUS)
    columnar = build_unit_disk_graph(positions, RADIUS)
    assert legacy.node_ids == columnar.node_ids
    for u in legacy.node_ids:
        assert legacy.neighbors(u) == columnar.neighbors(u)
        assert legacy.position(u) == columnar.position(u)

    repeats = 20 if os.environ.get("REPRO_FULL", "") == "1" else 7
    legacy_s = _best_of(lambda: _legacy_build(positions, RADIUS), repeats)
    columnar_s = _best_of(
        lambda: build_unit_disk_graph(positions, RADIUS), repeats
    )
    speedup = legacy_s / columnar_s if columnar_s else float("inf")

    floor = PINNED_CONSTRUCTION_SPEEDUP * _TOLERANCE
    report = "\n".join(
        [
            f"unit-disk construction at n={NODES}, r={RADIUS}",
            f"dict pipeline:   {1e3 * legacy_s:8.2f} ms",
            f"columnar core:   {1e3 * columnar_s:8.2f} ms",
            f"speedup:         {speedup:8.2f}x "
            f"(pinned {PINNED_CONSTRUCTION_SPEEDUP}x, floor {floor:.2f}x)",
        ]
    )
    (results_dir / "core.txt").write_text(report + "\n")
    print()
    print(report)
    assert speedup >= floor, report


def test_batched_routing_speedup(results_dir):
    rng = random.Random(SEED)
    positions = UniformDeployment(AREA).sample(NODES, rng)
    graph = EdgeDetector(strategy="convex").apply(
        build_unit_disk_graph(positions, RADIUS)
    )
    model = InformationModel.build(graph)
    pool = sorted(graph.connected_components()[0])
    pair_rng = random.Random(SEED + 1)
    route_count = 600 if os.environ.get("REPRO_FULL", "") == "1" else 200
    pairs = [tuple(pair_rng.sample(pool, 2)) for _ in range(route_count)]

    routers = [
        ("GF", GreedyRouter(graph)),
        ("LGF", LgfRouter(graph)),
        ("SLGF", SlgfRouter(model)),
        ("SLGF2", Slgf2Router(model)),
    ]

    # Correctness first: the batch must be the sequential run, bit for
    # bit, before its speed means anything.
    for _, router in routers:
        assert router.route_batch(pairs) == [
            router.route(s, d) for s, d in pairs
        ]

    repeats = 5 if os.environ.get("REPRO_FULL", "") == "1" else 3
    lines = [
        f"end-to-end routing at n={NODES}, r={RADIUS}, "
        f"{route_count} routes x 4 schemes"
    ]
    total_seq = total_batch = 0.0
    for name, router in routers:
        seq_s = _best_of(
            lambda r=router: [r.route(s, d) for s, d in pairs], repeats
        )
        batch_s = _best_of(lambda r=router: r.route_batch(pairs), repeats)
        total_seq += seq_s
        total_batch += batch_s
        lines.append(
            f"{name:6s} sequential {1e3 * seq_s:8.2f} ms   "
            f"batched {1e3 * batch_s:8.2f} ms   "
            f"({seq_s / batch_s:5.2f}x)"
        )
    speedup = total_seq / total_batch if total_batch else float("inf")
    floor = PINNED_ROUTING_SPEEDUP * _TOLERANCE
    lines.append(
        f"total  sequential {1e3 * total_seq:8.2f} ms   "
        f"batched {1e3 * total_batch:8.2f} ms   "
        f"({speedup:5.2f}x; pinned {PINNED_ROUTING_SPEEDUP}x, "
        f"floor {floor:.2f}x)"
    )
    report = "\n".join(lines)
    with (results_dir / "core.txt").open("a") as handle:
        handle.write(report + "\n")
    print()
    print(report)
    assert speedup >= floor, report


def test_numpy_backend_speedup(results_dir):
    if load_numpy() is None:
        pytest.skip("numpy not installed; scalar backend is the only one")

    # A wide field with traffic crossing it end to end: ~15-hop routes
    # keep thousands of packets in flight at once, which is the regime
    # the vectorized step loop exists for.
    n, area, radius = 2000, 450.0, 30.0
    rng = random.Random(0)
    positions = UniformDeployment(Rect(0, 0, area, area)).sample(n, rng)
    graph = EdgeDetector(strategy="convex").apply(
        build_unit_disk_graph(positions, radius)
    )
    west = sorted(nd.id for nd in graph.nodes() if nd.position.x < 110.0)
    east = sorted(nd.id for nd in graph.nodes() if nd.position.x > 340.0)
    pair_rng = random.Random(42)
    route_count = 6000
    pairs = [
        (pair_rng.choice(west), pair_rng.choice(east))
        for _ in range(route_count)
    ]

    router = GreedyRouter(graph)
    scalar = router.route_batch(pairs, backend="scalar")
    assert router.route_batch(pairs, backend="numpy") == scalar

    repeats = 7 if os.environ.get("REPRO_FULL", "") == "1" else 5
    scalar_s = _best_of(
        lambda: router.route_batch(pairs, backend="scalar"), repeats
    )
    numpy_s = _best_of(
        lambda: router.route_batch(pairs, backend="numpy"), repeats
    )
    speedup = scalar_s / numpy_s if numpy_s else float("inf")

    floor = PINNED_NUMPY_SPEEDUP * _TOLERANCE
    report = "\n".join(
        [
            f"numpy backend at n={n}, r={radius}, "
            f"{route_count} cross-field GF routes",
            f"scalar batch:    {1e3 * scalar_s:8.2f} ms",
            f"numpy kernel:    {1e3 * numpy_s:8.2f} ms",
            f"speedup:         {speedup:8.2f}x "
            f"(pinned {PINNED_NUMPY_SPEEDUP}x, floor {floor:.2f}x)",
        ]
    )
    with (results_dir / "core.txt").open("a") as handle:
        handle.write(report + "\n")
    print()
    print(report)
    assert speedup >= floor, report
