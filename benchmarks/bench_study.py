"""SCALE — Study streaming dispatch must add no measurable overhead.

A Study cell's work is the Session evaluation itself
(:func:`repro.api.study._evaluate_cell`); everything the Study layer
adds — plan compilation, EngineTask construction, the streaming
generator, one ProgressEvent per cell — is bookkeeping that must stay
within **5 %** of calling the evaluator directly over the same
scenarios (the ISSUE's bound for the streaming-dispatch path).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_study.py -q
"""

from __future__ import annotations

import time

from repro.api import Scenario, Study
from repro.api.study import _evaluate_cell
from repro.experiments import ResultCache

_BASE = Scenario(
    deployment_model="IA",
    seed=23,
    networks=2,
    routes_per_network=10,
    routers=("GF", "SLGF2"),
)
_NODES = (350, 400, 450)


def _study() -> Study:
    return Study(_BASE, nodes=_NODES)


def _time_pair(a, b, repeats: int = 5) -> tuple[float, float]:
    """Best-of-N for two rivals, measured in alternating rounds.

    Interleaving decorrelates the two timings from one-sided load
    spikes (shared CI runners): a noisy neighbour hits both rivals,
    not just the second one.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def test_stream_matches_direct_calls():
    """Same scenarios either way -> identical per-cell points."""
    study = _study()
    direct = {
        cell: _evaluate_cell(scenario, study.registry)
        for cell, scenario in study.plan()
    }
    result = study.run(jobs=1, cache=ResultCache.disabled())
    assert {cell: r.point for cell, r in result.results().items()} == direct


def test_streaming_dispatch_overhead_under_5_percent(results_dir):
    study = _study()
    plan = study.plan()

    def direct():
        return [
            _evaluate_cell(scenario, study.registry)
            for _, scenario in plan
        ]

    def streamed():
        return study.run(jobs=1, cache=ResultCache.disabled())

    direct()  # warm both paths (imports, spatial-grid caches)
    streamed()
    direct_s, stream_s = _time_pair(direct, streamed)

    overhead = stream_s / direct_s - 1.0
    lines = [
        "Study streaming dispatch vs direct evaluator calls "
        f"({len(plan)} cells, n in {_NODES})",
        f"  direct calls       : {direct_s * 1e3:8.1f} ms",
        f"  Study.run (stream) : {stream_s * 1e3:8.1f} ms "
        f"({overhead * 100:+.1f}%)",
        f"  per-cell dispatch  : "
        f"{(stream_s - direct_s) / len(plan) * 1e6:8.1f} us",
    ]
    report = "\n".join(lines)
    print("\n" + report)
    (results_dir / "study_overhead.txt").write_text(report + "\n")

    # The ISSUE's bound: streaming dispatch <= 5% over direct calls.
    assert stream_s <= direct_s * 1.05, report
