#!/usr/bin/env python3
"""Quickstart: deploy a WASN, build the safety model, route a packet.

Walks through the full pipeline on one random network:

1. deploy 400 sensors uniformly in a 200 m x 200 m interest area
   (the paper's IA model);
2. build the unit-disk graph and pin the hull as edge nodes;
3. run the information construction (Definition 1 + Algorithm 2);
4. route one packet with each of the four schemes and compare.

Run:  python examples/quickstart.py [seed]
"""

import random
import sys

from repro import (
    GreedyRouter,
    InformationModel,
    LgfRouter,
    Rect,
    SlgfRouter,
    Slgf2Router,
    build_unit_disk_graph,
)
from repro.network import EdgeDetector, UniformDeployment
from repro.protocols import build_hole_boundaries


def main(seed: int = 2) -> None:
    rng = random.Random(seed)
    area = Rect(0, 0, 200, 200)
    radius = 20.0

    # 1-2. Deploy and connect.
    positions = UniformDeployment(area).sample(400, rng)
    graph = build_unit_disk_graph(positions, radius)
    graph = EdgeDetector(strategy="convex").apply(graph)
    print(
        f"deployed {len(graph)} nodes, {graph.edge_count()} links, "
        f"average degree {graph.average_degree():.1f}"
    )

    # 3. Information construction.
    model = InformationModel.build(graph)
    print(
        "fully-safe nodes: "
        f"{model.safety.safe_fraction() * 100:.0f}% "
        f"(labeling took {model.safety.rounds} rounds)"
    )

    # Pick a connected source/destination pair.
    component = sorted(graph.connected_components()[0])
    source, destination = rng.sample(component, 2)
    print(
        f"\nrouting node {source} -> node {destination} "
        f"(straight line: "
        f"{graph.position(source).distance_to(graph.position(destination)):.0f} m)"
    )

    # 4. Route with all four schemes.
    boundaries = build_hole_boundaries(graph)
    routers = {
        "GF   ": GreedyRouter(
            graph, recovery="boundhole", hole_boundaries=boundaries
        ),
        "LGF  ": LgfRouter(graph, candidate_scope="quadrant"),
        "SLGF ": SlgfRouter(model, candidate_scope="quadrant"),
        "SLGF2": Slgf2Router(model),
    }
    for name, router in routers.items():
        result = router.route(source, destination)
        phases = ", ".join(
            f"{phase}={hops}" for phase, hops in result.phase_hops().items()
        )
        status = "ok " if result.delivered else "FAIL"
        print(
            f"  {name} [{status}] {result.hops:3d} hops, "
            f"{result.length:6.1f} m  ({phases})"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
