#!/usr/bin/env python3
"""Quickstart: describe a WASN scenario, open a session, route packets.

The whole pipeline behind two calls of the public API:

1. a ``Scenario`` names the paper's IA setting declaratively (400
   sensors, 200 m x 200 m interest area, 20 m radio range);
2. a ``Session`` materialises it once — deployment, unit-disk graph,
   information construction (Definition 1 + Algorithm 2), BOUNDHOLE
   boundaries, one router per registered scheme;
3. one packet goes through every scheme for comparison;
4. the scenario's whole workload runs in a single ``run()`` call,
   returning a ``RouteSet`` with the paper's aggregate metrics.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro.api import Scenario, Session


def main(seed: int = 2) -> None:
    # 1-2. Declare the scenario; materialising the session builds the
    # network and the information model exactly once.
    scenario = Scenario(
        deployment_model="IA",
        node_count=400,
        seed=seed,
        routes_per_network=20,
    )
    session = Session(scenario)
    graph = session.graph
    print(
        f"deployed {len(graph)} nodes, {graph.edge_count()} links, "
        f"average degree {graph.average_degree():.1f}"
    )
    print(
        "fully-safe nodes: "
        f"{session.model.safety.safe_fraction() * 100:.0f}% "
        f"(labeling took {session.model.safety.rounds} rounds)"
    )

    # 3. Route one packet with every registered scheme.
    source, destination = session.sample_pairs(1)[0]
    line = graph.position(source).distance_to(graph.position(destination))
    print(
        f"\nrouting node {source} -> node {destination} "
        f"(straight line: {line:.0f} m)"
    )
    for name, result in session.route_all(source, destination).items():
        phases = ", ".join(
            f"{phase}={hops}" for phase, hops in result.phase_hops().items()
        )
        status = "ok " if result.delivered else "FAIL"
        print(
            f"  {name:5s} [{status}] {result.hops:3d} hops, "
            f"{result.length:6.1f} m  ({phases})"
        )

    # 4. The scenario's full workload, with lazy aggregates.
    routes = session.run()
    print(f"\nworkload: {len(routes)} routed packets")
    for name, agg in routes.aggregates().items():
        print(
            f"  {name:5s} delivery {agg.delivery_rate * 100:5.1f}%  "
            f"mean hops {agg.hops.mean:5.1f}  "
            f"mean length {agg.length.mean:6.1f} m"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
