#!/usr/bin/env python3
"""Dynamic failures: holes that appear at runtime.

Section 1 lists the dynamic causes of local minima — "node failures,
signal fading, communication jamming, power exhaustion".  This example
jams a disc of the network mid-operation and shows the system adapting:

1. route a packet across a healthy IA network (no unsafe areas on the
   path);
2. re-declare the same scenario with a ``RegionFailure`` centred on
   that path (jamming) — the session rebuilds the survivor topology
   and re-runs the information construction, discovering the new
   unsafe pocket;
3. route the same packet again: SLGF2 detours around the new hole
   while plain greedy forwarding has to fall into perimeter recovery.

Run:  python examples/dynamic_failures.py [seed]
"""

import random
import sys

from repro.api import RegionFailure, Scenario, Session, connected_session


def main(seed: int = 2) -> None:
    scenario = Scenario(
        deployment_model="IA",
        node_count=500,
        seed=seed,
        routers=("GF", "SLGF2"),
        router_options={"GF": {"recovery": "face"}},
    )
    session = connected_session(scenario)
    graph = session.graph
    rng = random.Random(seed)

    # A west-to-east packet.
    west = [u for u in graph.node_ids if graph.position(u).x < 30]
    east = [u for u in graph.node_ids if graph.position(u).x > 170]
    source, destination = rng.choice(west), rng.choice(east)

    before = session.route(source, destination, router="SLGF2")
    print(
        f"healthy network : SLGF2 {before.hops} hops, "
        f"{before.length:.0f} m, phases {before.phase_hops()}"
    )

    # Jam a disc centred on the middle of the delivered path: the same
    # scenario plus one failure-schedule entry, same network index, so
    # the deployment is identical and only the jammed nodes vanish.
    mid_node = before.path[len(before.path) // 2]
    jam = graph.position(mid_node)
    jammed_scenario = scenario.with_(
        failures=(
            RegionFailure(
                jam.x, jam.y, 30.0, protect=(source, destination)
            ),
        )
    )
    jammed = Session(jammed_scenario, session.network_index)
    killed = len(graph) - len(jammed.graph)
    print(
        f"\njamming a 30 m disc at ({jam.x:.0f}, {jam.y:.0f}) "
        f"kills {killed} nodes"
    )
    survivors = jammed.graph
    if not survivors.same_component(source, destination):
        print("network partitioned by the jammer; try another seed")
        return

    def unsafe_count(session_):
        return sum(
            1
            for u in session_.graph.node_ids
            if not all(session_.model.safety.tuple_of(u))
        )

    print(
        f"relabeling finds {unsafe_count(jammed)} nodes unsafe in some "
        f"type (was {unsafe_count(session)})"
    )

    after_slgf2 = jammed.route(source, destination, router="SLGF2")
    after_gf = jammed.route(source, destination, router="GF")
    print(
        f"\nafter jamming   : SLGF2 {after_slgf2.hops} hops, "
        f"{after_slgf2.length:.0f} m, phases {after_slgf2.phase_hops()}"
    )
    print(
        f"                  GF    {after_gf.hops} hops, "
        f"{after_gf.length:.0f} m, "
        f"{after_gf.perimeter_entries} perimeter entries"
    )
    detour = after_slgf2.length - before.length
    print(f"\nSLGF2's detour around the jammed disc costs {detour:.0f} m")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
