#!/usr/bin/env python3
"""Dynamic failures: holes that appear at runtime.

Section 1 lists the dynamic causes of local minima — "node failures,
signal fading, communication jamming, power exhaustion".  This example
jams a disc of the network mid-operation and shows the system adapting:

1. route a packet across a healthy IA network (no unsafe areas on the
   path);
2. fail every node in a disc sitting on that path (jamming);
3. re-run the information construction on the survivor graph — the
   labeling discovers the new unsafe pocket;
4. route the same packet again: SLGF2 detours around the new hole
   while plain greedy forwarding has to fall into perimeter recovery.

Run:  python examples/dynamic_failures.py [seed]
"""

import random
import sys

from repro import InformationModel, Point, Rect, build_unit_disk_graph
from repro.network import EdgeDetector, UniformDeployment, fail_region
from repro.routing import GreedyRouter, Slgf2Router

AREA = Rect(0, 0, 200, 200)


def build_network(seed: int):
    for attempt in range(seed, seed + 50):
        rng = random.Random(attempt)
        positions = UniformDeployment(AREA).sample(500, rng)
        graph = build_unit_disk_graph(positions, 20.0)
        graph = EdgeDetector(strategy="convex").apply(graph)
        if graph.is_connected():
            return graph
    raise RuntimeError("no connected deployment found")


def main(seed: int = 2) -> None:
    graph = build_network(seed)
    rng = random.Random(seed)

    # A west-to-east packet.
    west = [u for u in graph.node_ids if graph.position(u).x < 30]
    east = [u for u in graph.node_ids if graph.position(u).x > 170]
    source, destination = rng.choice(west), rng.choice(east)

    model = InformationModel.build(graph)
    before = Slgf2Router(model).route(source, destination)
    print(
        f"healthy network : SLGF2 {before.hops} hops, "
        f"{before.length:.0f} m, phases {before.phase_hops()}"
    )

    # Jam a disc centred on the middle of the delivered path.
    mid_node = before.path[len(before.path) // 2]
    jam_center = graph.position(mid_node)
    survivors, failed = fail_region(
        graph, (jam_center, 30.0), protect=[source, destination]
    )
    print(
        f"\njamming a 30 m disc at ({jam_center.x:.0f}, {jam_center.y:.0f}) "
        f"kills {len(failed)} nodes"
    )
    if not survivors.same_component(source, destination):
        print("network partitioned by the jammer; try another seed")
        return

    # Re-run the information construction on the survivor topology —
    # this is what the WASN itself would do after missing beacons.
    survivors = EdgeDetector(strategy="convex").apply(survivors)
    new_model = InformationModel.build(survivors)
    newly_unsafe = sum(
        1
        for u in survivors.node_ids
        if not all(new_model.safety.tuple_of(u))
    )
    print(
        f"relabeling finds {newly_unsafe} nodes unsafe in some type "
        f"(was {sum(1 for u in graph.node_ids if not all(model.safety.tuple_of(u)))})"
    )

    after_slgf2 = Slgf2Router(new_model).route(source, destination)
    after_gf = GreedyRouter(survivors).route(source, destination)
    print(
        f"\nafter jamming   : SLGF2 {after_slgf2.hops} hops, "
        f"{after_slgf2.length:.0f} m, phases {after_slgf2.phase_hops()}"
    )
    print(
        f"                  GF    {after_gf.hops} hops, "
        f"{after_gf.length:.0f} m, "
        f"{after_gf.perimeter_entries} perimeter entries"
    )
    detour = after_slgf2.length - before.length
    print(f"\nSLGF2's detour around the jammed disc costs {detour:.0f} m")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
