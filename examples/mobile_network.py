#!/usr/bin/env python3
"""Mobile network: routing while the topology drifts.

Section 1 lists node mobility among the dynamic causes of local
minima.  A ``Scenario`` with a ``MobilitySchedule`` runs a
random-waypoint swarm; ``Session.epochs()`` yields one session per
topology snapshot, each re-running the information construction
(periodic beaconing), and the example tracks how the safety landscape
and routing performance evolve:

* how many labels flip between epochs (the churn the broadcasts must
  carry);
* SLGF2 delivery/hops on each snapshot.

Run:  python examples/mobile_network.py [seed]
"""

import random
import sys

from repro.api import MobilitySchedule, Scenario, Session

EPOCHS = 6
DT = 10.0  # seconds between beacon rounds


def main(seed: int = 4) -> None:
    scenario = Scenario(
        deployment_model="IA",
        node_count=400,
        seed=seed,
        routers=("SLGF2",),
        mobility=MobilitySchedule(
            speed_min=1.0, speed_max=3.0, pause=2.0, dt=DT, epochs=EPOCHS
        ),
    )
    print(
        f"random-waypoint swarm: 400 nodes, speeds 1-3 m/s, "
        f"snapshot every {DT:.0f} s\n"
    )
    header = (
        f"{'epoch':>5s} {'edges':>6s} {'safe%':>6s} {'flips':>6s} "
        f"{'deliv':>6s} {'hops':>6s}"
    )
    print(header)
    print("-" * len(header))

    previous_statuses = None
    route_rng = random.Random(seed + 1)
    for epoch, snapshot in enumerate(Session(scenario).epochs()):
        graph, model = snapshot.graph, snapshot.model
        statuses = dict(model.safety.statuses)
        if previous_statuses is None:
            flips = 0
        else:
            flips = sum(
                1
                for u, tup in statuses.items()
                if previous_statuses.get(u) != tup
            )
        previous_statuses = statuses

        component = sorted(graph.connected_components()[0])
        delivered = 0
        hops = 0
        samples = 25
        for _ in range(samples):
            s, d = route_rng.sample(component, 2)
            result = snapshot.route(s, d)  # sole router: SLGF2
            delivered += result.delivered
            hops += result.hops
        print(
            f"{epoch:5d} {graph.edge_count():6d} "
            f"{model.safety.safe_fraction() * 100:5.1f}% {flips:6d} "
            f"{delivered:4d}/{samples:<2d} {hops / samples:6.1f}"
        )

    print(
        "\nflips = nodes whose 4-bit safety tuple changed since the\n"
        "previous beacon round: the broadcast traffic mobility induces."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
