#!/usr/bin/env python3
"""Multi-flow interference: the intro's second motivation, quantified.

"Not only can it avoid wasting energy in detours, but also less
interference occurs in other transmissions when fewer nodes are
involved in the transmission." (Section 1.)

This example declares one FA scenario with a central obstacle, routes
a batch of concurrent flows through every registered scheme, and
compares channel contention:

* busy nodes — how many sensors are occupied by *some* flow;
* max/mean channel load — how many flows a node overhears;
* conflicting flow pairs — flows that cannot share a time slot.

Run:  python examples/multi_flow_interference.py [seed]
"""

import random
import sys

from repro.analysis import analyze_flows
from repro.api import Scenario, connected_session
from repro.geometry import Rect
from repro.network import RectObstacle

FLOWS = 15


def main(seed: int = 6) -> None:
    scenario = Scenario(
        deployment_model="FA",
        node_count=450,
        seed=seed,
        obstacles=(RectObstacle(Rect(70, 60, 130, 140)),),
    )
    session = connected_session(scenario)
    graph = session.graph
    rng = random.Random(seed)
    # Every flow crosses the obstacle's shadow: west strip -> east strip.
    west = [u for u in graph.node_ids if graph.position(u).x < 40]
    east = [u for u in graph.node_ids if graph.position(u).x > 160]
    pairs = [(rng.choice(west), rng.choice(east)) for _ in range(FLOWS)]

    print(
        f"{FLOWS} concurrent west->east flows across an FA network "
        f"({len(graph)} nodes, central obstacle in the way)\n"
    )
    header = (
        f"{'scheme':7s} {'deliv':>6s} {'hops':>6s} {'busy':>6s} "
        f"{'max load':>8s} {'mean load':>9s} {'conflicts':>9s}"
    )
    print(header)
    print("-" * len(header))
    for name in session.routers:
        results = [session.route(s, d, router=name) for s, d in pairs]
        report = analyze_flows(graph, results)
        print(
            f"{name:7s} {report.delivered:4d}/{report.flows:<2d}"
            f"{report.total_hops:6d} {report.busy_nodes:6d} "
            f"{report.max_channel_load:8d} {report.mean_channel_load:9.2f} "
            f"{report.conflicting_flow_pairs:5d}/"
            f"{report.flows * (report.flows - 1) // 2}"
        )
    print(
        "\nbusy = nodes occupied by at least one flow; load = flows a\n"
        "node overhears; conflicts = flow pairs whose footprints overlap."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
