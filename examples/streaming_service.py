#!/usr/bin/env python3
"""Streaming service: the paper's motivating workload.

Section 1: straightforward paths matter for "recent WASN applications
that require a streaming service to deliver large amount of data" —
every detour hop costs transmission energy and interferes with other
flows for the *whole stream*, not just one packet.

A ``Scenario`` with an explicit obstacle sets up the hard case (a wide
forbidden strip between source and sink); a live ``EnergyMeter``
attached through the ``on_hop`` routing hook accounts a 10,000-packet
stream per scheme:

* total transmissions (hops x packets);
* total radio energy (first-order radio model, 1 kbit packets);
* interference footprint (how many nodes overhear the stream).

Run:  python examples/streaming_service.py [seed]
"""

import random
import sys

from repro.api import EnergyMeter, Scenario, connected_session
from repro.geometry import Rect
from repro.network import RectObstacle
from repro.routing import interference_footprint

PACKETS = 10_000
PACKET_BITS = 1_000


def main(seed: int = 3) -> None:
    scenario = Scenario(
        deployment_model="FA",
        node_count=450,
        seed=seed,
        obstacles=(RectObstacle(Rect(40, 80, 160, 120)),),
        packet_bits=PACKET_BITS,
    )
    session = connected_session(scenario)
    graph = session.graph

    # A south-side source streaming to a north-side sink.
    rng = random.Random(seed)
    south = [u for u in graph.node_ids if graph.position(u).y < 40]
    north = [u for u in graph.node_ids if graph.position(u).y > 160]
    source, sink = rng.choice(south), rng.choice(north)

    print(
        f"stream: node {source} (south) -> node {sink} (north), "
        f"{PACKETS} packets x {PACKET_BITS} bits, obstacle in between\n"
    )
    header = (
        f"{'scheme':7s} {'hops':>5s} {'path m':>8s} "
        f"{'stream tx':>10s} {'energy J':>9s} {'overhearers':>11s}"
    )
    print(header)
    print("-" * len(header))

    baseline = None
    for name in session.routers:
        # The meter rides the hop hook: per-packet energy accumulates
        # while the packet is in flight, no post-hoc path walk needed.
        meter = EnergyMeter(bits=PACKET_BITS)
        result = session.route(source, sink, router=name, on_hop=meter.on_hop)
        if not result.delivered:
            print(f"{name:7s} failed: {result.failure_reason}")
            continue
        stream_tx = result.hops * PACKETS
        energy = PACKETS * meter.total_j
        overhearers = interference_footprint(result, graph)
        print(
            f"{name:7s} {result.hops:5d} {result.length:8.1f} "
            f"{stream_tx:10d} {energy:9.3f} {overhearers:11d}"
        )
        if baseline is None:
            baseline = energy
        else:
            saved = (1 - energy / baseline) * 100
            if saved > 0:
                print(f"{'':7s} -> saves {saved:.0f}% energy vs GF")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
