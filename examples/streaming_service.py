#!/usr/bin/env python3
"""Streaming service: the paper's motivating workload.

Section 1: straightforward paths matter for "recent WASN applications
that require a streaming service to deliver large amount of data" —
every detour hop costs transmission energy and interferes with other
flows for the *whole stream*, not just one packet.

This example sets up a long-lived stream across an FA network with a
large obstacle between source and sink, then accounts a 10,000-packet
stream per routing scheme:

* total transmissions (hops x packets);
* total radio energy (first-order radio model, 1 kbit packets);
* interference footprint (how many nodes overhear the stream).

Run:  python examples/streaming_service.py [seed]
"""

import random
import sys

from repro import InformationModel, Rect, build_unit_disk_graph
from repro.network import EdgeDetector, RectObstacle, UniformDeployment
from repro.protocols import build_hole_boundaries
from repro.routing import (
    GreedyRouter,
    LgfRouter,
    RadioEnergyModel,
    SlgfRouter,
    Slgf2Router,
    interference_footprint,
    path_energy,
)

PACKETS = 10_000
PACKET_BITS = 1_000


def build_network(seed: int):
    """FA-style network: a wide obstacle across the middle."""
    area = Rect(0, 0, 200, 200)
    obstacle = RectObstacle(Rect(40, 80, 160, 120))
    for attempt in range(seed, seed + 50):
        rng = random.Random(attempt)
        positions = UniformDeployment(area, (obstacle,)).sample(450, rng)
        graph = build_unit_disk_graph(positions, 20.0)
        graph = EdgeDetector(strategy="convex").apply(graph)
        if graph.is_connected():
            return graph, obstacle
    raise RuntimeError("no connected deployment found")


def pick_endpoints(graph, rng):
    """A south-side source streaming to a north-side sink."""
    south = [
        u for u in graph.node_ids if graph.position(u).y < 40
    ]
    north = [
        u for u in graph.node_ids if graph.position(u).y > 160
    ]
    return rng.choice(south), rng.choice(north)


def main(seed: int = 3) -> None:
    graph, obstacle = build_network(seed)
    rng = random.Random(seed)
    source, sink = pick_endpoints(graph, rng)
    model = InformationModel.build(graph)
    boundaries = build_hole_boundaries(graph)
    energy_model = RadioEnergyModel()

    print(
        f"stream: node {source} (south) -> node {sink} (north), "
        f"{PACKETS} packets x {PACKET_BITS} bits, obstacle in between\n"
    )
    header = (
        f"{'scheme':7s} {'hops':>5s} {'path m':>8s} "
        f"{'stream tx':>10s} {'energy J':>9s} {'overhearers':>11s}"
    )
    print(header)
    print("-" * len(header))

    routers = {
        "GF": GreedyRouter(
            graph, recovery="boundhole", hole_boundaries=boundaries
        ),
        "LGF": LgfRouter(graph, candidate_scope="quadrant"),
        "SLGF": SlgfRouter(model, candidate_scope="quadrant"),
        "SLGF2": Slgf2Router(model),
    }
    baseline = None
    for name, router in routers.items():
        result = router.route(source, sink)
        if not result.delivered:
            print(f"{name:7s} failed: {result.failure_reason}")
            continue
        stream_tx = result.hops * PACKETS
        energy = PACKETS * path_energy(
            result, graph, bits=PACKET_BITS, model=energy_model
        )
        overhearers = interference_footprint(result, graph)
        print(
            f"{name:7s} {result.hops:5d} {result.length:8.1f} "
            f"{stream_tx:10d} {energy:9.3f} {overhearers:11d}"
        )
        if baseline is None:
            baseline = energy
        else:
            saved = (1 - energy / baseline) * 100
            if saved > 0:
                print(f"{'':7s} -> saves {saved:.0f}% energy vs GF")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
