#!/usr/bin/env python3
"""Full evaluation: regenerate every figure of Section 5.

Drives the experiment harness over both deployment models and prints
the three figure tables per model (plus ASCII charts), optionally at
the paper's full scale:

    python examples/full_evaluation.py            # quick sweep (~2 min)
    python examples/full_evaluation.py --full     # paper scale (longer)
    python examples/full_evaluation.py --csv out/ # also write CSVs

Equivalent CLI: ``repro-wasn [--full] [--csv-dir out/]``.
"""

import argparse
import sys
from pathlib import Path

from repro.experiments import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    figure_table,
    format_table,
    run_sweep,
    to_chart,
    to_csv,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper scale")
    parser.add_argument("--csv", type=Path, default=None, help="CSV dir")
    args = parser.parse_args()
    config = PAPER_CONFIG if args.full else QUICK_CONFIG

    print(
        f"sweep: n in {config.node_counts}, "
        f"{config.networks_per_point} networks x "
        f"{config.routes_per_network} routes per point\n",
        file=sys.stderr,
    )
    for model in ("IA", "FA"):
        sweep = run_sweep(
            config, model, progress=lambda s: print(s, file=sys.stderr)
        )
        for figure_id in ("fig5", "fig6", "fig7"):
            table = figure_table(sweep, figure_id)
            print()
            print(format_table(table))
            print()
            print(to_chart(table))
            if args.csv is not None:
                path = to_csv(
                    table, args.csv / f"{figure_id}_{model.lower()}.csv"
                )
                print(f"[csv] {path}", file=sys.stderr)


if __name__ == "__main__":
    main()
