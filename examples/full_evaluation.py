#!/usr/bin/env python3
"""Full evaluation: regenerate every figure of Section 5.

Drives the experiment harness over both deployment models and prints
the three figure tables per model (plus ASCII charts), optionally at
the paper's full scale:

    python examples/full_evaluation.py              # quick sweep
    python examples/full_evaluation.py --full       # paper scale
    python examples/full_evaluation.py --jobs 8     # 8 worker processes
    python examples/full_evaluation.py --csv out/   # also write CSVs

Points are cached under ``.repro_cache/`` so a re-run (or a run after
an interrupted one) only computes what is missing; pass ``--no-cache``
to force recomputation.

Equivalent CLI: ``repro-wasn [--full] [--jobs N] [--csv-dir out/]``.
"""

import argparse
import sys
from pathlib import Path

from repro.experiments import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    ResultCache,
    all_figures,
    default_cache,
    format_table,
    resolve_jobs,
    run_sweeps,
    to_chart,
    to_csv,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper scale")
    parser.add_argument("--csv", type=Path, default=None, help="CSV dir")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="ignore the result cache"
    )
    args = parser.parse_args()
    config = PAPER_CONFIG if args.full else QUICK_CONFIG
    cache = ResultCache.disabled() if args.no_cache else default_cache()
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        parser.error(str(error))

    print(
        f"sweep: n in {config.node_counts}, "
        f"{config.networks_per_point} networks x "
        f"{config.routes_per_network} routes per point\n",
        file=sys.stderr,
    )
    sweeps = run_sweeps(
        config,
        ("IA", "FA"),
        progress=lambda s: print(s, file=sys.stderr),
        jobs=jobs,
        cache=cache,
    )
    for model in ("IA", "FA"):
        sweep = sweeps[model]
        for figure_id, table in all_figures(sweep).items():
            print()
            print(format_table(table))
            print()
            print(to_chart(table))
            if args.csv is not None:
                path = to_csv(
                    table, args.csv / f"{figure_id}_{model.lower()}.csv"
                )
                print(f"[csv] {path}", file=sys.stderr)
    if cache is not None and cache.enabled:
        print(f"[cache] {cache.stats()} ({cache.root})", file=sys.stderr)


if __name__ == "__main__":
    main()
