#!/usr/bin/env python3
"""Full evaluation: regenerate every figure of Section 5.

Drives the experiment harness as a declarative
:class:`repro.api.Study` — the density grid over both deployment
models, streamed cell by cell — and prints the three figure tables
per model (plus ASCII charts), optionally at the paper's full scale:

    python examples/full_evaluation.py              # quick sweep
    python examples/full_evaluation.py --full       # paper scale
    python examples/full_evaluation.py --tiny       # CI smoke scale
    python examples/full_evaluation.py --jobs 8     # 8 worker processes
    python examples/full_evaluation.py --csv out/   # also write CSVs
    python examples/full_evaluation.py --routers GF SLGF2

Router selection is by registry name, so schemes registered through
``repro.api.register_router`` join the study and the legends
automatically.  Cells are cached under ``.repro_cache/`` keyed by
their full scenario fingerprint, so a re-run (or a run after an
interrupted one) only computes what is missing; pass ``--no-cache``
to force recomputation.

Equivalent CLI: ``repro-wasn [--full] [--jobs N] [--csv-dir out/]``.
"""

import argparse
import sys
from pathlib import Path

from repro.api import Study, default_registry
from repro.experiments import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    ExperimentConfig,
    ResultCache,
    all_figures,
    default_cache,
    format_table,
    resolve_jobs,
    to_chart,
    to_csv,
)

# Smoke-test scale: one tiny panel point per model, seconds not
# minutes.  CI runs this to catch API drift in the example itself.
TINY_CONFIG = ExperimentConfig(
    node_counts=(300,), networks_per_point=2, routes_per_network=5
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--full", action="store_true", help="paper scale")
    scale.add_argument(
        "--tiny", action="store_true", help="smoke-test scale (CI)"
    )
    parser.add_argument("--csv", type=Path, default=None, help="CSV dir")
    parser.add_argument(
        "--routers",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"schemes to evaluate (default: {', '.join(default_registry)})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="ignore the result cache"
    )
    args = parser.parse_args()
    if args.full:
        config = PAPER_CONFIG
    elif args.tiny:
        config = TINY_CONFIG
    else:
        config = QUICK_CONFIG
    cache = ResultCache.disabled() if args.no_cache else default_cache()
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        parser.error(str(error))
    if args.routers is not None:
        message = default_registry.describe_unknown(args.routers)
        if message:
            parser.error(message)

    print(
        f"sweep: n in {config.node_counts}, "
        f"{config.networks_per_point} networks x "
        f"{config.routes_per_network} routes per point\n",
        file=sys.stderr,
    )
    study = Study.from_config(config, ("IA", "FA"), routers=args.routers)
    results = study.run(
        jobs=jobs,
        cache=cache,
        progress=lambda event: print(event, file=sys.stderr),
    )
    for model in ("IA", "FA"):
        sweep_result = results.sweep_result(model)
        for figure_id, table in all_figures(sweep_result).items():
            print()
            print(format_table(table))
            print()
            print(to_chart(table))
            if args.csv is not None:
                path = to_csv(
                    table, args.csv / f"{figure_id}_{model.lower()}.csv"
                )
                print(f"[csv] {path}", file=sys.stderr)
    if cache is not None and cache.enabled:
        print(f"[cache] {cache.stats()} ({cache.root})", file=sys.stderr)


if __name__ == "__main__":
    main()
