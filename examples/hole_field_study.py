#!/usr/bin/env python3
"""Hole field study: visualise unsafe areas and the routes around them.

Declares an FA scenario with an L-shaped forbidden area (the paper's
Fig. 1(a) "intertwined local minima" shape), prints an ASCII map of

* the deployment and the obstacle,
* the type-1 unsafe area the labeling discovers south-west of it,
* the SLGF2 route versus the plain LGF route for a crossing packet —
  with a ``TraceRecorder`` on the routing hooks reporting SLGF2's
  phase transitions as they happened,

and reports the estimated shape rectangles ``E_1(u)`` stored at the
unsafe nodes closest to the obstacle's south-west corner.

Run:  python examples/hole_field_study.py [seed]
"""

import random
import sys

from repro.api import Scenario, TraceRecorder, connected_session
from repro.geometry import Rect
from repro.network import RectObstacle
from repro.viz import network_map

AREA = Rect(0, 0, 200, 200)
# An L-shape opening toward the south-west: the worst case for
# north-east (type-1) forwarding.
OBSTACLE_PARTS = (
    RectObstacle(Rect(80, 80, 170, 105)),
    RectObstacle(Rect(145, 80, 170, 170)),
)


def main(seed: int = 1) -> None:
    scenario = Scenario(
        deployment_model="FA",
        node_count=500,
        area=AREA,
        seed=seed,
        obstacles=OBSTACLE_PARTS,
        routers=("LGF", "SLGF2"),
    )
    session = connected_session(scenario)
    graph, model = session.graph, session.model

    unsafe_1 = model.safety.unsafe_nodes(1)
    print(
        f"type-1 unsafe nodes: {len(unsafe_1)} of {len(graph)} "
        f"({len(model.safety.unsafe_areas(1))} unsafe areas)"
    )
    print("\nmap: '.' nodes, 'u' type-1 unsafe, '#' forbidden area\n")
    print(
        network_map(
            graph,
            AREA,
            obstacles=OBSTACLE_PARTS,
            highlight=unsafe_1,
        )
    )

    # A packet that must cross the obstacle's shadow: from the pocket
    # side (inside the L) to the far north-east corner region.
    rng = random.Random(seed)
    pocket = [
        u
        for u in graph.node_ids
        if Rect(85, 30, 140, 75).contains(graph.position(u))
    ]
    target_region = [
        u
        for u in graph.node_ids
        if Rect(150, 175, 200, 200).contains(graph.position(u))
        and graph.same_component(u, pocket[0])
    ]
    source = rng.choice(pocket)
    destination = rng.choice(target_region)

    for name in session.routers:
        recorder = TraceRecorder()
        result = session.route(
            source,
            destination,
            router=name,
            on_hop=recorder.on_hop,
            on_phase_change=recorder.on_phase_change,
        )
        print(
            f"\n{name}: delivered={result.delivered} hops={result.hops} "
            f"length={result.length:.0f} m phases={result.phase_hops()}"
        )
        if len(recorder.phase_changes) > 1:
            transitions = ", ".join(
                f"hop {index}: {previous or 'start'} -> {new}"
                for index, previous, new in recorder.phase_changes
            )
            print(f"   phase transitions: {transitions}")
        print(
            network_map(
                graph, AREA, obstacles=OBSTACLE_PARTS, path=result.path
            )
        )

    # Show the estimated shape information near the pocket corner.
    print("\nestimated E_1 rectangles stored at unsafe nodes in the pocket:")
    shown = 0
    for u in sorted(pocket):
        rect = model.estimated_area(u, 1)
        if rect is None or rect.is_degenerate():
            continue
        print(
            f"  node {u:4d} at ({graph.position(u).x:5.1f}, "
            f"{graph.position(u).y:5.1f}): E_1 = "
            f"[{rect.x_min:.0f}:{rect.x_max:.0f}, "
            f"{rect.y_min:.0f}:{rect.y_max:.0f}]"
        )
        shown += 1
        if shown == 8:
            break


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
