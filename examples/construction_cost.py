#!/usr/bin/env python3
"""Construction cost: what the information model costs on the air.

Section 5 notes "the construction cost of safety information has been
proved to be the minimum in [7]".  This example measures the message
cost of every information base on the same networks, across densities:

* hello beacons (needed by everything);
* the distributed safety + shape construction (Algorithm 2);
* BOUNDHOLE boundary walks (what the GF baseline needs instead).

Networks come from IA ``Scenario``/``Session`` materialisation (one
session per density per network index); the protocol runs replay the
distributed construction on each session's graph.

Run:  python examples/construction_cost.py
"""

from repro.api import Scenario, Session
from repro.protocols import run_hello, run_safety_protocol


def main() -> None:
    header = (
        f"{'nodes':>5s} {'hello tx':>8s} {'safety tx':>9s} "
        f"{'rounds':>6s} {'boundhole hops':>14s} {'holes':>5s}"
    )
    print("message cost of information construction (IA model)\n")
    print(header)
    print("-" * len(header))
    for n in range(400, 801, 100):
        hello_tx = safety_tx = rounds = walk_hops = holes = 0
        networks = 5
        scenario = Scenario(
            deployment_model="IA",
            node_count=n,
            seed=0,
            networks=networks,
            routers=("LGF",),  # cheapest scheme; we only need networks
        )
        for index in range(networks):
            session = Session(scenario, index)
            graph = session.graph
            _, hello = run_hello(graph)
            _, safety = run_safety_protocol(graph)
            boundaries = session.boundaries  # built once by the session
            hello_tx += hello.transmissions
            safety_tx += safety.transmissions
            rounds += safety.rounds
            walk_hops += boundaries.total_boundary_hops()
            holes += len(boundaries)
        print(
            f"{n:5d} {hello_tx // networks:8d} {safety_tx // networks:9d} "
            f"{rounds / networks:6.1f} {walk_hops // networks:14d} "
            f"{holes / networks:5.1f}"
        )
    print(
        "\nsafety tx counts every (status|shape)-change broadcast; the\n"
        "hello beacons are shared by both schemes.  Denser networks have\n"
        "fewer unsafe nodes, so the safety construction gets *cheaper*\n"
        "with density while boundary walks track hole perimeters."
    )


if __name__ == "__main__":
    main()
