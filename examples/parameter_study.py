#!/usr/bin/env python3
"""Parameter study: routing quality under a growing obstacle field.

The paper's FA model fixes three forbidden areas; obstacle-density
studies (cf. Powell & Nikoletseas, *Geographic Routing Around
Obstacles in Sensor Networks*) ask how each scheme degrades as the
field fills with holes.  With the Study API that is one declarative
grid — the obstacle count is just another Scenario axis::

    python examples/parameter_study.py             # quick study
    python examples/parameter_study.py --tiny      # CI smoke scale
    python examples/parameter_study.py --jobs 4    # worker processes
    python examples/parameter_study.py --csv out/obstacles.csv

Cells stream as they finish (one structured ProgressEvent each, with
completed/total counters and an ETA), are cached under
``.repro_cache/`` by full scenario fingerprint, and the finished
study prints per-metric tables plus per-scheme delivery curves via
``StudyResult.series``.
"""

import argparse
import sys
from pathlib import Path

from repro.api import Scenario, Study
from repro.experiments import ResultCache, default_cache, resolve_jobs

# The quick study: a mid-density FA network, five obstacle counts.
QUICK = dict(node_count=500, networks=4, routes_per_network=10)
QUICK_OBSTACLES = (1, 2, 4, 6, 8)

# Smoke-test scale for CI: seconds, not minutes.
TINY = dict(node_count=260, networks=1, routes_per_network=4)
TINY_OBSTACLES = (1, 3)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true", help="smoke-test scale (CI)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="ignore the result cache"
    )
    parser.add_argument(
        "--csv", type=Path, default=None, help="also write the study CSV"
    )
    args = parser.parse_args(argv)
    scale = TINY if args.tiny else QUICK
    counts = TINY_OBSTACLES if args.tiny else QUICK_OBSTACLES
    cache = ResultCache.disabled() if args.no_cache else default_cache()
    jobs = resolve_jobs(args.jobs)

    base = Scenario(
        deployment_model="FA",
        seed=11,
        min_obstacle_size=20.0,
        max_obstacle_size=45.0,
        **scale,
    )
    study = Study(base, vary={"obstacle_count": counts})
    print(
        f"obstacle-density study: {len(study)} cells "
        f"(n={base.node_count}, {base.networks} networks x "
        f"{base.routes_per_network} routes each)\n",
        file=sys.stderr,
    )
    result = study.run(
        jobs=jobs,
        cache=cache,
        progress=lambda event: print(event, file=sys.stderr),
    )

    for metric in ("delivery_rate", "mean_hops", "mean_length"):
        print()
        print(result.table(metric))

    print("\ndelivery vs obstacle count:")
    for router in result.routers():
        axis, values = result.series(router, "delivery_rate")
        curve = "  ".join(
            f"{count}:{rate:.2f}" for count, rate in zip(axis, values)
        )
        print(f"  {router:>6}  {curve}")

    if args.csv is not None:
        path = result.to_csv(args.csv)
        print(f"[csv] {path}", file=sys.stderr)
    if cache is not None and cache.enabled:
        print(f"[cache] {cache.stats()} ({cache.root})", file=sys.stderr)


if __name__ == "__main__":
    main()
