"""Command-line entry point: regenerate the paper's figures.

``repro-wasn`` runs the Section 5 evaluation and prints/saves the
figure tables::

    repro-wasn --quick                 # reduced sweep, tables to stdout
    repro-wasn --full --csv-dir out/   # paper-scale sweep + CSV files
    repro-wasn --figures fig6 --models FA
    repro-wasn --routers GF SLGF2      # any registered schemes
    repro-wasn --list-routers          # what the registry knows
    repro-wasn --full --jobs 8         # 8 worker processes
    repro-wasn --full                  # second run: served from cache
    repro-wasn serve --port 8707       # routing-as-a-service (HTTP)
    repro-wasn dist-worker --plan shard_0.json --bundle out/shard_0
                                       # headless shard worker (repro.dist)

The CLI drives everything through :mod:`repro.api`: router selection
is by registered name (schemes added via
:func:`repro.api.register_router` appear automatically), and the
evaluation runs as a declarative :class:`repro.api.Study` — the
density grid streamed cell by cell, with one structured
:class:`repro.api.ProgressEvent` per cell (counters and ETA) printed
to stderr.

Study cells are cached under ``.repro_cache/`` keyed by their full
scenario fingerprint (override the directory with ``--cache-dir`` or
``REPRO_CACHE_DIR``; disable with ``--no-cache`` or
``REPRO_CACHE=0``), so re-running — or resuming an interrupted run —
only computes missing cells.  Worker count defaults to ``REPRO_JOBS``
(or 1).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api import ProgressEvent, Study, default_registry
from repro.experiments import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    ResultCache,
    default_cache,
    figure_table,
    format_table,
    resolve_jobs,
    to_chart,
    to_csv,
    to_json,
)

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wasn",
        description=(
            "Regenerate the evaluation figures of 'A Straightforward "
            "Path Routing in Wireless Ad Hoc Sensor Networks' "
            "(ICDCS Workshops 2009)."
        ),
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        action="store_true",
        help="reduced sweep (default): 5 densities x 10 networks",
    )
    scale.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweep: 9 densities x 100 networks",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        default=["fig5", "fig6", "fig7"],
        choices=["fig5", "fig6", "fig7"],
        help="which figures to regenerate",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=["IA", "FA"],
        choices=["IA", "FA"],
        help="deployment models (panels) to evaluate",
    )
    parser.add_argument(
        "--routers",
        nargs="+",
        default=None,
        metavar="NAME",
        help=(
            "routing schemes to evaluate, by registered name "
            "(default: all; see --list-routers)"
        ),
    )
    parser.add_argument(
        "--list-routers",
        action="store_true",
        help="list the registered routing schemes and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the sweep (0 = one per CPU; "
            "default: $REPRO_JOBS or 1)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every point, ignoring the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR "
        "or .repro_cache/)",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write each panel as CSV into this directory",
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="also write each panel as JSON into this directory",
    )
    parser.add_argument(
        "--no-chart",
        action="store_true",
        help="suppress the ASCII charts",
    )
    return parser


def _resolve_cache(args: argparse.Namespace) -> ResultCache | None:
    if args.no_cache:
        return ResultCache.disabled()
    if args.cache_dir is not None:
        return ResultCache(args.cache_dir)
    return default_cache()


def _list_routers() -> None:
    width = max(len(name) for name in default_registry.names())
    for spec in default_registry.specs():
        print(f"  {spec.name:<{width}}  {spec.description}")


def main(argv: list[str] | None = None) -> int:
    """Entry point: figure sweeps, or the routing service.

    ``repro-wasn serve ...`` hands over to the service CLI
    (:mod:`repro.serve.cli`) — a resident-session query server over
    HTTP; ``repro-wasn dist-worker ...`` to the distributed-execution
    shard worker (:mod:`repro.dist.worker`); everything else is the
    figure pipeline below.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # Imported on demand: the figure pipeline must not pay for
        # (or depend on) the service layer.
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "dist-worker":
        # Likewise on demand: the headless shard worker of the
        # distributed layer (:mod:`repro.dist.worker`).
        from repro.dist.worker import main as worker_main

        return worker_main(argv[1:])
    parser = _parser()
    args = parser.parse_args(argv)
    if args.list_routers:
        _list_routers()
        return 0
    config = PAPER_CONFIG if args.full else QUICK_CONFIG
    cache = _resolve_cache(args)
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        parser.error(str(error))  # exits 2 with usage, no traceback
    if args.routers is not None:
        message = default_registry.describe_unknown(args.routers)
        if message:
            parser.error(message)

    # One ProgressEvent sink for everything the CLI says on stderr:
    # the study's per-cell events (counters/ETA ride along for any
    # richer consumer) and the CLI's own notes, as note events.
    last_unit: list[ProgressEvent] = []

    def emit(event: ProgressEvent) -> None:
        if event.kind in ("cached", "computed"):
            last_unit[:] = [event]
        print(event, file=sys.stderr)

    # Repeated --models values would repeat a grid axis value; the
    # panels are per model anyway, so duplicates simply collapse.
    models = tuple(dict.fromkeys(args.models))
    study = Study.from_config(config, models, routers=args.routers)
    results = study.run(jobs=jobs, cache=cache, progress=emit)
    if last_unit:
        # The final unit event carries the run's cached/computed split
        # (completed == cached + computed, never double-counted).
        final = last_unit[0]
        rate = 100.0 * final.cached / final.total if final.total else 0.0
        emit(
            ProgressEvent.note(
                f"[study] {final.total} cells: {final.cached} cached, "
                f"{final.computed} computed ({rate:.0f}% cache hit rate)"
            )
        )
    for model in models:
        sweep = results.sweep_result(model)
        for figure_id in args.figures:
            table = figure_table(sweep, figure_id)
            print()
            print(format_table(table))
            if not args.no_chart:
                print()
                print(to_chart(table))
            if args.csv_dir is not None:
                path = to_csv(
                    table, args.csv_dir / f"{figure_id}_{model.lower()}.csv"
                )
                emit(ProgressEvent.note(f"[csv] {path}"))
            if args.json_dir is not None:
                path = to_json(
                    table, args.json_dir / f"{figure_id}_{model.lower()}.json"
                )
                emit(ProgressEvent.note(f"[json] {path}"))
    if cache is not None and cache.enabled:
        emit(ProgressEvent.note(f"[cache] {cache.stats()} ({cache.root})"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
