"""Command-line entry point: regenerate the paper's figures.

``repro-wasn`` runs the Section 5 evaluation and prints/saves the
figure tables::

    repro-wasn --quick                 # reduced sweep, tables to stdout
    repro-wasn --full --csv-dir out/   # paper-scale sweep + CSV files
    repro-wasn --figures fig6 --models FA

The same functionality is available programmatically via
:mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    figure_table,
    format_table,
    run_sweep,
    to_chart,
    to_csv,
)

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wasn",
        description=(
            "Regenerate the evaluation figures of 'A Straightforward "
            "Path Routing in Wireless Ad Hoc Sensor Networks' "
            "(ICDCS Workshops 2009)."
        ),
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        action="store_true",
        help="reduced sweep (default): 5 densities x 10 networks",
    )
    scale.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweep: 9 densities x 100 networks",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        default=["fig5", "fig6", "fig7"],
        choices=["fig5", "fig6", "fig7"],
        help="which figures to regenerate",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=["IA", "FA"],
        choices=["IA", "FA"],
        help="deployment models (panels) to evaluate",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write each panel as CSV into this directory",
    )
    parser.add_argument(
        "--no-chart",
        action="store_true",
        help="suppress the ASCII charts",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: run sweeps and print/persist the figure panels."""
    args = _parser().parse_args(argv)
    config = PAPER_CONFIG if args.full else QUICK_CONFIG

    for model in args.models:
        sweep = run_sweep(
            config, model, progress=lambda line: print(line, file=sys.stderr)
        )
        for figure_id in args.figures:
            table = figure_table(sweep, figure_id)
            print()
            print(format_table(table))
            if not args.no_chart:
                print()
                print(to_chart(table))
            if args.csv_dir is not None:
                path = to_csv(
                    table, args.csv_dir / f"{figure_id}_{model.lower()}.csv"
                )
                print(f"[csv] {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
