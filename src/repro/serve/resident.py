"""Resident sessions: loaded-once networks answering query streams.

A :class:`ResidentSession` is the serving form of a
:class:`~repro.api.Session`: the scenario is materialised exactly once
(deployment, failure schedule, columnar TopologyCore, routers), then
kept in memory answering queries until evicted.  Three mechanisms turn
that into a service rather than a cache:

* **Micro-batching.**  Every query enters a bounded per-session queue;
  a single drain task coalesces whatever arrives within
  ``flush_interval`` (up to ``max_batch`` items) into one executor
  job, so concurrent clients amortise the vectorized
  :meth:`~repro.routing.base.Router.route_batch` kernel instead of
  paying its dispatch per request.  Single-route queries are grouped
  per router into one batch call; results are bit-identical to
  sequential ``route()`` calls (the cross-backend suite pins that), so
  coalescing is invisible to clients.
* **Live topology.**  A topology update is queued like any query but
  acts as a *barrier*: it is applied alone, between batches, through a
  :class:`~repro.network.dynamic.DynamicTopology` that every resident
  router tracks — routers rebind incrementally (lazy cache
  invalidation, PR 3) instead of being rebuilt.  Queries before the
  barrier see the old topology, queries after see the new one, and no
  query ever sees half an update.
* **Bounded intake.**  The queue is the backpressure valve: when it is
  full, :meth:`submit` raises :class:`Backpressure` immediately (the
  HTTP layer answers 503 + ``Retry-After``) instead of letting latency
  grow without bound.  Each queued item carries a deadline; items that
  expire while queued are answered with a timeout error, not routed
  pointlessly.

The CPU-bound work — materialisation, routing, topology application —
always runs in the server's executor, never on the event loop.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.api import RouteSet, Scenario, Session, scenario_fingerprint
from repro.api.registry import RouterRegistry, default_registry
from repro.network.dynamic import DynamicTopology, TopologyDelta
from repro.network.edges import EdgeDetector
from repro.routing.base import RoutingError
from repro.serve.wire import WireError

__all__ = [
    "Backpressure",
    "LatencyHistogram",
    "ResidentSession",
    "SessionManager",
    "SessionStats",
]


class Backpressure(Exception):
    """The session's intake queue is full; retry after a short wait."""

    def __init__(self, session_id: str, retry_after: float) -> None:
        super().__init__(
            f"session {session_id[:12]} is at queue capacity; "
            f"retry in {retry_after:.2f}s"
        )
        self.retry_after = retry_after


class LatencyHistogram:
    """Fixed-bucket latency histogram (milliseconds).

    Buckets are powers-of-ish milliseconds, wide enough for anything a
    resident session can produce; percentiles are bucket-resolution
    estimates (the upper bound of the bucket containing the rank),
    which is what a long-running server can afford to keep — exact
    percentiles over an unbounded query stream cannot be O(1) memory.
    """

    BOUNDS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                 500.0, 1000.0, 2500.0, 10000.0)

    def __init__(self) -> None:
        self._counts = [0] * (len(self.BOUNDS_MS) + 1)
        self._total = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0

    def record(self, elapsed_s: float) -> None:
        ms = elapsed_s * 1e3
        index = 0
        for bound in self.BOUNDS_MS:
            if ms <= bound:
                break
            index += 1
        self._counts[index] += 1
        self._total += 1
        self._sum_ms += ms
        self._max_ms = max(self._max_ms, ms)

    def percentile(self, p: float) -> float:
        """Upper bound (ms) of the bucket holding the ``p``-quantile.

        The rank is an integral sample index, clamped to [1, total]:
        ``p <= 0`` asks for the first recorded sample (first non-empty
        bucket, never an empty leading bucket) and ``p >= 1.0`` for the
        last one.  Ranks landing in the overflow bucket answer with the
        observed maximum — the only upper bound that bucket has.
        """
        if not self._total:
            return 0.0
        rank = 1 if p <= 0 else min(self._total, math.ceil(p * self._total))
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                if index < len(self.BOUNDS_MS):
                    return self.BOUNDS_MS[index]
                return self._max_ms
        return self._max_ms

    def to_dict(self) -> dict:
        return {
            "count": self._total,
            "mean_ms": self._sum_ms / self._total if self._total else 0.0,
            "max_ms": self._max_ms,
            "p50_ms": self.percentile(0.50),
            "p90_ms": self.percentile(0.90),
            "p99_ms": self.percentile(0.99),
            "buckets": {
                f"<={bound:g}ms": count
                for bound, count in zip(self.BOUNDS_MS, self._counts)
            }
            | {f">{self.BOUNDS_MS[-1]:g}ms": self._counts[-1]},
        }


@dataclass
class SessionStats:
    """Per-session serving counters (reported by ``GET /stats``)."""

    created_at: float = field(default_factory=time.time)
    queries: dict = field(
        default_factory=lambda: {
            "route": 0,
            "route_pairs": 0,
            "topology": 0,
        }
    )
    routes_answered: int = 0
    delivered: int = 0
    hops_total: int = 0
    batches: int = 0
    batched_items: int = 0
    rejected: int = 0
    timeouts: int = 0
    topology_events: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def note_routes(self, results) -> None:
        for result in results:
            self.routes_answered += 1
            self.hops_total += result.hops
            if result.delivered:
                self.delivered += 1

    def to_dict(self) -> dict:
        mean_batch = (
            self.batched_items / self.batches if self.batches else 0.0
        )
        return {
            "created_at": self.created_at,
            "queries": dict(self.queries),
            "routes_answered": self.routes_answered,
            "delivered": self.delivered,
            "hops_total": self.hops_total,
            "batches": self.batches,
            "mean_batch_size": mean_batch,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "topology_events": self.topology_events,
            "latency": self.latency.to_dict(),
        }


class _Work:
    """One queued request: payload in, future out, deadline attached."""

    __slots__ = ("kind", "payload", "future", "deadline")

    def __init__(self, kind: str, payload: dict, future, deadline):
        self.kind = kind  # "route" | "route_pairs" | "topology"
        self.payload = payload
        self.future = future
        self.deadline = deadline  # loop-clock instant, or None


class ResidentSession:
    """One scenario, materialised once, serving a query stream."""

    def __init__(
        self,
        session_id: str,
        session: Session,
        *,
        queue_depth: int,
        max_batch: int,
        flush_interval: float,
        retry_after: float,
        backend: str = "auto",
        executor=None,
    ) -> None:
        self.id = session_id
        self.scenario = session.scenario
        self._session = session
        self._base_seed = session.instance.seed
        self._routers = session.routers  # built once, then tracked
        self._topology: DynamicTopology | None = None
        self._backend = backend
        self._executor = executor
        self._max_batch = max_batch
        self._flush_interval = flush_interval
        self._retry_after = retry_after
        self._queue: asyncio.Queue[_Work] = asyncio.Queue(
            maxsize=queue_depth
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_task: asyncio.Task | None = None
        self._held = asyncio.Event()
        self._held.set()  # set = running; cleared = held for drain
        self.stats = SessionStats()
        self.last_active = time.time()
        self.connected = session.connected()
        self.node_ids = list(session.graph.node_ids)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the drain task (idempotent)."""
        if self._drain_task is None:
            self._loop = asyncio.get_running_loop()
            self._drain_task = self._loop.create_task(self._drain())

    async def close(self) -> None:
        """Stop serving: cancel the drain task and fail queued work."""
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if not item.future.done():
                item.future.set_exception(
                    WireError("session evicted", 409)
                )

    def hold(self) -> None:
        """Pause intake processing (maintenance drain; tests).

        Queued and newly submitted work stays queued — and the queue
        keeps filling towards backpressure — until :meth:`release`.
        """
        self._held.clear()

    def release(self) -> None:
        self._held.set()

    # -- intake ---------------------------------------------------------

    def submit(
        self, kind: str, payload: dict, timeout: float | None
    ) -> asyncio.Future:
        """Queue one request; returns the future carrying its result.

        Raises :class:`Backpressure` when the bounded queue is full —
        the caller answers 503 with ``Retry-After`` and the client
        retries; nothing is ever silently dropped.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        deadline = None if timeout is None else loop.time() + timeout
        work = _Work(kind, payload, future, deadline)
        try:
            self._queue.put_nowait(work)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            raise Backpressure(self.id, self._retry_after) from None
        self.stats.queries[kind] += 1
        self.last_active = time.time()
        return future

    # -- the drain loop -------------------------------------------------

    async def _drain(self) -> None:
        """Coalesce queued work into micro-batches; run in executor.

        One batch at a time, in arrival order.  Topology updates are
        barriers: they never share a batch with queries, so every
        query observes a single consistent topology.
        """
        loop = asyncio.get_running_loop()
        carry: _Work | None = None
        while True:
            item = carry if carry is not None else await self._queue.get()
            carry = None
            await self._held.wait()
            if item.kind == "topology":
                await self._run_in_executor(self._apply_topology, item)
                continue
            batch = [item]
            flush_at = loop.time() + self._flush_interval
            while len(batch) < self._max_batch:
                remaining = flush_at - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
                if nxt.kind == "topology":
                    carry = nxt  # barrier: handled after this batch
                    break
                batch.append(nxt)
            now = loop.time()
            live = []
            for work in batch:
                if work.deadline is not None and work.deadline < now:
                    self.stats.timeouts += 1
                    if not work.future.done():
                        work.future.set_exception(asyncio.TimeoutError())
                elif work.future.done():
                    pass  # client went away (its waiter timed out)
                else:
                    live.append(work)
            if live:
                self.stats.batches += 1
                self.stats.batched_items += len(live)
                await self._run_in_executor(self._execute_batch, live)

    async def _run_in_executor(self, fn, arg) -> None:
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._executor, fn, arg)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # pragma: no cover - defensive
            # fn answers per-item; reaching here is a bug, but a dead
            # drain task would hang every future client silently.
            items = arg if isinstance(arg, list) else [arg]
            for work in items:
                if not work.future.done():
                    work.future.set_exception(error)

    # -- executor-side work (never on the event loop) -------------------

    def _execute_batch(self, batch: list[_Work]) -> None:
        """Answer a micro-batch of queries on the current topology.

        Single-route items are grouped per (router, no-options) into
        one ``route_batch`` call — that is the amortisation this whole
        layer exists for; ``route_pairs`` items are already internally
        batched and run as-is via the Session facade.
        """
        loop = self._loop  # executor thread: resolve via threadsafe call
        by_router: dict[str | None, list[_Work]] = {}
        for work in batch:
            if work.kind == "route":
                by_router.setdefault(work.payload.get("router"), []).append(
                    work
                )
            else:
                self._answer(loop, work, self._route_pairs, work.payload)
        for router_name, items in by_router.items():
            self._answer_route_group(loop, router_name, items)

    def _answer(self, loop, work: _Work, fn, payload) -> None:
        try:
            result = fn(payload)
        except (WireError, RoutingError, KeyError, ValueError) as error:
            self._resolve(loop, work.future, error, is_error=True)
        else:
            self._resolve(loop, work.future, result, is_error=False)

    def _answer_route_group(self, loop, router_name, items) -> None:
        try:
            router = self._session.router(router_name)
        except (KeyError, ValueError) as error:
            for work in items:
                self._resolve(loop, work.future, error, is_error=True)
            return
        graph = self._session.graph
        valid: list[_Work] = []
        pairs: list[tuple[int, int]] = []
        for work in items:
            source = work.payload["source"]
            destination = work.payload["destination"]
            if source not in graph or destination not in graph:
                self._resolve(
                    loop,
                    work.future,
                    RoutingError(
                        f"source {source} or destination {destination} "
                        "not in the current topology"
                    ),
                    is_error=True,
                )
            elif source == destination:
                self._resolve(
                    loop,
                    work.future,
                    RoutingError("source equals destination"),
                    is_error=True,
                )
            else:
                valid.append(work)
                pairs.append((source, destination))
        if not valid:
            return
        try:
            results = router.route_batch(pairs, backend=self._backend)
        except Exception as error:
            for work in valid:
                self._resolve(loop, work.future, error, is_error=True)
            return
        self.stats.note_routes(results)
        for work, result in zip(valid, results):
            self._resolve(
                loop,
                work.future,
                {"result": result.to_dict()},
                is_error=False,
            )

    def _route_pairs(self, payload: Mapping) -> dict:
        routes = self._session.route_pairs(
            count=payload.get("count"),
            routers=payload.get("routers"),
            energy=payload.get("energy", False),
            backend=payload.get("backend", self._backend),
        )
        self.stats.note_routes(routes)
        return {"routeset": routes.to_dict()}

    def _apply_topology(self, work: _Work) -> None:
        """Apply one update request's events; rebind the facade.

        Events apply in request order.  On a state error (unknown
        node, failing a down node) the response reports how many
        events *did* apply — the topology keeps them; there is no
        rollback, exactly like replaying a physical event log.
        """
        loop = self._loop  # executor thread: resolve via threadsafe call
        topology = self._ensure_topology()
        applied = 0
        summary = {
            "added_edges": 0,
            "removed_edges": 0,
            "moved": 0,
            "nodes_down": 0,
            "nodes_up": 0,
        }
        try:
            for event in work.payload["events"]:
                op = event[0]
                if op == "move":
                    delta = topology.move(event[1], event[2])
                elif op == "fail":
                    delta = topology.fail_many(event[1])
                else:
                    delta = topology.restore_many(event[1], event[2])
                self._fold_delta(summary, delta)
                applied += 1
        except KeyError as error:
            self._resolve(
                loop,
                work.future,
                WireError(
                    f"topology event {applied}: {error.args[0]} "
                    f"({applied} earlier event(s) applied)",
                    409,
                ),
                is_error=True,
            )
            if applied:
                self._rebind_session(topology)
            return
        self.stats.topology_events += applied
        self._rebind_session(topology)
        self._resolve(
            loop,
            work.future,
            {
                "applied_events": applied,
                "nodes_alive": len(topology),
                **summary,
            },
            is_error=False,
        )

    def _ensure_topology(self) -> DynamicTopology:
        """The live topology, created (and tracked) on first update.

        Static residents never pay for it; the first topology request
        promotes the materialised graph into a DynamicTopology and
        subscribes every resident router, so later updates rebind them
        incrementally instead of rebuilding.
        """
        if self._topology is None:
            self._topology = DynamicTopology.from_graph(
                self._session.graph,
                edge_detector=EdgeDetector(strategy="convex"),
                area=self.scenario.area,
            )
            for router in self._routers.values():
                router.track(self._topology)
        return self._topology

    def _rebind_session(self, topology: DynamicTopology) -> None:
        """Point the facade at the updated snapshot.

        The tracked routers already rebound (rebind == fresh, pinned
        by the fuzz suite); the facade swap keeps pair sampling and
        energy accounting on the current graph.  ``seed`` stays the
        materialisation seed, so the pair stream derivation matches a
        direct ``Session.from_graph(snapshot, scenario, seed)``.
        """
        self._session = Session.from_graph(
            topology.graph,
            self.scenario,
            seed=self._base_seed,
            routers=self._routers,
        )
        self.node_ids = list(self._session.graph.node_ids)
        self.connected = self._session.connected()

    @staticmethod
    def _fold_delta(summary: dict, delta: TopologyDelta) -> None:
        summary["added_edges"] += len(delta.added_edges)
        summary["removed_edges"] += len(delta.removed_edges)
        summary["moved"] += len(delta.moved)
        summary["nodes_down"] += len(delta.nodes_down)
        summary["nodes_up"] += len(delta.nodes_up)

    @staticmethod
    def _resolve(loop, future, value, *, is_error: bool) -> None:
        """Set a future's outcome from the executor thread, safely."""

        def _set() -> None:
            if future.done():
                return
            if is_error:
                future.set_exception(value)
            else:
                future.set_result(value)

        loop.call_soon_threadsafe(_set)

    # -- views ----------------------------------------------------------

    @property
    def session(self) -> Session:
        """The current facade (reference answers in tests/benches)."""
        return self._session

    @property
    def router_names(self) -> tuple[str, ...]:
        return tuple(self._routers)

    def describe(self) -> dict:
        return {
            "session": self.id,
            "nodes": len(self.node_ids),
            "connected": self.connected,
            "routers": list(self._routers),
            "queries": dict(self.stats.queries),
            "last_active": self.last_active,
        }


#: Scenario fields that shape the materialised network.  Two scenarios
#: agreeing on all of them share deployment, failures and topology —
#: the second resident clones the first's Session instead of
#: re-materialising (see ``Session.clone``).
_NETWORK_SIDE_FIELDS = (
    "deployment_model",
    "node_count",
    "area",
    "radius",
    "seed",
    "obstacle_count",
    "min_obstacle_size",
    "max_obstacle_size",
    "obstacles",
    "failures",
)


def _network_key(scenario: Scenario) -> tuple:
    return tuple(
        getattr(scenario, name) for name in _NETWORK_SIDE_FIELDS
    )


class SessionManager:
    """The server's resident-session table, keyed by fingerprint.

    ``POST /sessions`` is idempotent: the session id *is* the
    scenario's :func:`~repro.api.scenario_fingerprint`, so loading the
    same scenario twice — from any client — lands on the same resident
    session.  Capacity is bounded (``max_sessions``, LRU eviction) and
    idle sessions expire after ``idle_ttl`` seconds via the reaper
    task.

    Residents whose scenarios differ only in routing-side fields
    (router selection, workload size) share one materialised network
    through :meth:`~repro.api.Session.clone` — the O(1)-after-first
    startup path pinned by ``benchmarks/bench_serve.py``.
    """

    def __init__(
        self,
        *,
        queue_depth: int = 256,
        max_batch: int = 64,
        flush_interval: float = 0.002,
        retry_after: float = 1.0,
        backend: str = "auto",
        max_sessions: int = 16,
        idle_ttl: float = 300.0,
        executor=None,
        registry: RouterRegistry | None = None,
    ) -> None:
        self._sessions: "OrderedDict[str, ResidentSession]" = OrderedDict()
        self._queue_depth = queue_depth
        self._max_batch = max_batch
        self._flush_interval = flush_interval
        self._retry_after = retry_after
        self._backend = backend
        self._max_sessions = max_sessions
        self._idle_ttl = idle_ttl
        self._executor = executor
        self._registry = (
            registry if registry is not None else default_registry
        )
        self._reaper_task: asyncio.Task | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if self._reaper_task is None and self._idle_ttl:
            self._reaper_task = asyncio.get_running_loop().create_task(
                self._reap_idle()
            )

    async def close(self) -> None:
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except asyncio.CancelledError:
                pass
            self._reaper_task = None
        for session_id in list(self._sessions):
            await self.evict(session_id)

    async def _reap_idle(self) -> None:
        interval = max(min(self._idle_ttl / 4.0, 30.0), 0.01)
        while True:
            await asyncio.sleep(interval)
            cutoff = time.time() - self._idle_ttl
            for session_id, resident in list(self._sessions.items()):
                if resident.last_active < cutoff:
                    await self.evict(session_id)

    # -- the table ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def get(self, session_id: str) -> ResidentSession:
        try:
            resident = self._sessions[session_id]
        except KeyError:
            raise WireError(
                f"no resident session {session_id!r}", 404
            ) from None
        self._sessions.move_to_end(session_id)
        resident.last_active = time.time()
        return resident

    def describe(self) -> list[dict]:
        return [r.describe() for r in self._sessions.values()]

    def stats(self) -> dict:
        return {
            session_id: resident.stats.to_dict()
            for session_id, resident in self._sessions.items()
        }

    async def create(
        self, scenario: Scenario
    ) -> tuple[ResidentSession, bool]:
        """Load a scenario; returns ``(resident, created)``.

        Identical scenarios collapse onto one resident (``created``
        False); a scenario sharing another resident's network-side
        fields clones its materialised network.  Materialisation runs
        in the executor — the event loop keeps serving while a large
        deployment builds.
        """
        if scenario.mobility is not None:
            raise WireError(
                "mobile scenarios route per topology snapshot and "
                "cannot be loaded as resident sessions; apply move "
                "events through POST /sessions/<id>/topology instead"
            )
        message = self._registry.describe_unknown(scenario.routers)
        if message:
            raise WireError(message)
        session_id = scenario_fingerprint(scenario, self._registry)
        if session_id is None:  # pragma: no cover - wire scenarios digest
            raise WireError(
                "scenario has no stable fingerprint; "
                "cannot key a resident session"
            )
        existing = self._sessions.get(session_id)
        if existing is not None:
            self._sessions.move_to_end(session_id)
            existing.last_active = time.time()
            return existing, False
        session = self._build_session(scenario)
        loop = asyncio.get_running_loop()
        # Materialise (or clone) off-loop: graph, routers, connectivity.
        resident = await loop.run_in_executor(
            self._executor,
            self._materialise,
            session_id,
            session,
        )
        while len(self._sessions) >= self._max_sessions:
            oldest = next(iter(self._sessions))
            await self.evict(oldest)
        self._sessions[session_id] = resident
        resident.start()
        return resident, True

    async def evict(self, session_id: str) -> None:
        resident = self._sessions.pop(session_id, None)
        if resident is not None:
            await resident.close()

    # -- construction helpers -------------------------------------------

    def _build_session(self, scenario: Scenario) -> Session:
        key = _network_key(scenario)
        for resident in reversed(self._sessions.values()):
            if (
                resident._topology is None  # untouched network only
                and _network_key(resident.scenario) == key
            ):
                return resident.session.clone(
                    routers=scenario.routers,
                    router_options=scenario.router_options,
                    routes_per_network=scenario.routes_per_network,
                    packet_bits=scenario.packet_bits,
                    networks=scenario.networks,
                    channel=scenario.channel,
                    link_faults=scenario.link_faults,
                    max_retransmits=scenario.max_retransmits,
                )
        return Session(scenario, registry=self._registry)

    def _materialise(
        self, session_id: str, session: Session
    ) -> ResidentSession:
        """Executor-side: force the expensive state, wrap it resident."""
        return ResidentSession(
            session_id,
            session,
            queue_depth=self._queue_depth,
            max_batch=self._max_batch,
            flush_interval=self._flush_interval,
            retry_after=self._retry_after,
            backend=self._backend,
            executor=self._executor,
        )
