"""``repro-wasn serve`` — run the routing service from the shell.

A thin argparse front over :class:`~repro.serve.server.RoutingServer`:
every :class:`~repro.serve.server.ServerConfig` knob is a flag, the
bound address is printed once on startup (machine-readable via
``--port-file`` for scripts that bind port 0), and Ctrl-C shuts the
server down cleanly.

Examples::

    repro-wasn serve                         # 127.0.0.1:8707
    repro-wasn serve --port 0 --port-file /tmp/port
    repro-wasn serve --backend scalar --max-batch 128 --workers 4
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from repro.serve.server import RoutingServer, ServerConfig

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    defaults = ServerConfig()
    parser = argparse.ArgumentParser(
        prog="repro-wasn serve",
        description=(
            "Serve route/route_pairs queries over resident sessions "
            "(JSON over HTTP)."
        ),
    )
    parser.add_argument(
        "--host", default=defaults.host, help="bind address"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=defaults.port,
        help="bind port (0 = ephemeral; see --port-file)",
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening "
        "(for scripts using --port 0)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "scalar", "numpy"],
        default=defaults.backend,
        help="route_batch backend (all bit-identical; default: auto)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=defaults.max_batch,
        metavar="N",
        help="micro-batch size cap per flush",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=defaults.flush_interval,
        metavar="S",
        help="micro-batch coalescing window, seconds",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=defaults.queue_depth,
        metavar="N",
        help="per-session intake bound (full queue answers 503)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=defaults.default_timeout,
        metavar="S",
        help="default per-request deadline, seconds",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=defaults.max_sessions,
        metavar="N",
        help="resident-session capacity (LRU eviction beyond it)",
    )
    parser.add_argument(
        "--idle-ttl",
        type=float,
        default=defaults.idle_ttl,
        metavar="S",
        help="evict sessions idle this long (0 disables)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=defaults.workers,
        metavar="N",
        help="executor threads for routing/materialisation",
    )
    return parser


async def _run(config: ServerConfig, port_file: Path | None) -> None:
    server = RoutingServer(config)
    await server.start()
    address = f"http://{config.host}:{server.port}"
    print(f"repro-wasn serve: listening on {address}", flush=True)
    if port_file is not None:
        port_file.write_text(f"{server.port}\n", encoding="utf-8")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def main(argv: list[str] | None = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            backend=args.backend,
            max_batch=args.max_batch,
            flush_interval=args.flush_interval,
            queue_depth=args.queue_depth,
            default_timeout=args.timeout,
            max_sessions=args.max_sessions,
            idle_ttl=args.idle_ttl,
            workers=args.workers,
        )
    except ValueError as error:
        parser.error(str(error))  # exits 2 with usage, no traceback
    try:
        asyncio.run(_run(config, args.port_file))
    except KeyboardInterrupt:
        print("repro-wasn serve: shut down", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
