"""repro.serve — routing-as-a-service over resident sessions.

The serving layer of the stack: a long-running asyncio JSON-over-HTTP
server (stdlib only) that loads :class:`~repro.api.Scenario` documents
into resident :class:`~repro.api.Session` objects and answers
``route``/``route_pairs`` queries from many concurrent clients,
micro-batching them onto the vectorized
:meth:`~repro.routing.base.Router.route_batch` kernel.  Live topology
events (move/fail/restore) stream into the residents through
:class:`~repro.network.dynamic.DynamicTopology`, rebinding routers
incrementally.

Start it from the CLI (``repro-wasn serve``) or in-process::

    from repro.serve import RoutingServer, ServerConfig

    server = RoutingServer(ServerConfig(port=0))
    await server.start()          # server.port holds the bound port
    ...
    await server.stop()

Responses are bit-identical to direct Session calls — the serve test
suite and ``benchmarks/bench_serve.py`` pin that — so the service is a
deployment shape, not a second implementation.

See ``docs/API.md`` ("The routing service") for the wire protocol and
``tools/loadgen.py`` for a ready-made load generator.
"""

from repro.serve.http import HttpError
from repro.serve.resident import (
    Backpressure,
    LatencyHistogram,
    ResidentSession,
    SessionManager,
    SessionStats,
)
from repro.serve.server import RoutingServer, ServerConfig
from repro.serve.wire import (
    WireError,
    scenario_from_dict,
    scenario_to_dict,
    topology_events_from_dict,
)

__all__ = [
    "Backpressure",
    "HttpError",
    "LatencyHistogram",
    "ResidentSession",
    "RoutingServer",
    "ServerConfig",
    "SessionManager",
    "SessionStats",
    "WireError",
    "scenario_from_dict",
    "scenario_to_dict",
    "topology_events_from_dict",
]
