"""Routing-as-a-service: the asyncio query server.

:class:`RoutingServer` binds the resident-session layer
(:mod:`repro.serve.resident`) to the wire (:mod:`repro.serve.http`,
:mod:`repro.serve.wire`).  The protocol is JSON over HTTP/1.1:

====== ============================== =====================================
Method Path                           Meaning
====== ============================== =====================================
POST   ``/sessions``                  Load a Scenario into a resident
                                      session (idempotent; the id is the
                                      scenario fingerprint)
GET    ``/sessions``                  List resident sessions
DELETE ``/sessions/<id>``             Evict one resident session
POST   ``/sessions/<id>/route``       Route one source→destination packet
POST   ``/sessions/<id>/route_pairs`` Route the scenario's sampled-pair
                                      workload (the ``Session.route_pairs``
                                      contract, bit-identical)
POST   ``/sessions/<id>/topology``    Apply move/fail/restore events to the
                                      live topology
GET    ``/healthz``                   Liveness probe
GET    ``/stats``                     Per-session query/latency counters
====== ============================== =====================================

Failure semantics clients can rely on:

* a malformed body answers **400** with a message naming the offending
  key (never a traceback);
* an unknown session answers **404**; state conflicts (topology event
  on a down node) answer **409**;
* a full intake queue answers **503** with a ``Retry-After`` header —
  bounded queues are the backpressure story, nothing is dropped
  silently;
* a request that cannot be answered within its deadline (body
  ``timeout_ms``, default ``default_timeout``) answers **504** — the
  server never leaves a client hanging.

All CPU-bound work (materialisation, routing, topology application)
runs in a thread-pool executor; the event loop only parses, queues and
responds, so a slow query stream cannot freeze the health probe.
"""

from __future__ import annotations

import asyncio
import math
import re
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro import __version__
from repro.api.registry import RouterRegistry
from repro.routing.base import RoutingError
from repro.serve.http import (
    HttpError,
    Request,
    read_request,
    write_response,
)
from repro.serve.resident import Backpressure, SessionManager
from repro.serve.wire import (
    WireError,
    scenario_from_dict,
    topology_events_from_dict,
)

__all__ = ["RoutingServer", "ServerConfig"]

_SESSION_PATH = re.compile(
    r"^/sessions/(?P<id>[0-9a-f]{8,64})"
    r"(?P<op>/route|/route_pairs|/topology)?$"
)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one server instance (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 8707  # "8707" ~ WASN-ish; 0 = ephemeral (tests, CI)
    #: Batch coalescing: flush a session's intake queue after this many
    #: seconds or this many queued requests, whichever first.
    flush_interval: float = 0.002
    max_batch: int = 64
    #: Intake bound per session; full queue = 503 + Retry-After.
    queue_depth: int = 256
    retry_after: float = 1.0
    #: Per-request deadline (seconds) when the body names none.
    default_timeout: float = 30.0
    #: Resident-session lifecycle.
    max_sessions: int = 16
    idle_ttl: float = 300.0
    #: Routing backend handed to ``route_batch`` (requests may
    #: override per call; every backend is bit-identical).
    backend: str = "auto"
    #: Executor threads (routing, materialisation).
    workers: int = 2

    def __post_init__(self) -> None:
        if self.flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend not in ("auto", "scalar", "numpy"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "expected 'auto', 'scalar' or 'numpy'"
            )


class RoutingServer:
    """The long-running query server over resident sessions."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        registry: RouterRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self._registry = registry
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self.sessions: SessionManager | None = None
        self._started_at = time.time()
        self.port: int | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start serving (returns once listening)."""
        config = self.config
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers,
            thread_name_prefix="repro-serve",
        )
        self.sessions = SessionManager(
            queue_depth=config.queue_depth,
            max_batch=config.max_batch,
            flush_interval=config.flush_interval,
            retry_after=config.retry_after,
            backend=config.backend,
            max_sessions=config.max_sessions,
            idle_ttl=config.idle_ttl,
            executor=self._executor,
            registry=self._registry,
        )
        self.sessions.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=config.host,
            port=config.port,
            limit=64 << 10,
        )
        self._started_at = time.time()
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.sessions is not None:
            await self.sessions.close()
            self.sessions = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    write_response(
                        writer,
                        error.status,
                        {"error": str(error)},
                        headers=error.headers,
                        keep_alive=False,
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive
                status, payload, headers = await self._dispatch(request)
                write_response(
                    writer,
                    status,
                    payload,
                    headers=headers,
                    keep_alive=keep_alive,
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: Request
    ) -> tuple[int, dict, dict]:
        """Route one request; every outcome becomes (status, body)."""
        try:
            return await self._route_request(request)
        except Backpressure as error:
            # ceil() so Retry-After: 0 can never tell a client "now",
            # and a fractional hint like 2.5 s always rounds *up* —
            # round() would banker's-round it down to 2 and invite the
            # client back half a second early.
            return (
                503,
                {"error": str(error)},
                {"Retry-After": str(max(1, math.ceil(error.retry_after)))},
            )
        except asyncio.TimeoutError:
            return (
                504,
                {"error": "request timed out before it was answered"},
                {},
            )
        except (WireError, HttpError) as error:
            return error.status, {"error": str(error)}, getattr(
                error, "headers", {}
            )
        except (RoutingError, ValueError) as error:
            # ValueError out of the facade (ambiguous router choice,
            # bad option combination) is a client mistake, not a crash.
            return 400, {"error": str(error)}, {}
        except Exception as error:  # noqa: BLE001 - the 500 boundary
            return (
                500,
                {"error": f"{type(error).__name__}: {error}"},
                {},
            )

    async def _route_request(
        self, request: Request
    ) -> tuple[int, dict, dict]:
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, self._healthz(), {}
        if path == "/stats":
            self._require(method, "GET", path)
            return 200, self._stats(), {}
        if path == "/sessions":
            if method == "GET":
                return 200, {"sessions": self.sessions.describe()}, {}
            self._require(method, "POST", path, allowed="GET, POST")
            return await self._create_session(request)
        match = _SESSION_PATH.match(path)
        if match is None:
            raise HttpError(404, f"no route for {path!r}")
        session_id, op = match.group("id"), match.group("op")
        if op is None:
            self._require(method, "DELETE", path)
            self.sessions.get(session_id)  # 404 before a no-op delete
            await self.sessions.evict(session_id)
            return 200, {"evicted": session_id}, {}
        self._require(method, "POST", path)
        resident = self.sessions.get(session_id)
        body = request.json()
        if op == "/route":
            return await self._route_one(resident, body)
        if op == "/route_pairs":
            return await self._route_pairs(resident, body)
        return await self._topology(resident, body)

    @staticmethod
    def _require(
        method: str, expected: str, path: str, allowed: str | None = None
    ) -> None:
        if method != expected:
            raise HttpError(
                405,
                f"{method} not allowed on {path!r}",
                headers={"Allow": allowed or expected},
            )

    # -- endpoints ------------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "version": __version__,
            "sessions": len(self.sessions),
            "uptime_s": time.time() - self._started_at,
        }

    def _stats(self) -> dict:
        config = self.config
        return {
            "uptime_s": time.time() - self._started_at,
            "config": {
                "flush_interval": config.flush_interval,
                "max_batch": config.max_batch,
                "queue_depth": config.queue_depth,
                "max_sessions": config.max_sessions,
                "idle_ttl": config.idle_ttl,
                "backend": config.backend,
                "workers": config.workers,
            },
            "sessions": self.sessions.stats(),
        }

    async def _create_session(
        self, request: Request
    ) -> tuple[int, dict, dict]:
        body = request.json()
        if "scenario" not in body:
            raise WireError("body must carry a 'scenario' object")
        unknown = sorted(set(body) - {"scenario"})
        if unknown:
            raise WireError(
                f"body has unknown key(s): {', '.join(map(repr, unknown))}"
            )
        scenario = scenario_from_dict(body["scenario"])
        resident, created = await self.sessions.create(scenario)
        payload = {
            "session": resident.id,
            "created": created,
            "nodes": len(resident.node_ids),
            "node_ids": resident.node_ids,
            "connected": resident.connected,
            "routers": list(resident.router_names),
        }
        return (201 if created else 200), payload, {}

    def _timeout(self, body: dict) -> float:
        value = body.get("timeout_ms")
        if value is None:
            return self.config.default_timeout
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or value <= 0
        ):
            raise WireError(f"timeout_ms must be a positive number, "
                            f"got {value!r}")
        return float(value) / 1e3

    async def _route_one(
        self, resident, body: dict
    ) -> tuple[int, dict, dict]:
        unknown = sorted(
            set(body) - {"source", "destination", "router", "timeout_ms"}
        )
        if unknown:
            raise WireError(
                f"body has unknown key(s): {', '.join(map(repr, unknown))}"
            )
        for key in ("source", "destination"):
            if key not in body:
                raise WireError(f"body is missing key {key!r}")
            value = body[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise WireError(
                    f"{key} must be an integer node id, got {value!r}"
                )
        router = body.get("router")
        if router is not None and not isinstance(router, str):
            raise WireError(f"router must be a name, got {router!r}")
        if router is not None and router not in resident.router_names:
            known = ", ".join(resident.router_names)
            raise WireError(
                f"router {router!r} not resident; present: {known}"
            )
        timeout = self._timeout(body)
        payload = {
            "source": body["source"],
            "destination": body["destination"],
            "router": router,
        }
        started = time.perf_counter()
        future = resident.submit("route", payload, timeout)
        result = await asyncio.wait_for(future, timeout)
        resident.stats.latency.record(time.perf_counter() - started)
        return 200, result, {}

    async def _route_pairs(
        self, resident, body: dict
    ) -> tuple[int, dict, dict]:
        unknown = sorted(
            set(body)
            - {"count", "routers", "energy", "backend", "timeout_ms"}
        )
        if unknown:
            raise WireError(
                f"body has unknown key(s): {', '.join(map(repr, unknown))}"
            )
        payload: dict = {}
        if body.get("count") is not None:
            count = body["count"]
            if (
                isinstance(count, bool)
                or not isinstance(count, int)
                or count < 1
            ):
                raise WireError(
                    f"count must be a positive integer, got {count!r}"
                )
            payload["count"] = count
        if body.get("routers") is not None:
            routers = body["routers"]
            if not isinstance(routers, list) or not all(
                isinstance(name, str) for name in routers
            ):
                raise WireError("routers must be an array of names")
            unknown_routers = [
                name
                for name in routers
                if name not in resident.router_names
            ]
            if unknown_routers:
                known = ", ".join(resident.router_names)
                raise WireError(
                    f"router(s) not resident: "
                    f"{', '.join(map(repr, unknown_routers))}; "
                    f"present: {known}"
                )
            payload["routers"] = routers
        if body.get("energy") is not None:
            if not isinstance(body["energy"], bool):
                raise WireError("energy must be a boolean")
            payload["energy"] = body["energy"]
        if body.get("backend") is not None:
            backend = body["backend"]
            if backend not in ("auto", "scalar", "numpy"):
                raise WireError(
                    f"unknown backend {backend!r}; expected 'auto', "
                    "'scalar' or 'numpy'"
                )
            payload["backend"] = backend
        timeout = self._timeout(body)
        started = time.perf_counter()
        future = resident.submit("route_pairs", payload, timeout)
        try:
            result = await asyncio.wait_for(future, timeout)
        except ImportError as error:
            # backend="numpy" without numpy: the client asked for a
            # specific implementation this deployment cannot offer.
            raise WireError(str(error)) from None
        resident.stats.latency.record(time.perf_counter() - started)
        return 200, result, {}

    async def _topology(
        self, resident, body: dict
    ) -> tuple[int, dict, dict]:
        timeout = self._timeout(
            body if "timeout_ms" in body else {}
        )
        events = topology_events_from_dict(
            {"events": body.get("events")}
            if "events" in body
            else body
        )
        started = time.perf_counter()
        future = resident.submit("topology", {"events": events}, timeout)
        result = await asyncio.wait_for(future, timeout)
        resident.stats.latency.record(time.perf_counter() - started)
        return 200, result, {}
