"""Minimal JSON-over-HTTP plumbing on asyncio streams.

The routing service speaks a deliberately small HTTP/1.1 subset —
enough for any stdlib or curl client, with **no dependencies beyond
asyncio**: request line + headers + ``Content-Length`` bodies in,
``application/json`` responses out, keep-alive connections by default.
No chunked encoding, no multipart, no TLS — a production deployment
terminates those in the reverse proxy this server is designed to sit
behind.

The parser is strict and bounded: header block and body sizes are
capped, anything malformed answers 400 and closes the connection.
:class:`HttpError` is the one escape hatch handlers use to answer a
non-200 (404, 503 + ``Retry-After``, …) without hand-building a
response.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "write_response",
]

#: Upper bound on a request body; a routing query is a few KB, a big
#: scenario document maybe tens — 8 MiB is generous, not unbounded.
MAX_BODY_BYTES = 8 << 20

#: Stream read limit (request line / one header line).
LINE_LIMIT = 64 << 10

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """An HTTP-level failure a handler wants sent as-is."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body as a JSON object (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HttpError(400, f"body is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise HttpError(400, "body must be a JSON object")
        return data


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HttpError(400, "request line too long") from None
    if not line or line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise HttpError(400, "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {raw!r}")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 100:
            raise HttpError(400, "too many headers")
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise HttpError(
            400, f"bad Content-Length {length_header!r}"
        ) from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length {length_header!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body over {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "body shorter than Content-Length") from None
    # The path is matched verbatim; this service defines no query
    # strings, so a "?..." suffix is simply part of a (404) path.
    if version == "HTTP/1.0" and "connection" not in headers:
        headers["connection"] = "close"
    return Request(method=method.upper(), path=target, headers=headers,
                   body=body)


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict | None,
    *,
    headers: Mapping[str, str] | None = None,
    keep_alive: bool = True,
) -> None:
    """Serialise one JSON response onto the stream (no drain here)."""
    body = b"" if payload is None else (
        json.dumps(payload).encode("utf-8") + b"\n"
    )
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
