"""JSON wire format for the routing service.

The serve layer speaks plain JSON over HTTP, so every request body
must decode into the same value objects the Python API uses —
:class:`~repro.api.scenario.Scenario`, failure specs, obstacle shapes,
topology events — with *clear* errors for malformed documents: a
client typo answers with a 400 naming the offending key, never a
traceback or (worse) a silently defaulted field.

The codec is strict both ways:

* :func:`scenario_from_dict` rejects unknown keys, wrong types and
  semantically invalid combinations (delegating the latter to the
  Scenario's own validation), raising :class:`WireError` with an
  HTTP-ready status code;
* :func:`scenario_to_dict` is its exact inverse —
  ``scenario_from_dict(scenario_to_dict(s)) == s`` for every
  serialisable scenario, pinned by the round-trip tests.

Route results ride the :meth:`repro.api.RouteSet.to_dict` /
``from_dict`` pair, so the service's responses decode into the same
objects a direct :class:`~repro.api.Session` call returns.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.api.scenario import (
    FailureSpec,
    MobilitySchedule,
    NodesFailure,
    RandomFailure,
    RegionFailure,
    Scenario,
)
from repro.geometry import Point, Rect
from repro.network.channel import (
    CommunicationModel,
    DeadLinks,
    DutyCycle,
    IntermittentLinks,
    LinkFaultModel,
    LogNormalShadowing,
    UnitDisk,
)
from repro.network.obstacles import (
    CompositeObstacle,
    DiscObstacle,
    RectObstacle,
)

__all__ = [
    "WireError",
    "scenario_from_dict",
    "scenario_to_dict",
    "topology_events_from_dict",
]


class WireError(Exception):
    """A malformed wire document, with the HTTP status it deserves.

    ``status`` is always a 4xx — wire errors are the client's fault
    by definition; server faults raise normally and surface as 500.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


# -- primitive field decoding -------------------------------------------------


def _require_mapping(value, where: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise WireError(f"{where} must be a JSON object, got {value!r}")
    return value


def _int_field(data: Mapping, key: str, where: str) -> int:
    value = data[key]
    # bool is an int subclass; "node_count": true must not mean 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"{where}.{key} must be an integer, got {value!r}")
    return value


def _float_field(data: Mapping, key: str, where: str) -> float:
    value = data[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"{where}.{key} must be a number, got {value!r}")
    return float(value)


def _int_tuple(value, where: str) -> tuple[int, ...]:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise WireError(f"{where} must be an array of node ids")
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise WireError(f"{where} must contain integers, got {item!r}")
        out.append(item)
    return tuple(out)


def _check_keys(data: Mapping, allowed: frozenset, where: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise WireError(
            f"{where} has unknown key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _rect_from_wire(value, where: str) -> Rect:
    """``[x_min, y_min, x_max, y_max]``, validated by Rect itself."""
    if (
        not isinstance(value, Sequence)
        or isinstance(value, (str, bytes))
        or len(value) != 4
        or any(
            isinstance(v, bool) or not isinstance(v, (int, float))
            for v in value
        )
    ):
        raise WireError(
            f"{where} must be [x_min, y_min, x_max, y_max], got {value!r}"
        )
    try:
        return Rect(*(float(v) for v in value))
    except ValueError as error:
        raise WireError(f"{where}: {error}") from None


def _rect_to_wire(rect: Rect) -> list[float]:
    return [rect.x_min, rect.y_min, rect.x_max, rect.y_max]


# -- obstacles ----------------------------------------------------------------

_RECT_OBSTACLE_KEYS = frozenset({"kind", "rect"})
_DISC_OBSTACLE_KEYS = frozenset({"kind", "x", "y", "radius"})
_UNION_OBSTACLE_KEYS = frozenset({"kind", "parts"})


def _obstacle_from_wire(value, where: str):
    data = _require_mapping(value, where)
    kind = data.get("kind")
    try:
        if kind == "rect":
            _check_keys(data, _RECT_OBSTACLE_KEYS, where)
            return RectObstacle(_rect_from_wire(data["rect"], f"{where}.rect"))
        if kind == "disc":
            _check_keys(data, _DISC_OBSTACLE_KEYS, where)
            return DiscObstacle(
                Point(
                    _float_field(data, "x", where),
                    _float_field(data, "y", where),
                ),
                _float_field(data, "radius", where),
            )
        if kind == "union":
            _check_keys(data, _UNION_OBSTACLE_KEYS, where)
            parts = data["parts"]
            if not isinstance(parts, Sequence) or isinstance(parts, str):
                raise WireError(f"{where}.parts must be an array")
            return CompositeObstacle(
                tuple(
                    _obstacle_from_wire(part, f"{where}.parts[{i}]")
                    for i, part in enumerate(parts)
                )
            )
    except KeyError as error:
        raise WireError(f"{where} is missing key {error}") from None
    except ValueError as error:
        raise WireError(f"{where}: {error}") from None
    raise WireError(
        f"{where}.kind must be 'rect', 'disc' or 'union', got {kind!r}"
    )


def _obstacle_to_wire(obstacle) -> dict:
    if isinstance(obstacle, RectObstacle):
        return {"kind": "rect", "rect": _rect_to_wire(obstacle.rect)}
    if isinstance(obstacle, DiscObstacle):
        return {
            "kind": "disc",
            "x": obstacle.center.x,
            "y": obstacle.center.y,
            "radius": obstacle.radius,
        }
    if isinstance(obstacle, CompositeObstacle):
        return {
            "kind": "union",
            "parts": [_obstacle_to_wire(part) for part in obstacle.parts],
        }
    raise WireError(
        f"obstacle {type(obstacle).__name__} has no wire encoding", 500
    )


# -- failure schedule ---------------------------------------------------------

_REGION_FAILURE_KEYS = frozenset({"kind", "x", "y", "radius", "protect"})
_NODES_FAILURE_KEYS = frozenset({"kind", "nodes"})
_RANDOM_FAILURE_KEYS = frozenset({"kind", "count", "protect"})


def _failure_from_wire(value, where: str) -> FailureSpec:
    data = _require_mapping(value, where)
    kind = data.get("kind")
    try:
        if kind == "region":
            _check_keys(data, _REGION_FAILURE_KEYS, where)
            return RegionFailure(
                x=_float_field(data, "x", where),
                y=_float_field(data, "y", where),
                radius=_float_field(data, "radius", where),
                protect=_int_tuple(
                    data.get("protect", ()), f"{where}.protect"
                ),
            )
        if kind == "nodes":
            _check_keys(data, _NODES_FAILURE_KEYS, where)
            return NodesFailure(_int_tuple(data["nodes"], f"{where}.nodes"))
        if kind == "random":
            _check_keys(data, _RANDOM_FAILURE_KEYS, where)
            return RandomFailure(
                count=_int_field(data, "count", where),
                protect=_int_tuple(
                    data.get("protect", ()), f"{where}.protect"
                ),
            )
    except KeyError as error:
        raise WireError(f"{where} is missing key {error}") from None
    except ValueError as error:
        raise WireError(f"{where}: {error}") from None
    raise WireError(
        f"{where}.kind must be 'region', 'nodes' or 'random', got {kind!r}"
    )


def _failure_to_wire(spec: FailureSpec) -> dict:
    if isinstance(spec, RegionFailure):
        return {
            "kind": "region",
            "x": spec.x,
            "y": spec.y,
            "radius": spec.radius,
            "protect": list(spec.protect),
        }
    if isinstance(spec, NodesFailure):
        return {"kind": "nodes", "nodes": list(spec.nodes)}
    if isinstance(spec, RandomFailure):
        return {
            "kind": "random",
            "count": spec.count,
            "protect": list(spec.protect),
        }
    raise WireError(
        f"failure spec {type(spec).__name__} has no wire encoding", 500
    )


# -- radio channel ------------------------------------------------------------

_UNIT_DISK_KEYS = frozenset({"kind"})
_LOG_NORMAL_KEYS = frozenset({"kind", "sigma", "path_loss_exponent"})
_INTERMITTENT_KEYS = frozenset({"kind", "fraction", "availability"})
_DUTY_CYCLE_KEYS = frozenset({"kind", "on_slots", "period"})
_DEAD_LINKS_KEYS = frozenset({"kind", "count"})


def _channel_from_wire(value, where: str) -> CommunicationModel:
    data = _require_mapping(value, where)
    kind = data.get("kind")
    try:
        if kind == "unit_disk":
            _check_keys(data, _UNIT_DISK_KEYS, where)
            return UnitDisk()
        if kind == "log_normal":
            _check_keys(data, _LOG_NORMAL_KEYS, where)
            kwargs = {}
            for key in ("sigma", "path_loss_exponent"):
                if key in data:
                    kwargs[key] = _float_field(data, key, where)
            return LogNormalShadowing(**kwargs)
    except ValueError as error:
        raise WireError(f"{where}: {error}") from None
    raise WireError(
        f"{where}.kind must be 'unit_disk' or 'log_normal', got {kind!r}"
    )


def _channel_to_wire(model: CommunicationModel) -> dict:
    if isinstance(model, UnitDisk):
        return {"kind": "unit_disk"}
    if isinstance(model, LogNormalShadowing):
        return {
            "kind": "log_normal",
            "sigma": model.sigma,
            "path_loss_exponent": model.path_loss_exponent,
        }
    raise WireError(
        f"channel model {type(model).__name__} has no wire encoding", 500
    )


def _link_faults_from_wire(value, where: str) -> LinkFaultModel:
    data = _require_mapping(value, where)
    kind = data.get("kind")
    try:
        if kind == "intermittent":
            _check_keys(data, _INTERMITTENT_KEYS, where)
            kwargs = {}
            for key in ("fraction", "availability"):
                if key in data:
                    kwargs[key] = _float_field(data, key, where)
            return IntermittentLinks(**kwargs)
        if kind == "duty_cycle":
            _check_keys(data, _DUTY_CYCLE_KEYS, where)
            kwargs = {}
            for key in ("on_slots", "period"):
                if key in data:
                    kwargs[key] = _int_field(data, key, where)
            return DutyCycle(**kwargs)
        if kind == "dead_links":
            _check_keys(data, _DEAD_LINKS_KEYS, where)
            kwargs = {}
            if "count" in data:
                kwargs["count"] = _int_field(data, "count", where)
            return DeadLinks(**kwargs)
    except ValueError as error:
        raise WireError(f"{where}: {error}") from None
    raise WireError(
        f"{where}.kind must be 'intermittent', 'duty_cycle' or "
        f"'dead_links', got {kind!r}"
    )


def _link_faults_to_wire(model: LinkFaultModel) -> dict:
    if isinstance(model, IntermittentLinks):
        return {
            "kind": "intermittent",
            "fraction": model.fraction,
            "availability": model.availability,
        }
    if isinstance(model, DutyCycle):
        return {
            "kind": "duty_cycle",
            "on_slots": model.on_slots,
            "period": model.period,
        }
    if isinstance(model, DeadLinks):
        return {"kind": "dead_links", "count": model.count}
    raise WireError(
        f"fault model {type(model).__name__} has no wire encoding", 500
    )


# -- the scenario document ----------------------------------------------------

_SCALAR_INT_FIELDS = (
    "node_count",
    "seed",
    "networks",
    "routes_per_network",
    "obstacle_count",
    "packet_bits",
    "max_retransmits",
)
_SCALAR_FLOAT_FIELDS = (
    "radius",
    "min_obstacle_size",
    "max_obstacle_size",
)
_SCENARIO_KEYS = frozenset(
    (
        "deployment_model",
        "area",
        "obstacles",
        "failures",
        "mobility",
        "routers",
        "router_options",
        "channel",
        "link_faults",
    )
    + _SCALAR_INT_FIELDS
    + _SCALAR_FLOAT_FIELDS
)

_MOBILITY_KEYS = frozenset({"speed_min", "speed_max", "pause", "dt", "epochs"})


def scenario_from_dict(data: Mapping) -> Scenario:
    """Decode a scenario document, validating every field.

    Every key is optional (defaults are the paper's setting, exactly
    as the :class:`Scenario` constructor's); every *present* key must
    be well-formed.  Semantic validation — unknown deployment model,
    obstacles under IA, mobility plus failures — is the Scenario's
    own ``__post_init__``, surfaced as a :class:`WireError` so the
    HTTP layer answers 400, not 500.
    """
    data = _require_mapping(data, "scenario")
    _check_keys(data, _SCENARIO_KEYS, "scenario")
    kwargs: dict = {}
    if "deployment_model" in data:
        value = data["deployment_model"]
        if not isinstance(value, str):
            raise WireError(
                f"scenario.deployment_model must be a string, got {value!r}"
            )
        kwargs["deployment_model"] = value
    for key in _SCALAR_INT_FIELDS:
        if key in data:
            kwargs[key] = _int_field(data, key, "scenario")
    for key in _SCALAR_FLOAT_FIELDS:
        if key in data:
            kwargs[key] = _float_field(data, key, "scenario")
    if "area" in data:
        kwargs["area"] = _rect_from_wire(data["area"], "scenario.area")
    if "obstacles" in data:
        value = data["obstacles"]
        if not isinstance(value, Sequence) or isinstance(value, str):
            raise WireError("scenario.obstacles must be an array")
        kwargs["obstacles"] = tuple(
            _obstacle_from_wire(item, f"scenario.obstacles[{i}]")
            for i, item in enumerate(value)
        )
    if "failures" in data:
        value = data["failures"]
        if not isinstance(value, Sequence) or isinstance(value, str):
            raise WireError("scenario.failures must be an array")
        kwargs["failures"] = tuple(
            _failure_from_wire(item, f"scenario.failures[{i}]")
            for i, item in enumerate(value)
        )
    if "mobility" in data and data["mobility"] is not None:
        mob = _require_mapping(data["mobility"], "scenario.mobility")
        _check_keys(mob, _MOBILITY_KEYS, "scenario.mobility")
        mob_kwargs: dict = {}
        for key in ("speed_min", "speed_max", "pause", "dt"):
            if key in mob:
                mob_kwargs[key] = _float_field(mob, key, "scenario.mobility")
        if "epochs" in mob:
            mob_kwargs["epochs"] = _int_field(
                mob, "epochs", "scenario.mobility"
            )
        try:
            kwargs["mobility"] = MobilitySchedule(**mob_kwargs)
        except ValueError as error:
            raise WireError(f"scenario.mobility: {error}") from None
    if "channel" in data and data["channel"] is not None:
        kwargs["channel"] = _channel_from_wire(
            data["channel"], "scenario.channel"
        )
    if "link_faults" in data and data["link_faults"] is not None:
        kwargs["link_faults"] = _link_faults_from_wire(
            data["link_faults"], "scenario.link_faults"
        )
    if "routers" in data:
        value = data["routers"]
        if not isinstance(value, Sequence) or isinstance(value, str):
            raise WireError("scenario.routers must be an array of names")
        if not all(isinstance(name, str) for name in value):
            raise WireError("scenario.routers must contain strings")
        kwargs["routers"] = tuple(value)
    if "router_options" in data:
        options = _require_mapping(
            data["router_options"], "scenario.router_options"
        )
        kwargs["router_options"] = {
            str(name): dict(
                _require_mapping(
                    opts, f"scenario.router_options[{name!r}]"
                )
            )
            for name, opts in options.items()
        }
    try:
        return Scenario(**kwargs)
    except (TypeError, ValueError) as error:
        raise WireError(f"invalid scenario: {error}") from None


def scenario_to_dict(scenario: Scenario) -> dict:
    """Encode a scenario as its wire document (inverse of
    :func:`scenario_from_dict`; defaults are written out explicitly,
    so the document is self-contained)."""
    out: dict = {
        "deployment_model": scenario.deployment_model,
        "area": _rect_to_wire(scenario.area),
    }
    for key in _SCALAR_INT_FIELDS:
        out[key] = getattr(scenario, key)
    for key in _SCALAR_FLOAT_FIELDS:
        out[key] = getattr(scenario, key)
    out["obstacles"] = [
        _obstacle_to_wire(obstacle) for obstacle in scenario.obstacles
    ]
    out["failures"] = [
        _failure_to_wire(spec) for spec in scenario.failures
    ]
    if scenario.mobility is not None:
        mob = scenario.mobility
        out["mobility"] = {
            "speed_min": mob.speed_min,
            "speed_max": mob.speed_max,
            "pause": mob.pause,
            "dt": mob.dt,
            "epochs": mob.epochs,
        }
    else:
        out["mobility"] = None
    out["channel"] = _channel_to_wire(scenario.channel)
    out["link_faults"] = (
        None
        if scenario.link_faults is None
        else _link_faults_to_wire(scenario.link_faults)
    )
    out["routers"] = list(scenario.routers)
    out["router_options"] = {
        name: dict(opts) for name, opts in scenario.router_options.items()
    }
    return out


# -- topology events ----------------------------------------------------------

_MOVE_EVENT_KEYS = frozenset({"op", "node", "x", "y"})
_FAIL_EVENT_KEYS = frozenset({"op", "nodes"})
_RESTORE_EVENT_KEYS = frozenset({"op", "nodes", "positions"})


def topology_events_from_dict(data: Mapping) -> list[tuple]:
    """Decode a topology-update request body.

    Returns the validated event list as tagged tuples —
    ``("move", node, Point)``, ``("fail", ids)``,
    ``("restore", ids, {id: Point} | None)`` — ready for
    :class:`~repro.network.dynamic.DynamicTopology` application.
    Shape validation happens here (wrong types, unknown ops → 400);
    *state* validation (unknown node, failing a down node) happens at
    application time against the live topology.
    """
    data = _require_mapping(data, "body")
    _check_keys(data, frozenset({"events"}), "body")
    try:
        events = data["events"]
    except KeyError:
        raise WireError("body is missing key 'events'") from None
    if not isinstance(events, Sequence) or isinstance(events, str):
        raise WireError("events must be an array")
    if not events:
        raise WireError("events must not be empty")
    out: list[tuple] = []
    for i, value in enumerate(events):
        where = f"events[{i}]"
        event = _require_mapping(value, where)
        op = event.get("op")
        try:
            if op == "move":
                _check_keys(event, _MOVE_EVENT_KEYS, where)
                out.append(
                    (
                        "move",
                        _int_field(event, "node", where),
                        Point(
                            _float_field(event, "x", where),
                            _float_field(event, "y", where),
                        ),
                    )
                )
            elif op == "fail":
                _check_keys(event, _FAIL_EVENT_KEYS, where)
                out.append(
                    ("fail", _int_tuple(event["nodes"], f"{where}.nodes"))
                )
            elif op == "restore":
                _check_keys(event, _RESTORE_EVENT_KEYS, where)
                positions = None
                if event.get("positions") is not None:
                    raw = _require_mapping(
                        event["positions"], f"{where}.positions"
                    )
                    positions = {}
                    for key, coords in raw.items():
                        try:
                            node = int(key)
                        except ValueError:
                            raise WireError(
                                f"{where}.positions keys must be node "
                                f"ids, got {key!r}"
                            ) from None
                        if (
                            not isinstance(coords, Sequence)
                            or isinstance(coords, str)
                            or len(coords) != 2
                        ):
                            raise WireError(
                                f"{where}.positions[{key!r}] must be "
                                "[x, y]"
                            )
                        positions[node] = Point(
                            float(coords[0]), float(coords[1])
                        )
                out.append(
                    (
                        "restore",
                        _int_tuple(event["nodes"], f"{where}.nodes"),
                        positions,
                    )
                )
            else:
                raise WireError(
                    f"{where}.op must be 'move', 'fail' or 'restore', "
                    f"got {op!r}"
                )
        except KeyError as error:
            raise WireError(f"{where} is missing key {error}") from None
    return out
