"""Terminal visualisation: ASCII charts and network maps.

matplotlib is unavailable in the offline reproduction environment, so
figures are rendered as aligned tables, CSV files and ASCII line
charts — sufficient to compare curve *shapes* against the paper — and
network maps for the example scripts.
"""

from repro.viz.ascii_chart import line_chart
from repro.viz.network_map import network_map, path_animation

__all__ = ["line_chart", "network_map", "path_animation"]
