"""ASCII maps of a deployed network, for the example scripts.

Renders the interest area as a character grid: nodes, obstacles,
routing paths and unsafe areas each get a glyph layer, later layers
overwriting earlier ones so a path stays visible on top of the node
cloud.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry import Rect
from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.network.obstacles import Obstacle

__all__ = ["network_map", "path_animation"]


def network_map(
    graph: WasnGraph,
    area: Rect,
    width: int = 72,
    height: int = 28,
    obstacles: Sequence[Obstacle] = (),
    highlight: Iterable[NodeId] = (),
    path: Sequence[NodeId] = (),
    node_char: str = ".",
    highlight_char: str = "u",
    path_char: str = "*",
    obstacle_char: str = "#",
) -> str:
    """Render the network as an ASCII map (north up).

    Layers, later wins: obstacles, plain nodes, ``highlight`` nodes
    (e.g. an unsafe area), the ``path`` (endpoints become ``S``/``D``).
    """
    if width < 4 or height < 4:
        raise ValueError("map too small")
    canvas = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        cx = round((x - area.x_min) / max(area.width, 1e-9) * (width - 1))
        cy = round((y - area.y_min) / max(area.height, 1e-9) * (height - 1))
        return min(max(cx, 0), width - 1), min(max(cy, 0), height - 1)

    # Obstacles: sample the canvas grid against the obstacle shapes.
    if obstacles:
        for row in range(height):
            for col in range(width):
                x = area.x_min + col / (width - 1) * area.width
                y = area.y_min + row / (height - 1) * area.height
                from repro.geometry import Point

                if any(ob.contains(Point(x, y)) for ob in obstacles):
                    canvas[row][col] = obstacle_char

    for node in graph.nodes():
        cx, cy = cell(node.position.x, node.position.y)
        canvas[cy][cx] = node_char

    for node_id in highlight:
        p = graph.position(node_id)
        cx, cy = cell(p.x, p.y)
        canvas[cy][cx] = highlight_char

    for node_id in path:
        p = graph.position(node_id)
        cx, cy = cell(p.x, p.y)
        canvas[cy][cx] = path_char
    if path:
        for node_id, mark in ((path[0], "S"), (path[-1], "D")):
            p = graph.position(node_id)
            cx, cy = cell(p.x, p.y)
            canvas[cy][cx] = mark

    # Row 0 of the canvas is the south edge; print north-up.
    border = "+" + "-" * width + "+"
    lines = [border]
    for row in reversed(canvas):
        lines.append("|" + "".join(row) + "|")
    lines.append(border)
    return "\n".join(lines)


def path_animation(
    graph: WasnGraph,
    area: Rect,
    path: Sequence[NodeId],
    every: int = 1,
    **map_kwargs,
) -> list[str]:
    """Frames of a route growing hop by hop across the map.

    ``path`` is any node sequence — a
    :attr:`~repro.routing.base.RouteResult.path`, or the live path of
    a :class:`repro.api.TraceRecorder` attached through the ``on_hop``
    routing hook (``recorder.path()``), which is how animation works
    without subclassing a router.  ``every`` thins the frames (one per
    ``every`` hops; the final frame is always included); remaining
    keyword arguments pass through to :func:`network_map`.
    """
    if every < 1:
        raise ValueError("every must be >= 1")
    path = list(path)
    if len(path) < 2:
        return [network_map(graph, area, path=path, **map_kwargs)]
    hop_counts = list(range(1, len(path)))
    selected = hop_counts[::every]
    if selected[-1] != hop_counts[-1]:
        selected.append(hop_counts[-1])
    return [
        network_map(graph, area, path=path[: hops + 1], **map_kwargs)
        for hops in selected
    ]
