"""ASCII line charts for figure series."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["line_chart"]

# Each series gets a marker, assigned in insertion order.
_MARKERS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float] | None = None,
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render several y-series on a shared ASCII canvas.

    Series are drawn as scattered markers at their sample positions
    (one column per x sample, interpolated onto the canvas width); a
    legend maps markers to series names.  Overlapping points keep the
    marker drawn last, which is fine for eyeballing curve shapes.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    (n,) = lengths
    if n == 0:
        raise ValueError("series must not be empty")
    if x_values is not None and len(x_values) != n:
        raise ValueError("x_values length must match the series")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")

    all_values = [v for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0  # flat chart: avoid dividing by zero

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for i, value in enumerate(values):
            x = round(i * (width - 1) / max(n - 1, 1))
            y = round((value - lo) / (hi - lo) * (height - 1))
            canvas[height - 1 - y][x] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{hi:.6g}"
    bottom_label = f"{lo:.6g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    if x_values is not None:
        left = f"{x_values[0]:g}"
        right = f"{x_values[-1]:g}"
        pad = width - len(left) - len(right)
        lines.append(
            " " * (label_width + 2) + left + " " * max(pad, 1) + right
        )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
