"""Multi-flow traffic analysis: interference between concurrent streams.

Section 1's second motivation for straightforward paths: "less
interference occurs in other transmissions when fewer nodes are
involved in the transmission".  With several streams active at once,
every node within radio range of a forwarder is occupied (cannot
receive anything else while the forwarder transmits); this module
quantifies that contention for a set of concurrently routed flows:

* per-node **channel load** — how many distinct flows a node overhears;
* **flow conflicts** — pairs of flows whose interference footprints
  intersect (they cannot be scheduled in the same slot near the
  overlap);
* aggregate statistics the examples and benches report.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.routing.base import RouteResult

__all__ = ["TrafficReport", "analyze_flows"]


@dataclass(frozen=True)
class TrafficReport:
    """Contention summary for a set of concurrent flows."""

    flows: int
    delivered: int
    total_hops: int
    max_channel_load: int
    mean_channel_load: float
    busy_nodes: int
    conflicting_flow_pairs: int

    def conflict_ratio(self) -> float:
        """Fraction of flow pairs that interfere (0 = perfectly
        parallel traffic)."""
        pairs = self.flows * (self.flows - 1) // 2
        return self.conflicting_flow_pairs / pairs if pairs else 0.0


def _footprint(result: RouteResult, graph: WasnGraph) -> set[NodeId]:
    """Nodes occupied by one flow: path nodes plus all overhearers."""
    affected: set[NodeId] = set(result.path)
    for transmitter in result.path[:-1]:
        affected.update(graph.neighbors(transmitter))
    return affected


def analyze_flows(
    graph: WasnGraph, results: list[RouteResult]
) -> TrafficReport:
    """Contention analysis of concurrently active flows.

    Flows that failed to deliver still occupy the channel along the
    partial path they walked — failed detours interfere too.
    """
    if not results:
        raise ValueError("need at least one flow")
    footprints = [_footprint(result, graph) for result in results]
    load: dict[NodeId, int] = {}
    for footprint in footprints:
        for node in footprint:
            load[node] = load.get(node, 0) + 1
    conflicts = sum(
        1
        for a, b in combinations(footprints, 2)
        if a & b
    )
    loads = list(load.values())
    return TrafficReport(
        flows=len(results),
        delivered=sum(r.delivered for r in results),
        total_hops=sum(r.hops for r in results),
        max_channel_load=max(loads),
        mean_channel_load=sum(loads) / len(loads),
        busy_nodes=len(load),
        conflicting_flow_pairs=conflicts,
    )
