"""Analysis helpers: statistics, shortest-path oracles, traffic."""

from repro.analysis.oracle import ShortestPathOracle
from repro.analysis.stats import Summary, mean_confidence_interval, summarize
from repro.analysis.traffic import TrafficReport, analyze_flows

__all__ = [
    "ShortestPathOracle",
    "Summary",
    "TrafficReport",
    "analyze_flows",
    "mean_confidence_interval",
    "summarize",
]
