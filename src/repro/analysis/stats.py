"""Summary statistics for experiment aggregation.

The paper reports "the average routing performance over all of these
randomly sampled networks"; we additionally carry a 95% confidence
interval so EXPERIMENTS.md can state how tight the reproduction's
averages are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "mean_confidence_interval", "summarize"]

# Two-sided 95% quantile of the standard normal; with the paper's 100
# networks per point the normal approximation is comfortably valid.
_Z95 = 1.959963984540054


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of one metric series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci95_half_width: float

    def format_mean(self, digits: int = 2) -> str:
        """``mean ± ci`` rendering for report tables."""
        return f"{self.mean:.{digits}f}±{self.ci95_half_width:.{digits}f}"


def summarize(values: Sequence[float]) -> Summary:
    """Summary of a non-empty sequence of values."""
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    std = math.sqrt(variance)
    half = _Z95 * std / math.sqrt(n) if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        std=std,
        minimum=min(values),
        maximum=max(values),
        ci95_half_width=half,
    )


def mean_confidence_interval(
    values: Sequence[float],
) -> tuple[float, float, float]:
    """(mean, low, high) of the 95% confidence interval of the mean."""
    summary = summarize(values)
    return (
        summary.mean,
        summary.mean - summary.ci95_half_width,
        summary.mean + summary.ci95_half_width,
    )
