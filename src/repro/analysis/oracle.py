"""Shortest-path oracle: the geometric lower bound for stretch analysis.

The paper compares routing schemes against each other; a reproduction
can additionally report the *stretch* of each scheme — path length
relative to the true weighted shortest path — which makes "more
straightforward" quantitative.  The oracle runs Dijkstra on demand and
caches per-source distance maps, so sweeping many destinations from
few sources stays cheap.
"""

from __future__ import annotations

import heapq

from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["ShortestPathOracle"]


class ShortestPathOracle:
    """Weighted (Euclidean) and hop-count shortest paths on a WASN."""

    def __init__(self, graph: WasnGraph):
        self._graph = graph
        self._weighted_cache: dict[NodeId, dict[NodeId, float]] = {}
        self._hops_cache: dict[NodeId, dict[NodeId, int]] = {}

    def shortest_length(self, source: NodeId, destination: NodeId) -> float | None:
        """Weighted shortest-path length, or None when disconnected."""
        distances = self._weighted_from(source)
        return distances.get(destination)

    def shortest_hops(self, source: NodeId, destination: NodeId) -> int | None:
        """Minimum hop count, or None when disconnected."""
        hops = self._hops_from(source)
        return hops.get(destination)

    def stretch(
        self, source: NodeId, destination: NodeId, achieved_length: float
    ) -> float | None:
        """``achieved / optimal`` length ratio (None when disconnected).

        A perfectly "straightforward" route has stretch 1.0.
        """
        optimal = self.shortest_length(source, destination)
        if optimal is None or optimal == 0.0:
            return None
        return achieved_length / optimal

    def _weighted_from(self, source: NodeId) -> dict[NodeId, float]:
        if source not in self._weighted_cache:
            graph = self._graph
            dist: dict[NodeId, float] = {source: 0.0}
            heap: list[tuple[float, NodeId]] = [(0.0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist.get(u, float("inf")):
                    continue
                for v in graph.neighbors(u):
                    nd = d + graph.distance(u, v)
                    if nd < dist.get(v, float("inf")):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
            self._weighted_cache[source] = dist
        return self._weighted_cache[source]

    def _hops_from(self, source: NodeId) -> dict[NodeId, int]:
        if source not in self._hops_cache:
            graph = self._graph
            hops = {source: 0}
            frontier = [source]
            while frontier:
                next_frontier: list[NodeId] = []
                for u in frontier:
                    for v in graph.neighbors(u):
                        if v not in hops:
                            hops[v] = hops[u] + 1
                            next_frontier.append(v)
                frontier = next_frontier
            self._hops_cache[source] = hops
        return self._hops_cache[source]
