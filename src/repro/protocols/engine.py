"""Synchronous round-based message-passing kernel.

"To simplify the discussion, we describe all the schemes in a
synchronous, round-based system.  All the schemes presented in this
paper can be extended easily to an asynchronous round based system."
(Section 3.)

The kernel models a radio network: a node's only transmission primitive
is a **local broadcast** heard by every neighbour (that is how sensor
hardware works, and it is what makes the paper's "broadcast ... to all
its neighbors" construction cheap).  Each round, every node handles the
broadcasts received during the previous round and may emit one
broadcast of its own; the engine runs until a round passes with no
traffic (quiescence) or a round limit is hit.

Cost accounting follows the radio model: one broadcast = one
transmission regardless of neighbour count; receptions are counted
separately (energy at the receivers).  The construction-cost benchmark
compares protocols on exactly these numbers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.network.channel import ChannelState
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["Broadcast", "EngineStats", "ProtocolNode", "SyncEngine"]


@dataclass(frozen=True, slots=True)
class Broadcast:
    """One radio transmission: a payload heard by every neighbour."""

    sender: NodeId
    payload: Any


@dataclass(frozen=True)
class EngineStats:
    """Outcome of an engine run."""

    rounds: int
    transmissions: int
    receptions: int
    quiesced: bool
    # Receptions the channel withheld (lossy runs only; always 0 over
    # the default perfect radio).
    drops: int = 0

    def __str__(self) -> str:  # used by example scripts' reports
        state = "quiesced" if self.quiesced else "round-limited"
        suffix = f", {self.drops} drops" if self.drops else ""
        return (
            f"{self.rounds} rounds, {self.transmissions} transmissions, "
            f"{self.receptions} receptions{suffix} ({state})"
        )


class ProtocolNode(ABC):
    """Per-node protocol behaviour.

    A node sees only its own id, position and communication radius;
    everything else (neighbour ids, positions, statuses) must be
    learned from received broadcasts — keeping implementations honest
    about what a real sensor can know.
    """

    def __init__(self, node_id: NodeId):
        self.node_id = node_id

    @abstractmethod
    def on_start(self) -> Any | None:
        """Payload to broadcast in round 0, or ``None`` to stay silent."""

    @abstractmethod
    def on_round(self, inbox: list[Broadcast]) -> Any | None:
        """Handle last round's broadcasts; return a payload or ``None``."""


class SyncEngine:
    """Runs one protocol over a WASN graph, round by round."""

    def __init__(
        self,
        graph: WasnGraph,
        node_factory: Callable[[NodeId], ProtocolNode],
        channel: ChannelState | None = None,
    ):
        self._graph = graph
        self._channel = channel
        self._nodes: dict[NodeId, ProtocolNode] = {
            u: node_factory(u) for u in graph.node_ids
        }

    @property
    def graph(self) -> WasnGraph:
        """The network the protocol runs over."""
        return self._graph

    def node(self, node_id: NodeId) -> ProtocolNode:
        """The protocol state machine of one node (for inspection)."""
        return self._nodes[node_id]

    def nodes(self) -> Iterator[ProtocolNode]:
        """All node state machines, in ascending id order."""
        for node_id in self._graph.node_ids:
            yield self._nodes[node_id]

    def run(self, max_rounds: int = 10_000) -> EngineStats:
        """Run to quiescence (no broadcasts in a round) or ``max_rounds``.

        Round 0 collects every node's ``on_start`` payload; each later
        round delivers the previous round's broadcasts to every
        neighbour of the sender and collects the responses.  Delivery
        order within a round follows ascending node id — the engine is
        fully deterministic.  With a lossy ``channel``, each
        neighbour's copy of a broadcast is delivered only if the
        channel admits the directed link that round; withheld copies
        are tallied as ``drops`` (the channel draws are pure functions
        of seed/link/round, so lossy runs stay deterministic too).
        """
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        channel = self._channel
        if channel is not None and channel.is_perfect:
            channel = None
        transmissions = 0
        receptions = 0
        drops = 0

        outgoing: list[Broadcast] = []
        for u in self._graph.node_ids:
            payload = self._nodes[u].on_start()
            if payload is not None:
                outgoing.append(Broadcast(u, payload))
        transmissions += len(outgoing)

        rounds = 0
        quiesced = not outgoing
        while outgoing and rounds < max_rounds:
            rounds += 1
            inboxes: dict[NodeId, list[Broadcast]] = {}
            for broadcast in outgoing:
                for v in self._graph.neighbors(broadcast.sender):
                    if channel is not None and not channel.broadcast_delivered(
                        broadcast.sender, v, rounds
                    ):
                        drops += 1
                        continue
                    inboxes.setdefault(v, []).append(broadcast)
                    receptions += 1
            outgoing = []
            for u in self._graph.node_ids:
                # Every node gets a turn each active round, even with
                # an empty inbox — the timer tick a real sensor has.
                # Without it an isolated node would never notice its
                # quadrants are empty and never label itself unsafe.
                payload = self._nodes[u].on_round(inboxes.get(u, []))
                if payload is not None:
                    outgoing.append(Broadcast(u, payload))
            transmissions += len(outgoing)
            if not outgoing:
                quiesced = True
        return EngineStats(
            rounds=rounds,
            transmissions=transmissions,
            receptions=receptions,
            quiesced=quiesced,
            drops=drops,
        )
