"""Neighbour discovery: hello beacons.

Every WASN protocol in the paper assumes nodes know their neighbours
and the neighbours' locations (greedy forwarding needs ``L(v)`` for
every ``v ∈ N(u)``).  That knowledge comes from a one-shot beacon
exchange: each node broadcasts ``(id, position)`` once; after one round
everyone has heard every neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point
from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.protocols.engine import Broadcast, EngineStats, ProtocolNode, SyncEngine

__all__ = ["HelloNode", "run_hello"]


@dataclass(frozen=True, slots=True)
class _Hello:
    position: Point


class HelloNode(ProtocolNode):
    """Broadcasts one beacon; records every beacon it hears."""

    def __init__(self, node_id: NodeId, position: Point):
        super().__init__(node_id)
        self.position = position
        self.neighbor_positions: dict[NodeId, Point] = {}

    def on_start(self) -> _Hello:
        """Broadcast the one-and-only beacon."""
        return _Hello(self.position)

    def on_round(self, inbox: list[Broadcast]) -> None:
        for broadcast in inbox:
            self.neighbor_positions[broadcast.sender] = broadcast.payload.position
        return None  # nothing further to say


def run_hello(graph: WasnGraph) -> tuple[SyncEngine, EngineStats]:
    """Run neighbour discovery over ``graph``.

    Returns the engine (for per-node inspection) and the cost stats —
    exactly ``n`` transmissions and ``2 * |E|`` receptions.
    """
    engine = SyncEngine(
        graph, lambda u: HelloNode(u, graph.position(u))
    )
    stats = engine.run()
    return engine, stats
