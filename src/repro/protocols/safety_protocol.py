"""Algorithm 2 as a distributed protocol.

    "In such a process, the safety status and the estimated shape
    information are collected and distributed via information exchanges
    among neighbors.  Such an exchange is implemented by broadcasting
    such information of a node that newly changes its safety status to
    all its neighbors."  (Section 3.)

Every node starts by broadcasting a hello carrying its position and
the all-safe status tuple; from then on a node re-evaluates its tuple
and shape records whenever it hears an update, and broadcasts only when
something of its own changed.  Statuses are monotone (safe -> unsafe
only), shape records converge along the forwarding chains, so the
protocol quiesces; its fixed point must equal the centralized
construction (``tests/protocols`` asserts both statuses and shapes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.zones import (
    ZONE_TYPES,
    ZoneType,
    forwarding_zone_contains,
    quadrant_start_angle,
)
from repro.geometry import Point, Rect
from repro.geometry.angles import sort_ccw
from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.protocols.engine import Broadcast, EngineStats, ProtocolNode, SyncEngine

__all__ = ["SafetyProtocolNode", "run_safety_protocol"]

# Shape record as carried on the air: the far node of the first-scan
# chain and of the last-scan chain, with their positions (a receiver
# may not know those nodes directly — they can be many hops away).
_ShapeWire = tuple[NodeId, Point, NodeId, Point]


@dataclass(frozen=True, slots=True)
class _Update:
    """One broadcast: the sender's position, statuses and shapes.

    ``version`` is a per-sender sequence number.  Asynchronous delivery
    can reorder two broadcasts from the same sender (independent random
    link delays), and acting on a stale update would freeze a wrong
    belief; receivers keep only the highest version seen per sender.
    """

    position: Point
    statuses: tuple[bool, bool, bool, bool]
    shapes: dict[ZoneType, _ShapeWire]
    version: int


# For these scan-start edges the *first* chain hugs the horizontal
# axis; mirrors repro.core.shape.
_FIRST_CHAIN_IS_HORIZONTAL = {1: True, 2: False, 3: True, 4: False}


class SafetyProtocolNode(ProtocolNode):
    """Per-node state machine of the information construction."""

    def __init__(
        self, node_id: NodeId, position: Point, is_edge: bool
    ):
        super().__init__(node_id)
        self.position = position
        self.is_edge = is_edge
        self.statuses: list[bool] = [True, True, True, True]
        self.shapes: dict[ZoneType, _ShapeWire] = {}
        self._neighbor_position: dict[NodeId, Point] = {}
        self._neighbor_statuses: dict[
            NodeId, tuple[bool, bool, bool, bool]
        ] = {}
        self._neighbor_shapes: dict[NodeId, dict[ZoneType, _ShapeWire]] = {}
        self._neighbor_version: dict[NodeId, int] = {}
        self._version = 0

    # -- protocol hooks ------------------------------------------------

    def on_start(self) -> _Update:
        """Round-0 hello: position plus the all-safe initial tuple."""
        return self._snapshot()

    def on_round(self, inbox: list[Broadcast]) -> _Update | None:
        for broadcast in inbox:
            update: _Update = broadcast.payload
            seen = self._neighbor_version.get(broadcast.sender, -1)
            if update.version <= seen:
                continue  # stale (reordered) update — discard
            self._neighbor_version[broadcast.sender] = update.version
            self._neighbor_position[broadcast.sender] = update.position
            self._neighbor_statuses[broadcast.sender] = update.statuses
            self._neighbor_shapes[broadcast.sender] = update.shapes
        changed = self._reevaluate()
        return self._snapshot() if changed else None

    # -- local evaluation ----------------------------------------------

    def _in_quadrant(self, zone_type: ZoneType) -> list[NodeId]:
        return [
            v
            for v, pv in self._neighbor_position.items()
            if forwarding_zone_contains(self.position, zone_type, pv)
        ]

    def _neighbor_is_safe(self, v: NodeId, zone_type: ZoneType) -> bool:
        # Until a neighbour says otherwise it is presumed safe — the
        # initial condition of Definition 1.
        statuses = self._neighbor_statuses.get(v)
        return statuses is None or statuses[zone_type - 1]

    def _reevaluate(self) -> bool:
        """Recompute statuses and shapes from current beliefs.

        The recomputation is *bidirectional* (a status may flip back to
        safe), which matters for asynchronous delivery: a node can act
        before it has heard from every neighbour, label itself unsafe
        for a quadrant that merely *looks* empty, and must recover when
        the late hello arrives.  Convergence is still guaranteed: the
        per-type dependency relation ("my status depends on my quadrant
        neighbours'") follows a strictly increasing position key, so it
        is a DAG, and recompute-to-fixpoint on a DAG reaches the unique
        fixed point regardless of message order — this is what makes
        the paper's "extended easily to an asynchronous ... system"
        claim true, and the async-engine tests check it.
        """
        changed = False
        for zone_type in ZONE_TYPES:
            index = zone_type - 1
            if self.is_edge:
                continue  # pinned (1, 1, 1, 1)
            in_quadrant = self._in_quadrant(zone_type)
            safe = any(
                self._neighbor_is_safe(v, zone_type) for v in in_quadrant
            )
            if safe != self.statuses[index]:
                self.statuses[index] = safe
                changed = True
            if not safe:
                if self._update_shape(zone_type, in_quadrant):
                    changed = True
            elif zone_type in self.shapes:
                # Re-labeled safe: retract the stale shape record.
                del self.shapes[zone_type]
                changed = True
        return changed

    def _update_shape(
        self, zone_type: ZoneType, in_quadrant: list[NodeId]
    ) -> bool:
        """Recompute ``u^(1)``/``u^(2)`` from current neighbour claims."""
        unsafe_in_quadrant = [
            v
            for v in in_quadrant
            if not self._neighbor_is_safe(v, zone_type)
        ]
        if not in_quadrant or not unsafe_in_quadrant:
            # Either a genuine stuck node (empty quadrant) or a
            # transient state before the quadrant neighbours have
            # reported unsafe; both collapse to self (Algorithm 2's
            # base case), refined by later rounds if needed.
            record = (self.node_id, self.position, self.node_id, self.position)
        else:
            scan = sort_ccw(
                self.position,
                quadrant_start_angle(zone_type),
                unsafe_in_quadrant,
                self._neighbor_position.__getitem__,
            )
            v1, v2 = scan[0], scan[-1]
            first = self._far_of(v1, zone_type, first_chain=True)
            last = self._far_of(v2, zone_type, first_chain=False)
            record = (*first, *last)
        if self.shapes.get(zone_type) != record:
            self.shapes[zone_type] = record
            return True
        return False

    def _far_of(
        self, v: NodeId, zone_type: ZoneType, first_chain: bool
    ) -> tuple[NodeId, Point]:
        """``v^(1)`` (or ``v^(2)``) as last reported by ``v``."""
        shapes = self._neighbor_shapes.get(v, {})
        record = shapes.get(zone_type)
        if record is None:
            return (v, self._neighbor_position[v])
        return (record[0], record[1]) if first_chain else (record[2], record[3])

    def _snapshot(self) -> _Update:
        update = _Update(
            position=self.position,
            statuses=tuple(self.statuses),
            shapes=dict(self.shapes),
            version=self._version,
        )
        self._version += 1
        return update

    # -- inspection helpers (tests, examples) ---------------------------

    def status_tuple(self) -> tuple[bool, bool, bool, bool]:
        """The current safety tuple ``(S_1, S_2, S_3, S_4)``."""
        return tuple(self.statuses)

    def estimated_rect(self, zone_type: ZoneType) -> Rect | None:
        """``E_i(u)`` as this node currently believes it."""
        record = self.shapes.get(zone_type)
        if record is None:
            return None
        first_pos, last_pos = record[1], record[3]
        if _FIRST_CHAIN_IS_HORIZONTAL[zone_type]:
            corner = Point(first_pos.x, last_pos.y)
        else:
            corner = Point(last_pos.x, first_pos.y)
        return Rect.from_corners(self.position, corner)


def run_safety_protocol(
    graph: WasnGraph, max_rounds: int = 10_000
) -> tuple[SyncEngine, EngineStats]:
    """Run the distributed information construction over ``graph``."""
    engine = SyncEngine(
        graph,
        lambda u: SafetyProtocolNode(
            u, graph.position(u), graph.is_edge_node(u)
        ),
    )
    stats = engine.run(max_rounds)
    return engine, stats
