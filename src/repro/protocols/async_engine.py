"""Asynchronous message-passing engine.

Section 3: "To simplify the discussion, we describe all the schemes in
a synchronous, round-based system.  All the schemes presented in this
paper can be extended easily to an asynchronous round based system."

This module makes that claim testable.  The asynchronous engine is an
event-driven simulator: each broadcast is delivered to each neighbour
as a separate event after a per-link random delay drawn from a seeded
distribution, so message orderings differ radically from the
synchronous rounds (and between seeds).  Protocol nodes are reused
unchanged — ``on_round`` simply sees singleton inboxes in delivery
order — and the safety-protocol tests assert that the fixed point is
*identical* to the synchronous and centralized constructions for any
delay schedule, which is exactly the "extends easily" property: the
labeling is a monotone fixed-point computation, insensitive to message
order.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.protocols.engine import Broadcast, ProtocolNode

__all__ = ["AsyncEngine", "AsyncStats"]


@dataclass(frozen=True)
class AsyncStats:
    """Outcome of an asynchronous run."""

    events: int
    transmissions: int
    receptions: int
    quiesced: bool
    virtual_time: float


class AsyncEngine:
    """Event-driven delivery of broadcasts with random link delays.

    ``delay`` maps ``(sender, receiver, rng)`` to a positive latency;
    the default draws uniformly from [0.5, 1.5) time units per link,
    independently per message — enough to scramble any ordering the
    synchronous engine would have produced.
    """

    def __init__(
        self,
        graph: WasnGraph,
        node_factory: Callable[[NodeId], ProtocolNode],
        seed: int = 0,
        delay: Callable[[NodeId, NodeId, random.Random], float] | None = None,
    ):
        self._graph = graph
        self._nodes: dict[NodeId, ProtocolNode] = {
            u: node_factory(u) for u in graph.node_ids
        }
        self._rng = random.Random(seed)
        self._delay = delay or (
            lambda _s, _r, rng: rng.uniform(0.5, 1.5)
        )

    @property
    def graph(self) -> WasnGraph:
        """The network the protocol runs over."""
        return self._graph

    def node(self, node_id: NodeId) -> ProtocolNode:
        """The protocol state machine of one node (for inspection)."""
        return self._nodes[node_id]

    def nodes(self) -> Iterator[ProtocolNode]:
        """All node state machines, in ascending id order."""
        for node_id in self._graph.node_ids:
            yield self._nodes[node_id]

    def run(self, max_events: int = 1_000_000) -> AsyncStats:
        """Deliver events until the queue drains or ``max_events``.

        The event queue is keyed by (delivery time, sequence number) so
        simultaneous deliveries break ties deterministically; a node
        handles one message per event (singleton inbox), emitting at
        most one broadcast in response, which is scheduled to every
        neighbour with fresh independent delays.
        """
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        queue: list[tuple[float, int, NodeId, Broadcast]] = []
        sequence = 0
        transmissions = 0
        receptions = 0

        def schedule(sender: NodeId, payload) -> None:
            nonlocal sequence, transmissions
            transmissions += 1
            broadcast = Broadcast(sender, payload)
            for v in self._graph.neighbors(sender):
                latency = self._delay(sender, v, self._rng)
                if latency <= 0:
                    raise ValueError("link delay must be positive")
                heapq.heappush(
                    queue, (now + latency, sequence, v, broadcast)
                )
                sequence += 1

        now = 0.0
        for u in self._graph.node_ids:
            payload = self._nodes[u].on_start()
            if payload is not None:
                schedule(u, payload)

        events = 0
        while queue and events < max_events:
            now, _, receiver, broadcast = heapq.heappop(queue)
            events += 1
            receptions += 1
            response = self._nodes[receiver].on_round([broadcast])
            if response is not None:
                schedule(receiver, response)
        return AsyncStats(
            events=events,
            transmissions=transmissions,
            receptions=receptions,
            quiesced=not queue,
            virtual_time=now,
        )
