"""BOUNDHOLE: hole boundary detection (Fang, Gao, Guibas — ref [5]).

Section 5: "within the interest area, boundary information [5] is
constructed for GF routings" — the GF baseline recovers from local
minima by walking precomputed hole boundaries instead of discovering
detours on the fly.  This module builds that information:

1. **TENT rule** — a node is a *potential stuck node* when the angular
   gap between two consecutive neighbours (sorted by angle) exceeds
   120°: packets for destinations inside such a gap cannot advance
   greedily.  (This is the standard local simplification of the exact
   TENT construction, which intersects perpendicular bisectors; the
   gap form is what BOUNDHOLE deployments actually compute.)
2. **Boundary walk** — from each stuck node, the hole boundary is
   traced with the right-hand rule: enter the gap along its clockwise
   edge and keep taking the first neighbour counter-clockwise from the
   incoming edge until the walk returns to the start.  Connected stuck
   nodes end up on the same cycle; each node is assigned the first
   boundary that contains it.

The result is deliberately exposed through the tiny
:class:`~repro.routing.greedy.HoleBoundaries` protocol so the router
layer stays decoupled from the construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry.angles import angle_of, ccw_angle_distance, first_hit_cw
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["HoleBoundarySet", "build_hole_boundaries", "tent_stuck_nodes"]

# TENT threshold: 120 degrees.
_TENT_GAP = 2.0 * math.pi / 3.0


def tent_stuck_nodes(graph: WasnGraph) -> set[NodeId]:
    """Nodes with an angular neighbour gap exceeding 120° (TENT rule).

    Nodes with no neighbours are skipped (they are unreachable, not
    stuck); a single-neighbour node has a full 360° gap and qualifies.
    """
    stuck: set[NodeId] = set()
    for u in graph.node_ids:
        neighbors = graph.neighbors(u)
        if not neighbors:
            continue
        pu = graph.position(u)
        angles = sorted(angle_of(pu, graph.position(v)) for v in neighbors)
        worst = 0.0
        for i, current in enumerate(angles):
            following = angles[(i + 1) % len(angles)]
            gap = ccw_angle_distance(current, following)
            if len(angles) == 1:
                gap = math.tau
            worst = max(worst, gap)
        if worst > _TENT_GAP:
            stuck.add(u)
    return stuck


@dataclass(frozen=True)
class HoleBoundarySet:
    """All detected hole boundaries, with per-node lookup."""

    boundaries: tuple[tuple[NodeId, ...], ...]
    _by_node: dict[NodeId, int] = field(repr=False)

    def boundary_of(self, node: NodeId) -> tuple[NodeId, ...] | None:
        """The boundary cycle through ``node`` (or None)."""
        index = self._by_node.get(node)
        return self.boundaries[index] if index is not None else None

    def __len__(self) -> int:
        return len(self.boundaries)

    def nodes_on_boundaries(self) -> set[NodeId]:
        """Every node that lies on some traced boundary."""
        return set(self._by_node)

    def total_boundary_hops(self) -> int:
        """Total boundary edges — the message cost of the walks."""
        return sum(len(b) for b in self.boundaries)


def _widest_gap_edges(
    graph: WasnGraph, u: NodeId
) -> tuple[NodeId, NodeId] | None:
    """The neighbours bounding u's widest angular gap (cw edge, ccw edge)."""
    neighbors = graph.neighbors(u)
    if not neighbors:
        return None
    pu = graph.position(u)
    ordered = sorted(
        neighbors, key=lambda v: angle_of(pu, graph.position(v))
    )
    if len(ordered) == 1:
        return (ordered[0], ordered[0])
    best: tuple[NodeId, NodeId] | None = None
    best_gap = -1.0
    for i, v in enumerate(ordered):
        w = ordered[(i + 1) % len(ordered)]
        gap = ccw_angle_distance(
            angle_of(pu, graph.position(v)), angle_of(pu, graph.position(w))
        )
        if gap > best_gap:
            best_gap = gap
            best = (v, w)
    return best


def _trace_boundary(
    graph: WasnGraph, start: NodeId, max_steps: int
) -> tuple[NodeId, ...] | None:
    """Rim walk of the hole starting at ``start``.

    The first hop leaves along the *clockwise* edge of the widest gap
    (the hole lies inside the gap); each subsequent hop takes the
    first neighbour **clockwise** from the edge back to the previous
    node — the pairing that keeps the hole on a consistent side of the
    walk (a counter-clockwise sweep would immediately fold the walk
    back away from the hole into a degenerate triangle).  Returns the
    cycle when the walk comes back to ``start``; ``None`` when it
    degenerates (repeated directed edge elsewhere, or step budget
    exhausted).
    """
    gap = _widest_gap_edges(graph, start)
    if gap is None:
        return None
    prev, current = start, gap[0]
    walk = [start, current]
    seen_edges = {(start, current)}
    for _ in range(max_steps):
        if current == start:
            return tuple(walk[:-1])  # closed: drop the repeated start
        pc = graph.position(current)
        neighbors = graph.neighbors(current)
        nxt = first_hit_cw(
            pc,
            angle_of(pc, graph.position(prev)),
            neighbors,
            graph.position,
            exclusive=True,
        )
        if nxt is None:
            # Degenerate single-neighbour dead end: bounce back.
            nxt = prev
        edge = (current, nxt)
        if edge in seen_edges:
            return None  # walk trapped in a sub-cycle missing start
        seen_edges.add(edge)
        walk.append(nxt)
        prev, current = current, nxt
    return None


def build_hole_boundaries(
    graph: WasnGraph, max_steps_factor: float = 4.0
) -> HoleBoundarySet:
    """Detect stuck nodes (TENT) and trace their hole boundaries.

    ``max_steps_factor`` bounds each walk at ``factor * |V|`` hops.
    Stuck nodes already assigned to a traced boundary are not re-walked
    (connected stuck nodes share their hole's rim), which keeps
    construction cost proportional to total boundary length — the
    quantity the construction-cost benchmark reports.
    """
    stuck = tent_stuck_nodes(graph)
    max_steps = max(16, int(max_steps_factor * len(graph)))
    boundaries: list[tuple[NodeId, ...]] = []
    by_node: dict[NodeId, int] = {}
    for start in sorted(stuck):
        if start in by_node:
            continue
        cycle = _trace_boundary(graph, start, max_steps)
        if cycle is None:
            continue
        index = len(boundaries)
        boundaries.append(cycle)
        for node in cycle:
            by_node.setdefault(node, index)
    return HoleBoundarySet(boundaries=tuple(boundaries), _by_node=by_node)
