"""Distributed protocols: the message-passing side of the paper.

Section 3 presents everything "in a synchronous, round-based system";
this subpackage provides that system and the protocols that run on it:

* :mod:`~repro.protocols.engine` — the synchronous round-based kernel
  with radio-style local broadcast and cost accounting;
* :mod:`~repro.protocols.hello` — neighbour discovery beacons;
* :mod:`~repro.protocols.safety_protocol` — Algorithm 2 (information
  construction) as an actual distributed protocol, whose fixed point
  must equal the centralized :func:`repro.core.safety.compute_safety`
  (a test asserts this);
* :mod:`~repro.protocols.boundhole` — BOUNDHOLE boundary detection
  (the paper's ref [5]), the information base of the GF baseline.
"""

from repro.protocols.async_engine import AsyncEngine, AsyncStats
from repro.protocols.boundhole import HoleBoundarySet, build_hole_boundaries
from repro.protocols.engine import (
    Broadcast,
    EngineStats,
    ProtocolNode,
    SyncEngine,
)
from repro.protocols.hello import HelloNode, run_hello
from repro.protocols.safety_protocol import (
    SafetyProtocolNode,
    run_safety_protocol,
)

__all__ = [
    "AsyncEngine",
    "AsyncStats",
    "Broadcast",
    "EngineStats",
    "HelloNode",
    "HoleBoundarySet",
    "ProtocolNode",
    "SafetyProtocolNode",
    "SyncEngine",
    "build_hole_boundaries",
    "run_hello",
    "run_safety_protocol",
]
