"""Edge-node detection — the hull of the interest area.

Section 3: "We assume that all of the communication actions occur
inside the interest area.  This area is an inner part of the deployment
area encircled by the edge of networks, which can easily be built by
the hull algorithm.  In our labeling process, each edge node will
always keep its status tuple as (1, 1, 1, 1).  Thus, the edge of
interest area will not affect the label of nodes inside."

Without this pinning the labeling of Definition 1 would degenerate: the
north-east-most node of any finite deployment has no neighbour in its
quadrant I, would be labeled type-1 unsafe, and the unsafe status would
cascade across the entire network.  Edge nodes are the boundary
condition that stops the cascade at the deployment outline.

Three strategies are provided:

* ``convex`` — nodes on the convex hull (including collinear boundary
  nodes).  Matches "the hull algorithm" and is exact for convex
  deployments (the IA model).
* ``alpha`` — alpha-shape boundary at the communication-radius scale;
  follows concave outlines, which matters when FA obstacles touch the
  deployment boundary.
* ``margin`` — nodes within a fixed distance of the deployment
  rectangle's border; the cheap engineering approximation, useful as a
  baseline in the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect, alpha_shape_boundary
from repro.geometry.hull import hull_indices
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["EdgeDetector"]

_STRATEGIES = ("convex", "alpha", "margin")


@dataclass(frozen=True)
class EdgeDetector:
    """Detects the edge nodes of a deployed network.

    ``alpha_scale`` multiplies the communication radius to obtain the
    alpha-shape parameter (only used by the ``alpha`` strategy);
    ``margin`` is the border band width for the ``margin`` strategy,
    interpreted as a multiple of the communication radius.
    """

    strategy: str = "convex"
    alpha_scale: float = 1.0
    margin: float = 0.75

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown edge strategy {self.strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )
        if self.alpha_scale <= 0:
            raise ValueError("alpha_scale must be positive")
        if self.margin < 0:
            raise ValueError("margin must be non-negative")

    def detect(self, graph: WasnGraph, area: Rect | None = None) -> set[NodeId]:
        """Ids of the edge nodes of ``graph``.

        ``area`` (the deployment rectangle) is only consulted by the
        ``margin`` strategy; the hull strategies derive the outline from
        the node positions alone, as the paper's hull algorithm does.
        """
        ids = graph.node_ids
        positions = [graph.position(i) for i in ids]
        if not ids:
            return set()

        if self.strategy == "convex":
            return {ids[i] for i in hull_indices(positions)}

        if self.strategy == "alpha":
            alpha = self.alpha_scale * graph.radius
            return {
                ids[i] for i in alpha_shape_boundary(positions, alpha)
            }

        # margin strategy
        if area is None:
            raise ValueError("margin strategy requires the deployment area")
        band = self.margin * graph.radius
        inner = area.expanded(-band)
        return {
            node_id
            for node_id, p in zip(ids, positions)
            if not inner.contains(p)
        }

    def apply(self, graph: WasnGraph, area: Rect | None = None) -> WasnGraph:
        """A copy of ``graph`` with edge flags set by this detector."""
        return graph.with_edge_nodes(self.detect(graph, area))
