"""Uniform-grid spatial index for neighbourhood queries.

Building the unit-disk graph naively costs O(n^2) distance tests; the
evaluation sweeps up to 800 nodes x 100 networks x 9 densities x 2
deployment models, so construction is on the hot path.  A uniform grid
with cell size equal to the communication radius reduces each node's
candidate set to its 3x3 cell neighbourhood, giving O(n * k) overall
construction for average degree k.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Iterator

from repro.geometry import Point

__all__ = ["SpatialGrid"]


class SpatialGrid:
    """Hash-grid over points supporting radius queries.

    The grid is unbounded (cells are created on demand), so callers do
    not need to know the deployment extents in advance — failure
    injection and mobility extensions can move points anywhere.
    """

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._cell_size = cell_size
        self._cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        self._points: dict[int, Point] = {}

    @property
    def cell_size(self) -> float:
        """Edge length of one grid cell."""
        return self._cell_size

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: int) -> bool:
        return key in self._points

    def _cell_of(self, p: Point) -> tuple[int, int]:
        return (int(p.x // self._cell_size), int(p.y // self._cell_size))

    def insert(self, key: int, p: Point) -> None:
        """Register ``p`` under ``key``; keys must be unique."""
        if key in self._points:
            raise KeyError(f"key {key} already present in grid")
        self._points[key] = p
        self._cells[self._cell_of(p)].append(key)

    def bulk_insert(self, items: Iterable[tuple[int, Point]]) -> None:
        """Insert many (key, point) pairs."""
        for key, p in items:
            self.insert(key, p)

    def remove(self, key: int) -> None:
        """Remove a key (used by failure injection)."""
        p = self._points.pop(key)
        cell = self._cells[self._cell_of(p)]
        cell.remove(key)
        if not cell:
            del self._cells[self._cell_of(p)]

    def move(self, key: int, p: Point) -> None:
        """Relocate ``key`` to ``p`` (used by mobility).

        Cell membership is only touched when the point actually crosses
        a cell border, so small drifts — the common mobility step — cost
        one dict write.  Within a cell the key keeps its slot, so query
        iteration order stays insertion order either way.
        """
        old = self._points[key]
        self._points[key] = p
        old_cell = self._cell_of(old)
        new_cell = self._cell_of(p)
        if new_cell == old_cell:
            return
        cell = self._cells[old_cell]
        cell.remove(key)
        if not cell:
            del self._cells[old_cell]
        self._cells[new_cell].append(key)

    def position(self, key: int) -> Point:
        """The stored point for ``key``."""
        return self._points[key]

    def _reach(self, radius: float) -> int:
        """How many cells outward a radius query must scan.

        Two points in cells ``k`` apart along an axis are more than
        ``(k - 1) * cell_size`` apart, so every point within ``radius``
        lies within ``ceil(radius / cell_size)`` cells of the center —
        the 3x3 neighbourhood for the canonical ``cell_size == radius``.
        """
        return max(1, math.ceil(radius / self._cell_size))

    def neighbors_within(
        self, center: Point, radius: float, exclude: int | None = None
    ) -> Iterator[int]:
        """Keys of points with ``distance <= radius`` from ``center``.

        The unit-disk model uses a closed ball: two nodes exactly at
        communication range are connected, matching the paper's "within
        the communication range of each other".
        """
        if radius <= 0:
            return
        radius_sq = radius * radius
        reach = self._reach(radius)
        cx, cy = self._cell_of(center)
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for key in self._cells.get((gx, gy), ()):
                    if key == exclude:
                        continue
                    if self._points[key].distance_squared_to(center) <= radius_sq:
                        yield key

    def nearest(self, center: Point, exclude: int | None = None) -> int | None:
        """Key of the nearest point (linear scan), or ``None`` when empty.

        Used by workload generators that snap sample coordinates to the
        closest deployed node — a rare operation, so the O(n) scan is
        deliberate: a ring-expansion search saves nothing there and is
        easy to get subtly wrong near sparse regions.  Ties are broken
        by the smaller key for determinism.
        """
        best: int | None = None
        best_key = (float("inf"), -1)
        for key, p in self._points.items():
            if key == exclude:
                continue
            candidate = (p.distance_squared_to(center), key)
            if candidate < best_key:
                best_key = candidate
                best = key
        return best

    def all_pairs_within(self, radius: float) -> Iterator[tuple[int, int]]:
        """All unordered key pairs at distance <= radius (each once).

        This is the unit-disk edge set; pairs are yielded with the
        smaller key first so the output is deterministic.
        """
        radius_sq = radius * radius
        reach = self._reach(radius)
        for (cx, cy), keys in self._cells.items():
            # Pairs within the same cell.
            for i, a in enumerate(keys):
                pa = self._points[a]
                for b in keys[i + 1 :]:
                    if pa.distance_squared_to(self._points[b]) <= radius_sq:
                        yield (min(a, b), max(a, b))
            # Pairs against lexicographically-later cells only, so each
            # cross-cell pair is produced exactly once.
            for gx in range(cx - reach, cx + reach + 1):
                for gy in range(cy - reach, cy + reach + 1):
                    if (gx, gy) <= (cx, cy):
                        continue
                    other = self._cells.get((gx, gy))
                    if not other:
                        continue
                    for a in keys:
                        pa = self._points[a]
                        for b in other:
                            if pa.distance_squared_to(self._points[b]) <= radius_sq:
                                yield (min(a, b), max(a, b))
