"""Lossy-radio channel layer: link quality, faults, retransmission.

Every scenario before this module assumed perfect unit-disk links —
exactly the idealisation that hides differences between the paper's
schemes.  This module adds the imperfection as a *channel* the routing
layer transmits through:

* a :class:`CommunicationModel` gives each link a per-attempt delivery
  probability.  :class:`UnitDisk` (the default) keeps today's perfect
  radio; :class:`LogNormalShadowing` derives the probability from the
  link distance, the path-loss exponent and a per-link shadowing draw
  (the classic log-normal shadowing radio of the WSN literature);
* a :class:`LinkFaultModel` degrades *attempts* beyond whole-node
  failure: :class:`IntermittentLinks` (a seeded subset of links is
  flaky), :class:`DutyCycle` (receivers sleep on a seeded phase) and
  :class:`DeadLinks` (a seeded drop schedule of permanently dead
  links);
* a :class:`ChannelState` materialises both for one network and
  simulates sending a routed packet hop by hop with stop-and-wait
  ARQ: each hop is retransmitted until an acknowledgement arrives or
  the per-hop retransmission budget runs out, and the resulting
  :class:`Transmission` record carries the full accounting
  (attempts per hop, retransmissions, where the packet died).

Determinism contract
--------------------

Every draw is a pure function of ``(channel seed, link, slot)`` via a
keyed :func:`hashlib.blake2b` stream — never Python's salted
``hash()``, never RNG state threaded through evaluation order.  Two
consequences the tests pin:

* the same scenario seed reproduces bit-identical outcomes across
  processes, platforms and hash seeds;
* the channel is one shared "world": every routing scheme crossing
  the same link at the same slot sees the same outcome, and the
  scalar and numpy routing backends (which produce identical paths)
  produce identical transmissions.

The *slot* is the channel's clock.  For a routed packet it is the
cumulative attempt index along that route; for the protocol engine
(:class:`~repro.protocols.engine.SyncEngine`) it is the round number.
Duty cycles and intermittent links key their schedules off it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from hashlib import blake2b
from typing import Mapping, Sequence

from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = [
    "ChannelState",
    "CommunicationModel",
    "DeadLinks",
    "DutyCycle",
    "IntermittentLinks",
    "LinkFaultModel",
    "LogNormalShadowing",
    "Transmission",
    "UnitDisk",
    "channel_seed",
]

# Domain-separation salts: every family of draws hashes a distinct
# constant first, so e.g. the link-noise stream can never collide with
# the attempt stream of the same link.
_SALT_CHANNEL = 0x10C0
_SALT_NOISE = 1
_SALT_ATTEMPT = 2
_SALT_FLAKY = 3
_SALT_FLAKY_SLOT = 4
_SALT_PHASE = 5
_SALT_DEAD = 6


def _mix(*parts: int) -> int:
    """A 64-bit digest of integer parts, stable across processes.

    Channel draws must reproduce bit-identically from the scenario
    seed everywhere, so nothing here may touch ``hash()`` (salted) or
    depend on iteration order.
    """
    digest = blake2b(digest_size=8)
    for part in parts:
        digest.update(part.to_bytes(16, "little", signed=True))
    return int.from_bytes(digest.digest(), "little")


def _unit(*parts: int) -> float:
    """Deterministic uniform draw in [0, 1) indexed by ``parts``."""
    return _mix(*parts) / 2.0**64


def _standard_normal(*parts: int) -> float:
    """Deterministic standard-normal draw indexed by ``parts``.

    Box-Muller over two indexed uniforms — self-contained, so the
    value never depends on :mod:`random` internals across versions.
    """
    u1 = _unit(*parts, 0)
    u2 = _unit(*parts, 1)
    # u1 == 0.0 would take log(0); nudge into (0, 1].
    return math.sqrt(-2.0 * math.log(1.0 - u1)) * math.cos(2.0 * math.pi * u2)


def channel_seed(network_seed: int) -> int:
    """The channel's seed for one materialised network.

    Derived (not equal to) the network seed, so channel draws can
    never correlate with deployment or workload sampling.
    """
    return _mix(_SALT_CHANNEL, network_seed)


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


# -- communication models -----------------------------------------------------


class CommunicationModel(ABC):
    """Per-attempt delivery probability of one link.

    Concrete models are frozen dataclasses: hashable, picklable and
    canonically encodable, so they ride Scenario fingerprints, Study
    axes and the wire codec like any other scenario field.
    """

    @property
    def is_perfect(self) -> bool:
        """Whether every attempt on every edge succeeds (no accounting)."""
        return False

    @abstractmethod
    def link_delivery(
        self, distance: float, radius: float, noise: float
    ) -> float:
        """Delivery probability of one attempt over ``distance``.

        ``radius`` is the scenario's nominal communication range;
        ``noise`` is the link's seeded standard-normal shadowing draw
        (the same value for every attempt on that link).
        """


@dataclass(frozen=True)
class UnitDisk(CommunicationModel):
    """The paper's perfect radio: every attempt on an edge succeeds.

    The default channel.  Scenarios under it behave bit-identically
    to the historical perfect-link pipeline — no transmission records
    are even produced (see ``Scenario.is_lossy``).
    """

    @property
    def is_perfect(self) -> bool:
        return True

    def link_delivery(
        self, distance: float, radius: float, noise: float
    ) -> float:
        return 1.0


@dataclass(frozen=True)
class LogNormalShadowing(CommunicationModel):
    """Log-normal shadowing radio: delivery falls off inside the disk.

    The link's realised SNR margin (dB) over the decoding threshold is

    ``margin = 10 * alpha * log10(radius / d) + sigma * noise``

    — the mean path-loss margin of a radio whose nominal range
    ``radius`` is the distance where mean received power meets the
    threshold, plus a static per-link shadowing draw
    (``noise ~ N(0, 1)``, seeded once per link).  Fast fading with the
    same deviation then gives the per-attempt delivery probability

    ``p = Phi(margin / sigma)``

    so a zero-shadowing link at the edge of the disk delivers half
    its attempts, close links approach 1, and unlucky links can be
    far worse — the heterogeneity that separates the schemes.
    """

    sigma: float = 4.0
    path_loss_exponent: float = 3.0

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")

    def link_delivery(
        self, distance: float, radius: float, noise: float
    ) -> float:
        if distance <= 0.0:
            return 1.0
        margin = 10.0 * self.path_loss_exponent * math.log10(
            radius / distance
        )
        margin += self.sigma * noise
        return _phi(margin / self.sigma)


# -- link fault models --------------------------------------------------------


class LinkFaultModel(ABC):
    """Per-attempt link faults beyond whole-node failure.

    A fault model can only *veto* attempts (availability, sleep
    schedules, dead links); link quality itself is the communication
    model's business.  Concrete models are frozen dataclasses for the
    same fingerprint/wire/axis reasons as communication models.
    """

    @abstractmethod
    def attempt_allowed(
        self,
        state: "ChannelState",
        sender: NodeId,
        receiver: NodeId,
        slot: int,
    ) -> bool:
        """Whether attempt ``slot`` can reach ``receiver`` at all."""


@dataclass(frozen=True)
class IntermittentLinks(LinkFaultModel):
    """A seeded ``fraction`` of links is flaky.

    Membership is one draw per (undirected) link; a flaky link is then
    up for any given slot with probability ``availability`` — both
    directions together, like a physically obstructed link.
    """

    fraction: float = 0.2
    availability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if not 0.0 <= self.availability <= 1.0:
            raise ValueError("availability must be within [0, 1]")

    def attempt_allowed(
        self,
        state: "ChannelState",
        sender: NodeId,
        receiver: NodeId,
        slot: int,
    ) -> bool:
        if state.link_unit(_SALT_FLAKY, sender, receiver) >= self.fraction:
            return True  # not one of the flaky links
        return (
            state.link_unit(_SALT_FLAKY_SLOT, sender, receiver, slot)
            < self.availability
        )


@dataclass(frozen=True)
class DutyCycle(LinkFaultModel):
    """Receivers sleep: awake ``on_slots`` out of every ``period`` slots.

    Each node gets a seeded phase offset, so neighbourhoods do not
    wake in lockstep; an attempt reaches its receiver only while the
    receiver is awake.  Senders are assumed to wake on demand (they
    have a packet to push), which is the asymmetry of real low-power
    listening MACs.
    """

    on_slots: int = 4
    period: int = 8

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if not 1 <= self.on_slots <= self.period:
            raise ValueError("on_slots must be within [1, period]")

    def attempt_allowed(
        self,
        state: "ChannelState",
        sender: NodeId,
        receiver: NodeId,
        slot: int,
    ) -> bool:
        phase = state.node_phase(receiver, self.period)
        return (slot + phase) % self.period < self.on_slots


@dataclass(frozen=True)
class DeadLinks(LinkFaultModel):
    """A seeded drop schedule: ``count`` links are permanently dead.

    The victims are drawn deterministically from the network's edge
    set (seeded per scenario/network), so the same scenario always
    kills the same links — but routing does not know: geographic
    schemes still believe the edge exists, and packets crossing it
    burn their whole retransmission budget.  That gap between the
    topology a scheme trusts and the channel it gets is the scenario
    this model exists to create.
    """

    count: int = 10

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")

    def attempt_allowed(
        self,
        state: "ChannelState",
        sender: NodeId,
        receiver: NodeId,
        slot: int,
    ) -> bool:
        return not state.link_is_dead(sender, receiver, self.count)


# -- transmission accounting --------------------------------------------------


@dataclass(frozen=True)
class Transmission:
    """Channel-level outcome of sending one routed packet.

    ``attempts_per_hop[i]`` counts the transmissions over path edge
    ``i`` (1 = the first try was acknowledged).  A packet that
    exhausts a hop's retransmission budget dies there:
    ``dropped_at`` names the hop and the record stops — hops the
    packet never reached cost nothing.  ``delivered`` is the
    end-to-end verdict: the routing layer found the destination *and*
    every hop crossed.  ``energy`` is the radio energy of the whole
    exchange (retransmissions and acks included) when the caller
    asked for energy accounting, else ``None``.
    """

    delivered: bool
    attempts_per_hop: tuple[int, ...]
    dropped_at: int | None = None
    energy: float | None = None

    def __post_init__(self) -> None:
        if any(a < 1 for a in self.attempts_per_hop):
            raise ValueError("every attempted hop has at least one attempt")
        if self.dropped_at is not None:
            if self.dropped_at != len(self.attempts_per_hop) - 1:
                raise ValueError(
                    "dropped_at must name the last attempted hop"
                )
            if self.delivered:
                raise ValueError("a dropped packet cannot be delivered")

    @property
    def attempts(self) -> int:
        """Total transmissions, retransmissions included."""
        return sum(self.attempts_per_hop)

    @property
    def hops_attempted(self) -> int:
        return len(self.attempts_per_hop)

    @property
    def effective_hops(self) -> int:
        """Hops the packet actually crossed."""
        if self.dropped_at is not None:
            return len(self.attempts_per_hop) - 1
        return len(self.attempts_per_hop)

    @property
    def retransmits(self) -> int:
        """Transmissions beyond the first try of each attempted hop."""
        return self.attempts - self.hops_attempted

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "delivered": self.delivered,
            "attempts_per_hop": list(self.attempts_per_hop),
            "dropped_at": self.dropped_at,
            "energy": self.energy,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Transmission":
        """Rebuild a record from :meth:`to_dict` output (validated)."""
        return cls(
            delivered=data["delivered"],
            attempts_per_hop=tuple(data["attempts_per_hop"]),
            dropped_at=data.get("dropped_at"),
            energy=data.get("energy"),
        )


# -- the materialised channel -------------------------------------------------


class ChannelState:
    """One network's lossy channel, materialised and seeded.

    Holds the per-link delivery probabilities (cached lazily — a
    session routing ten pairs never prices the whole edge set) and
    answers the two questions the stack asks:

    * :meth:`transmit_route` — simulate one routed packet hop by hop
      with stop-and-wait ARQ, returning the :class:`Transmission`
      accounting;
    * :meth:`broadcast_delivered` — one directed reception draw for
      the protocol engine's local broadcasts.

    Perfect channels (``UnitDisk`` and no fault model) shortcut every
    draw; callers that want zero overhead skip the state entirely via
    ``Scenario.is_lossy``.
    """

    def __init__(
        self,
        graph: WasnGraph,
        radius: float,
        model: CommunicationModel,
        faults: LinkFaultModel | None = None,
        seed: int = 0,
        max_retransmits: int = 3,
    ) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        if max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        self.graph = graph
        self.radius = radius
        self.model = model
        self.faults = faults
        self.seed = seed
        self.max_retransmits = max_retransmits
        self._link_delivery: dict[tuple[NodeId, NodeId], float] = {}
        self._dead_links: frozenset[tuple[NodeId, NodeId]] | None = None

    @property
    def is_perfect(self) -> bool:
        return self.model.is_perfect and self.faults is None

    # -- seeded draws (all pure functions of seed + index) ---------------

    def link_unit(self, salt: int, a: NodeId, b: NodeId, *extra: int) -> float:
        """Uniform draw attached to the *undirected* link ``{a, b}``."""
        lo, hi = (a, b) if a <= b else (b, a)
        return _unit(self.seed, salt, lo, hi, *extra)

    def node_phase(self, node: NodeId, period: int) -> int:
        """Seeded phase offset of one node in ``[0, period)``."""
        return _mix(self.seed, _SALT_PHASE, node) % period

    def link_delivery(self, a: NodeId, b: NodeId) -> float:
        """Per-attempt delivery probability of edge ``{a, b}`` (cached)."""
        key = (a, b) if a <= b else (b, a)
        cached = self._link_delivery.get(key)
        if cached is None:
            noise = _standard_normal(self.seed, _SALT_NOISE, *key)
            cached = self.model.link_delivery(
                self.graph.distance(a, b), self.radius, noise
            )
            cached = min(1.0, max(0.0, cached))
            self._link_delivery[key] = cached
        return cached

    def link_is_dead(self, a: NodeId, b: NodeId, count: int) -> bool:
        """Whether ``{a, b}`` is one of the ``count`` seeded dead links."""
        if self._dead_links is None:
            edges = [
                (u, v)
                for u in self.graph.node_ids
                for v in sorted(self.graph.neighbors(u))
                if u < v
            ]
            # Order-free seeded selection: rank every edge by its own
            # indexed draw and kill the lowest `count` — no sampling
            # state, no dependence on edge enumeration order.
            edges.sort(
                key=lambda e: (_unit(self.seed, _SALT_DEAD, *e), e)
            )
            self._dead_links = frozenset(edges[:count])
        key = (a, b) if a <= b else (b, a)
        return key in self._dead_links

    # -- per-attempt outcome ---------------------------------------------

    def attempt_succeeds(
        self, sender: NodeId, receiver: NodeId, slot: int
    ) -> bool:
        """Outcome of one transmission attempt at channel slot ``slot``.

        A pure function of ``(seed, sender, receiver, slot)`` — the
        shared-world property: any scheme (or backend) attempting the
        same directed link at the same slot sees the same outcome.
        """
        if self.faults is not None and not self.faults.attempt_allowed(
            self, sender, receiver, slot
        ):
            return False
        p = self.link_delivery(sender, receiver)
        if p >= 1.0:
            return True
        if p <= 0.0:
            return False
        return _unit(self.seed, _SALT_ATTEMPT, sender, receiver, slot) < p

    # -- routed packets ---------------------------------------------------

    def transmit_route(
        self,
        path: Sequence[NodeId],
        delivered: bool = True,
        max_retransmits: int | None = None,
    ) -> Transmission:
        """Send one routed packet along ``path`` with stop-and-wait ARQ.

        Each hop retries until an attempt succeeds or the budget
        (``max_retransmits`` extra tries per hop) is spent; the slot
        counter advances per attempt, so duty cycles and intermittent
        links see the packet's real timeline.  ``delivered`` is the
        routing layer's verdict — a routing failure (TTL, perimeter
        loop) stays undelivered even over a perfect channel.
        """
        budget = (
            self.max_retransmits
            if max_retransmits is None
            else max_retransmits
        )
        attempts_per_hop: list[int] = []
        slot = 0
        for index, (a, b) in enumerate(zip(path, path[1:])):
            tries = 0
            crossed = False
            while tries <= budget:
                tries += 1
                ok = self.attempt_succeeds(a, b, slot)
                slot += 1
                if ok:
                    crossed = True
                    break
            attempts_per_hop.append(tries)
            if not crossed:
                return Transmission(
                    delivered=False,
                    attempts_per_hop=tuple(attempts_per_hop),
                    dropped_at=index,
                )
        return Transmission(
            delivered=bool(delivered),
            attempts_per_hop=tuple(attempts_per_hop),
        )

    def with_energy(self, transmission: Transmission, energy: float):
        """The same record carrying its radio-energy figure."""
        return replace(transmission, energy=energy)

    # -- protocol broadcasts ----------------------------------------------

    def broadcast_delivered(
        self, sender: NodeId, receiver: NodeId, round_index: int
    ) -> bool:
        """Whether one local broadcast reaches one neighbour.

        The protocol engine's reception draw: directed (each listener
        fades independently) and slotted by the round number, so a
        protocol run is as deterministic as a routing one.
        """
        return self.attempt_succeeds(sender, receiver, round_index)

    def __repr__(self) -> str:
        return (
            f"ChannelState({type(self.model).__name__}, "
            f"faults={type(self.faults).__name__ if self.faults else None}, "
            f"seed={self.seed})"
        )
