"""The WASN unit-disk graph ``G = (V, E)``.

"With the assumption that all the sensors have the same communication
range, a WASN can be represented by a simple undirected graph
G = (V, E) ... each [edge] indicates two nodes are within the
communication range of each other.  N(u) denotes the set of neighboring
nodes of node u." (Section 3.)

:class:`WasnGraph` is the shared, read-mostly structure every layer
above builds on: safety labeling iterates over ``N(u)``, routers query
neighbourhoods and positions, protocols enumerate links.  It is
deliberately immutable after construction — failure injection and
mobility produce *new* graphs (see :mod:`repro.network.failures`), so a
routing run can never observe a half-updated topology.

Since the columnar refactor the graph is a thin id ↔ index *view*
over a :class:`~repro.network.core.TopologyCore`: the core owns the
flat position columns, CSR adjacency and planarization masks; the
view serves the object-shaped API (``Node``, ``Point``, per-node
neighbour tuples) the algorithm layers read.  Either side is built
lazily from the other — a graph constructed from explicit dicts only
pays for the columns when something columnar (the batched routing
executor, a planarization) first asks, and a graph built by
:func:`build_unit_disk_graph` only materialises ``Node`` objects when
the object API is first touched.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.geometry import Point
from repro.network.core import TopologyCore, build_core
from repro.network.node import Node, NodeId

__all__ = ["WasnGraph", "build_unit_disk_graph"]


class WasnGraph:
    """Undirected unit-disk graph over a fixed set of sensor nodes."""

    def __init__(
        self,
        nodes: Sequence[Node],
        adjacency: dict[NodeId, tuple[NodeId, ...]],
        radius: float,
        validate: bool = True,
    ):
        """Build from explicit adjacency (see :func:`build_unit_disk_graph`).

        ``adjacency`` must be symmetric and must not contain self-loops;
        this is validated eagerly because every algorithm above relies
        on it (the paper's graph is *simple* and *undirected*).

        ``validate=False`` skips that O(E) sweep.  It exists for one
        producer: :class:`repro.network.dynamic.DynamicTopology`
        snapshots, whose adjacency is symmetric by construction and
        whose equivalence to a validated from-scratch build is pinned
        by the differential suite — per-snapshot validation would cost
        more than the incremental update it accompanies.
        """
        if radius <= 0:
            raise ValueError("communication radius must be positive")
        self._nodes: dict[NodeId, Node] = {}
        for node in nodes:
            if node.id in self._nodes:
                raise ValueError(f"duplicate node id {node.id}")
            self._nodes[node.id] = node
        self._radius = radius
        self._adjacency = adjacency
        self._core: TopologyCore | None = None
        if validate:
            self._validate()

    @classmethod
    def from_core(cls, core: TopologyCore) -> "WasnGraph":
        """The id-view over an already-built columnar core.

        No validation: a core's CSR is symmetric and self-loop-free by
        construction.  ``Node``/adjacency dicts materialise lazily on
        first touch of the object API.
        """
        graph = cls.__new__(cls)
        graph._radius = core.radius
        graph._core = core
        # _nodes / _adjacency intentionally absent: __getattr__ builds
        # them from the core when the object API is first used.
        return graph

    def __getattr__(self, name: str):
        # Only the two view dicts are lazy; anything else missing is a
        # genuine error (and pickling probes must fall through).
        if name in ("_nodes", "_adjacency"):
            self._materialise_view()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _materialise_view(self) -> None:
        core = self._core
        ids = core.ids
        xs = core.xs
        ys = core.ys
        flags = core.edge_flags
        self._nodes = {
            u: Node(u, Point(xs[i], ys[i]), flags[i])
            for i, u in enumerate(ids)
        }
        # The adjacency dict shares the core's row tuples outright —
        # one materialisation serves both representations.
        self._adjacency = dict(zip(ids, core.rows()))

    @property
    def core(self) -> TopologyCore:
        """The columnar core behind this graph (built lazily).

        Requires every adjacency row to be sorted ascending — true for
        every graph this package constructs; hand-built graphs with
        unordered rows cannot take the columnar fast paths (the
        batched executor falls back to sequential routing for them).
        """
        if self._core is None:
            ids = sorted(self._nodes)
            # Producers whose rows are sorted by construction (dynamic
            # snapshots) set _sorted_rows to skip the ordering sweep.
            trusted = getattr(self, "_sorted_rows", False)
            rows = []
            for u in ids:
                row = tuple(self._adjacency[u])
                if not trusted and any(
                    row[i] >= row[i + 1] for i in range(len(row) - 1)
                ):
                    raise ValueError(
                        f"adjacency row of node {u} is not sorted "
                        "ascending; no columnar core for this graph"
                    )
                rows.append(row)
            self._core = TopologyCore.from_rows(
                ids,
                {u: self._nodes[u].position for u in ids},
                self._radius,
                rows,
                edge_ids=(
                    u for u in ids if self._nodes[u].is_edge
                ),
            )
        return self._core

    def _validate(self) -> None:
        for u, neighbors in self._adjacency.items():
            if u not in self._nodes:
                raise ValueError(f"adjacency references unknown node {u}")
            seen: set[NodeId] = set()
            for v in neighbors:
                if v == u:
                    raise ValueError(f"self-loop at node {u}")
                if v in seen:
                    raise ValueError(f"duplicate edge {u}-{v}")
                seen.add(v)
                if v not in self._nodes:
                    raise ValueError(f"edge {u}-{v} references unknown node")
                if u not in self._adjacency.get(v, ()):
                    raise ValueError(f"asymmetric edge {u}-{v}")
        for u in self._nodes:
            if u not in self._adjacency:
                raise ValueError(f"node {u} missing from adjacency")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def radius(self) -> float:
        """The common communication range of all sensors."""
        return self._radius

    def __len__(self) -> int:
        core = self._core
        return len(core) if core is not None else len(self._nodes)

    def __contains__(self, node_id: NodeId) -> bool:
        core = self._core
        if core is not None:
            return node_id in core
        return node_id in self._nodes

    @property
    def node_ids(self) -> list[NodeId]:
        """All node ids in ascending order (deterministic iteration)."""
        core = self._core
        if core is not None:
            return list(core.ids)
        return sorted(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """Nodes in ascending id order."""
        for node_id in self.node_ids:
            yield self._nodes[node_id]

    def node(self, node_id: NodeId) -> Node:
        return self._nodes[node_id]

    def position(self, node_id: NodeId) -> Point:
        """``L(u)`` — the location of node ``u``."""
        return self._nodes[node_id].position

    def is_edge_node(self, node_id: NodeId) -> bool:
        """True when ``u`` lies on the edge of the network (the hull)."""
        return self._nodes[node_id].is_edge

    def neighbors(self, node_id: NodeId) -> tuple[NodeId, ...]:
        """``N(u)`` — ids of nodes within communication range of ``u``."""
        return self._adjacency[node_id]

    def degree(self, node_id: NodeId) -> int:
        return len(self._adjacency[node_id])

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self._adjacency.get(u, ())

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Each undirected edge once, as (smaller id, larger id)."""
        for u in self.node_ids:
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def edge_count(self) -> int:
        core = self._core
        if core is not None:
            return core.edge_count()
        return sum(len(n) for n in self._adjacency.values()) // 2

    def average_degree(self) -> float:
        if not len(self):
            return 0.0
        return 2.0 * self.edge_count() / len(self)

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Euclidean distance ``|L(u) - L(v)|``."""
        return self.position(u).distance_to(self.position(v))

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def connected_components(self) -> list[set[NodeId]]:
        """Connected components, largest first (ties by smallest member)."""
        unseen = set(self.node_ids)
        components: list[set[NodeId]] = []
        while unseen:
            start = min(unseen)
            component = {start}
            frontier = [start]
            unseen.discard(start)
            while frontier:
                u = frontier.pop()
                for v in self._adjacency[u]:
                    if v in unseen:
                        unseen.discard(v)
                        component.add(v)
                        frontier.append(v)
            components.append(component)
        components.sort(key=lambda c: (-len(c), min(c)))
        return components

    def is_connected(self) -> bool:
        return len(self) <= 1 or len(self.connected_components()) == 1

    def same_component(self, u: NodeId, v: NodeId) -> bool:
        """BFS reachability test between two nodes."""
        if u == v:
            return True
        seen = {u}
        frontier = [u]
        while frontier:
            w = frontier.pop()
            for x in self._adjacency[w]:
                if x == v:
                    return True
                if x not in seen:
                    seen.add(x)
                    frontier.append(x)
        return False

    def hop_distance(self, u: NodeId, v: NodeId) -> int | None:
        """Minimum hop count between two nodes, or None if disconnected."""
        if u == v:
            return 0
        dist = {u: 0}
        frontier = [u]
        while frontier:
            next_frontier: list[NodeId] = []
            for w in frontier:
                for x in self._adjacency[w]:
                    if x in dist:
                        continue
                    dist[x] = dist[w] + 1
                    if x == v:
                        return dist[x]
                    next_frontier.append(x)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def without_nodes(self, removed: Iterable[NodeId]) -> "WasnGraph":
        """A new graph with the given nodes (and incident edges) removed.

        This is the substrate for failure injection: "node failures,
        signal fading, ... power exhaustion" (Section 1) all manifest as
        node removals that may create fresh local minima.
        """
        removed_set = set(removed)
        nodes = [n for n in self.nodes() if n.id not in removed_set]
        adjacency = {
            n.id: tuple(
                v for v in self._adjacency[n.id] if v not in removed_set
            )
            for n in nodes
        }
        return WasnGraph(nodes, adjacency, self._radius)

    def with_edge_nodes(self, edge_ids: Iterable[NodeId]) -> "WasnGraph":
        """A new graph with the edge-node flags replaced by ``edge_ids``.

        Shares the underlying structure (and, when present, the core's
        planarization caches): flags never change the edge set, so the
        structural work is never repeated.
        """
        edge_set = set(edge_ids)
        if self._core is not None:
            return WasnGraph.from_core(self._core.with_edge_flags(edge_set))
        nodes = [
            node.with_edge_flag(node.id in edge_set) for node in self.nodes()
        ]
        return WasnGraph(
            nodes, dict(self._adjacency), self._radius, validate=False
        )

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (analysis / oracle layer).

        Node attribute ``pos`` carries the location tuple; edge
        attribute ``weight`` the Euclidean length, so networkx shortest
        paths can serve as the geometric stretch oracle.
        """
        import networkx as nx

        g = nx.Graph()
        for node in self.nodes():
            g.add_node(node.id, pos=node.position.as_tuple(), is_edge=node.is_edge)
        for u, v in self.edges():
            g.add_edge(u, v, weight=self.distance(u, v))
        return g


def build_unit_disk_graph(
    positions: Sequence[Point],
    radius: float,
    edge_ids: Iterable[NodeId] = (),
    backend: str = "auto",
) -> WasnGraph:
    """Construct the unit-disk graph over ``positions``.

    Node ``i`` takes id ``i``; two nodes are adjacent iff their distance
    is at most ``radius`` (closed ball).  ``edge_ids`` marks nodes on
    the network edge (see :class:`repro.network.edges.EdgeDetector`).

    The build goes straight into the columnar core (one bulk spatial
    pass, no intermediate ``Point``/dict churn); the returned graph is
    the lazy object view over it, bit-identical to the historical
    dict-pipeline product.

    ``backend`` (``"auto"`` | ``"scalar"`` | ``"numpy"``) picks the
    construction implementation — see
    :func:`repro.network.core.build_core`.  ``"auto"`` vectorizes when
    numpy is importable and degrades silently otherwise; the result is
    bit-identical either way.
    """
    return WasnGraph.from_core(
        build_core(positions, radius, edge_ids, backend=backend)
    )
