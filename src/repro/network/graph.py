"""The WASN unit-disk graph ``G = (V, E)``.

"With the assumption that all the sensors have the same communication
range, a WASN can be represented by a simple undirected graph
G = (V, E) ... each [edge] indicates two nodes are within the
communication range of each other.  N(u) denotes the set of neighboring
nodes of node u." (Section 3.)

:class:`WasnGraph` is the shared, read-mostly structure every layer
above builds on: safety labeling iterates over ``N(u)``, routers query
neighbourhoods and positions, protocols enumerate links.  It is
deliberately immutable after construction — failure injection and
mobility produce *new* graphs (see :mod:`repro.network.failures`), so a
routing run can never observe a half-updated topology.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.geometry import Point
from repro.network.node import Node, NodeId
from repro.network.spatial import SpatialGrid

__all__ = ["WasnGraph", "build_unit_disk_graph"]


class WasnGraph:
    """Undirected unit-disk graph over a fixed set of sensor nodes."""

    def __init__(
        self,
        nodes: Sequence[Node],
        adjacency: dict[NodeId, tuple[NodeId, ...]],
        radius: float,
        validate: bool = True,
    ):
        """Build from explicit adjacency (see :func:`build_unit_disk_graph`).

        ``adjacency`` must be symmetric and must not contain self-loops;
        this is validated eagerly because every algorithm above relies
        on it (the paper's graph is *simple* and *undirected*).

        ``validate=False`` skips that O(E) sweep.  It exists for one
        producer: :class:`repro.network.dynamic.DynamicTopology`
        snapshots, whose adjacency is symmetric by construction and
        whose equivalence to a validated from-scratch build is pinned
        by the differential suite — per-snapshot validation would cost
        more than the incremental update it accompanies.
        """
        if radius <= 0:
            raise ValueError("communication radius must be positive")
        self._nodes: dict[NodeId, Node] = {}
        for node in nodes:
            if node.id in self._nodes:
                raise ValueError(f"duplicate node id {node.id}")
            self._nodes[node.id] = node
        self._radius = radius
        self._adjacency = adjacency
        if validate:
            self._validate()

    def _validate(self) -> None:
        for u, neighbors in self._adjacency.items():
            if u not in self._nodes:
                raise ValueError(f"adjacency references unknown node {u}")
            seen: set[NodeId] = set()
            for v in neighbors:
                if v == u:
                    raise ValueError(f"self-loop at node {u}")
                if v in seen:
                    raise ValueError(f"duplicate edge {u}-{v}")
                seen.add(v)
                if v not in self._nodes:
                    raise ValueError(f"edge {u}-{v} references unknown node")
                if u not in self._adjacency.get(v, ()):
                    raise ValueError(f"asymmetric edge {u}-{v}")
        for u in self._nodes:
            if u not in self._adjacency:
                raise ValueError(f"node {u} missing from adjacency")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def radius(self) -> float:
        """The common communication range of all sensors."""
        return self._radius

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> list[NodeId]:
        """All node ids in ascending order (deterministic iteration)."""
        return sorted(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """Nodes in ascending id order."""
        for node_id in self.node_ids:
            yield self._nodes[node_id]

    def node(self, node_id: NodeId) -> Node:
        return self._nodes[node_id]

    def position(self, node_id: NodeId) -> Point:
        """``L(u)`` — the location of node ``u``."""
        return self._nodes[node_id].position

    def is_edge_node(self, node_id: NodeId) -> bool:
        """True when ``u`` lies on the edge of the network (the hull)."""
        return self._nodes[node_id].is_edge

    def neighbors(self, node_id: NodeId) -> tuple[NodeId, ...]:
        """``N(u)`` — ids of nodes within communication range of ``u``."""
        return self._adjacency[node_id]

    def degree(self, node_id: NodeId) -> int:
        return len(self._adjacency[node_id])

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self._adjacency.get(u, ())

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Each undirected edge once, as (smaller id, larger id)."""
        for u in self.node_ids:
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def edge_count(self) -> int:
        return sum(len(n) for n in self._adjacency.values()) // 2

    def average_degree(self) -> float:
        if not self._nodes:
            return 0.0
        return 2.0 * self.edge_count() / len(self._nodes)

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Euclidean distance ``|L(u) - L(v)|``."""
        return self.position(u).distance_to(self.position(v))

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def connected_components(self) -> list[set[NodeId]]:
        """Connected components, largest first (ties by smallest member)."""
        unseen = set(self._nodes)
        components: list[set[NodeId]] = []
        while unseen:
            start = min(unseen)
            component = {start}
            frontier = [start]
            unseen.discard(start)
            while frontier:
                u = frontier.pop()
                for v in self._adjacency[u]:
                    if v in unseen:
                        unseen.discard(v)
                        component.add(v)
                        frontier.append(v)
            components.append(component)
        components.sort(key=lambda c: (-len(c), min(c)))
        return components

    def is_connected(self) -> bool:
        return len(self._nodes) <= 1 or len(self.connected_components()) == 1

    def same_component(self, u: NodeId, v: NodeId) -> bool:
        """BFS reachability test between two nodes."""
        if u == v:
            return True
        seen = {u}
        frontier = [u]
        while frontier:
            w = frontier.pop()
            for x in self._adjacency[w]:
                if x == v:
                    return True
                if x not in seen:
                    seen.add(x)
                    frontier.append(x)
        return False

    def hop_distance(self, u: NodeId, v: NodeId) -> int | None:
        """Minimum hop count between two nodes, or None if disconnected."""
        if u == v:
            return 0
        dist = {u: 0}
        frontier = [u]
        while frontier:
            next_frontier: list[NodeId] = []
            for w in frontier:
                for x in self._adjacency[w]:
                    if x in dist:
                        continue
                    dist[x] = dist[w] + 1
                    if x == v:
                        return dist[x]
                    next_frontier.append(x)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def without_nodes(self, removed: Iterable[NodeId]) -> "WasnGraph":
        """A new graph with the given nodes (and incident edges) removed.

        This is the substrate for failure injection: "node failures,
        signal fading, ... power exhaustion" (Section 1) all manifest as
        node removals that may create fresh local minima.
        """
        removed_set = set(removed)
        nodes = [n for n in self.nodes() if n.id not in removed_set]
        adjacency = {
            n.id: tuple(
                v for v in self._adjacency[n.id] if v not in removed_set
            )
            for n in nodes
        }
        return WasnGraph(nodes, adjacency, self._radius)

    def with_edge_nodes(self, edge_ids: Iterable[NodeId]) -> "WasnGraph":
        """A new graph with the edge-node flags replaced by ``edge_ids``."""
        edge_set = set(edge_ids)
        nodes = [
            node.with_edge_flag(node.id in edge_set) for node in self.nodes()
        ]
        return WasnGraph(nodes, dict(self._adjacency), self._radius)

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (analysis / oracle layer).

        Node attribute ``pos`` carries the location tuple; edge
        attribute ``weight`` the Euclidean length, so networkx shortest
        paths can serve as the geometric stretch oracle.
        """
        import networkx as nx

        g = nx.Graph()
        for node in self.nodes():
            g.add_node(node.id, pos=node.position.as_tuple(), is_edge=node.is_edge)
        for u, v in self.edges():
            g.add_edge(u, v, weight=self.distance(u, v))
        return g


def build_unit_disk_graph(
    positions: Sequence[Point],
    radius: float,
    edge_ids: Iterable[NodeId] = (),
) -> WasnGraph:
    """Construct the unit-disk graph over ``positions``.

    Node ``i`` takes id ``i``; two nodes are adjacent iff their distance
    is at most ``radius`` (closed ball).  ``edge_ids`` marks nodes on
    the network edge (see :class:`repro.network.edges.EdgeDetector`).
    """
    if radius <= 0:
        raise ValueError("communication radius must be positive")
    grid = SpatialGrid(cell_size=radius)
    grid.bulk_insert(enumerate(positions))

    neighbor_sets: dict[NodeId, list[NodeId]] = {i: [] for i in range(len(positions))}
    for a, b in grid.all_pairs_within(radius):
        neighbor_sets[a].append(b)
        neighbor_sets[b].append(a)

    edge_set = set(edge_ids)
    nodes = [
        Node(i, p, is_edge=i in edge_set) for i, p in enumerate(positions)
    ]
    adjacency = {
        i: tuple(sorted(neighbor_sets[i])) for i in range(len(positions))
    }
    return WasnGraph(nodes, adjacency, radius)
