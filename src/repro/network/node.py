"""Sensor node identity and static attributes.

A node in the paper carries only an identifier and a location
``L(u) = (x_u, y_u)``; every protocol-level attribute (safety tuple,
shape information, boundary flags) is *derived* state that lives in the
model layers, keeping ``Node`` itself a plain immutable record that can
be freely shared between graphs, packets and protocol engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point

__all__ = ["Node", "NodeId"]

# Node identifiers are dense small integers: deployments assign them in
# placement order so they double as array indices everywhere.
NodeId = int


@dataclass(frozen=True, slots=True)
class Node:
    """A sensor node: identifier plus fixed location.

    ``is_edge`` marks nodes on the edge of the network (the hull of the
    interest area).  Section 3: "each edge node will always keep its
    status tuple as (1, 1, 1, 1)" — the labeling process needs this flag
    and it is a static property of the deployment, so it lives here.
    """

    id: NodeId
    position: Point
    is_edge: bool = False

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance ``|L(self) - L(other)|``."""
        return self.position.distance_to(other.position)

    def with_edge_flag(self, is_edge: bool) -> "Node":
        """Copy of this node with the edge flag replaced."""
        return Node(self.id, self.position, is_edge)
