"""WASN network substrate: nodes, unit-disk graphs, deployments.

Section 3 of the paper models a WASN as a simple undirected graph
``G = (V, E)`` where an edge connects every pair of nodes within a
common communication range (a *unit-disk graph*), and Section 5
evaluates on two deployment models:

* **IA** — nodes placed uniformly at random in the interest area, so
  holes arise only from sparse placement;
* **FA** — uniform placement with randomly generated *forbidden areas*
  (possibly irregular obstacles) where no node may lie, producing the
  large routing holes that stress the perimeter phases.

This subpackage builds those networks and the auxiliary structure the
routing layers require: spatial indexing for O(1)-neighbourhood
construction, edge-node detection (the hull of the interest area),
Gabriel/RNG planarization for face routing, and failure injection for
the dynamic-hole scenarios the introduction motivates.
"""

from repro.network.channel import (
    ChannelState,
    CommunicationModel,
    DeadLinks,
    DutyCycle,
    IntermittentLinks,
    LinkFaultModel,
    LogNormalShadowing,
    Transmission,
    UnitDisk,
    channel_seed,
)
from repro.network.core import TopologyCore, build_core
from repro.network.deployment import (
    DeploymentResult,
    GridDeployment,
    PoissonDiskDeployment,
    UniformDeployment,
    deploy_forbidden_area_model,
    deploy_uniform_model,
)
from repro.network.dynamic import DynamicTopology, TopologyDelta
from repro.network.edges import EdgeDetector
from repro.network.failures import (
    fail_nodes,
    fail_nodes_dynamic,
    fail_random,
    fail_random_dynamic,
    fail_region,
    fail_region_dynamic,
    restore_nodes,
)
from repro.network.graph import WasnGraph, build_unit_disk_graph
from repro.network.mobility import RandomWaypointMobility
from repro.network.node import Node, NodeId
from repro.network.obstacles import (
    CompositeObstacle,
    DiscObstacle,
    Obstacle,
    RectObstacle,
    random_obstacle_field,
)
from repro.network.planar import gabriel_graph, relative_neighborhood_graph
from repro.network.spatial import SpatialGrid

__all__ = [
    "ChannelState",
    "CommunicationModel",
    "CompositeObstacle",
    "DeadLinks",
    "DeploymentResult",
    "DiscObstacle",
    "DutyCycle",
    "DynamicTopology",
    "EdgeDetector",
    "GridDeployment",
    "IntermittentLinks",
    "LinkFaultModel",
    "LogNormalShadowing",
    "Node",
    "NodeId",
    "Obstacle",
    "PoissonDiskDeployment",
    "RandomWaypointMobility",
    "RectObstacle",
    "SpatialGrid",
    "TopologyCore",
    "TopologyDelta",
    "Transmission",
    "UniformDeployment",
    "UnitDisk",
    "WasnGraph",
    "build_core",
    "build_unit_disk_graph",
    "channel_seed",
    "deploy_forbidden_area_model",
    "deploy_uniform_model",
    "fail_nodes",
    "fail_nodes_dynamic",
    "fail_random",
    "fail_random_dynamic",
    "fail_region",
    "fail_region_dynamic",
    "gabriel_graph",
    "random_obstacle_field",
    "relative_neighborhood_graph",
    "restore_nodes",
]
