"""Forbidden-area obstacles for the FA deployment model.

Section 5: "we randomly set some forbidden areas inside [the] interest
area, where no nodes can be deployed.  The forbidden areas, which may
be irregular, are constructed to study the impact of larger holes."

The paper does not publish its obstacle generator, so this module
provides a parameterised family that preserves the relevant behaviour
(large, possibly irregular deployment holes):

* :class:`RectObstacle` — axis-aligned rectangle;
* :class:`DiscObstacle` — circular hole;
* :class:`CompositeObstacle` — union of obstacles, used to build the
  irregular L/T/U shapes the paper alludes to;
* :func:`random_obstacle_field` — a seeded random mixture of the above.

The substitution is documented in DESIGN.md ("Substitutions").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.geometry import Point, Rect

__all__ = [
    "CompositeObstacle",
    "DiscObstacle",
    "Obstacle",
    "RectObstacle",
    "random_obstacle_field",
]


@runtime_checkable
class Obstacle(Protocol):
    """Anything that can veto a deployment position."""

    def contains(self, p: Point) -> bool:
        """True when ``p`` lies inside the forbidden area."""
        ...

    def bounding_rect(self) -> Rect:
        """Axis-aligned bounding rectangle (for area accounting)."""
        ...


@dataclass(frozen=True, slots=True)
class RectObstacle:
    """Axis-aligned rectangular forbidden area."""

    rect: Rect

    def contains(self, p: Point) -> bool:
        return self.rect.contains(p)

    def bounding_rect(self) -> Rect:
        return self.rect


@dataclass(frozen=True, slots=True)
class DiscObstacle:
    """Circular forbidden area."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("obstacle radius must be positive")

    def contains(self, p: Point) -> bool:
        return self.center.distance_squared_to(p) <= self.radius * self.radius

    def bounding_rect(self) -> Rect:
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )


class CompositeObstacle:
    """Union of obstacles — builds the paper's "irregular" holes.

    An L-shape, for example, is the union of two overlapping
    rectangles; a blob is a chain of overlapping discs.
    """

    def __init__(self, parts: Sequence[Obstacle]):
        if not parts:
            raise ValueError("composite obstacle needs at least one part")
        self._parts = tuple(parts)

    @property
    def parts(self) -> tuple[Obstacle, ...]:
        """The member obstacles of the union."""
        return self._parts

    def contains(self, p: Point) -> bool:
        return any(part.contains(p) for part in self._parts)

    def bounding_rect(self) -> Rect:
        bounds = self._parts[0].bounding_rect()
        for part in self._parts[1:]:
            bounds = bounds.union_bounds(part.bounding_rect())
        return bounds


def _random_rect_obstacle(
    rng: random.Random, area: Rect, min_size: float, max_size: float
) -> RectObstacle:
    w = rng.uniform(min_size, max_size)
    h = rng.uniform(min_size, max_size)
    x = rng.uniform(area.x_min, max(area.x_min, area.x_max - w))
    y = rng.uniform(area.y_min, max(area.y_min, area.y_max - h))
    return RectObstacle(Rect(x, y, min(x + w, area.x_max), min(y + h, area.y_max)))


def _random_disc_obstacle(
    rng: random.Random, area: Rect, min_size: float, max_size: float
) -> DiscObstacle:
    r = rng.uniform(min_size, max_size) / 2.0
    cx = rng.uniform(area.x_min + r, max(area.x_min + r, area.x_max - r))
    cy = rng.uniform(area.y_min + r, max(area.y_min + r, area.y_max - r))
    return DiscObstacle(Point(cx, cy), r)


def _random_l_shape(
    rng: random.Random, area: Rect, min_size: float, max_size: float
) -> CompositeObstacle:
    """Two overlapping rectangles sharing a corner region."""
    base = _random_rect_obstacle(rng, area, min_size, max_size).rect
    # The second arm hangs off one corner of the base.
    w = rng.uniform(min_size, max_size)
    h = rng.uniform(min_size / 2.0, max_size / 2.0)
    if rng.random() < 0.5:
        arm = Rect(
            base.x_min,
            max(area.y_min, base.y_min - h),
            min(base.x_min + w, area.x_max),
            base.y_min,
        )
    else:
        arm = Rect(
            base.x_max,
            base.y_min,
            min(base.x_max + w, area.x_max),
            min(base.y_min + h, area.y_max),
        )
    parts: list[Obstacle] = [RectObstacle(base)]
    if not arm.is_degenerate():
        parts.append(RectObstacle(arm))
    return CompositeObstacle(parts)


def random_obstacle_field(
    area: Rect,
    count: int,
    rng: random.Random,
    min_size: float = 20.0,
    max_size: float = 60.0,
    shapes: Sequence[str] = ("rect", "disc", "l"),
) -> list[Obstacle]:
    """A seeded random field of ``count`` forbidden areas inside ``area``.

    ``min_size``/``max_size`` bound the obstacle footprint edge (or
    diameter); the defaults of 20-60 m are 1-3 communication radii in
    the paper's 200 m x 200 m / r=20 m setting — large enough to create
    multi-hop detours, small enough to keep the network connected at the
    evaluated densities.
    """
    if count < 0:
        raise ValueError("obstacle count must be non-negative")
    if min_size <= 0 or max_size < min_size:
        raise ValueError("need 0 < min_size <= max_size")
    builders = {
        "rect": _random_rect_obstacle,
        "disc": _random_disc_obstacle,
        "l": _random_l_shape,
    }
    unknown = set(shapes) - set(builders)
    if unknown:
        raise ValueError(f"unknown obstacle shapes: {sorted(unknown)}")
    if not shapes:
        raise ValueError("shapes must not be empty")
    field: list[Obstacle] = []
    for _ in range(count):
        shape = rng.choice(list(shapes))
        field.append(builders[shape](rng, area, min_size, max_size))
    return field
