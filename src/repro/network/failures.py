"""Failure injection: the dynamic causes of local minima.

Section 1: "The occurrence of block can be caused by not only the
'deployment hole' ... but also many dynamic factors, including node
failures, signal fading, communication jamming, power exhaustion,
interference, and node mobility."

All of these manifest, at the graph level, as nodes disappearing from
the topology.  Two substrates are supported:

* the immutable :class:`~repro.network.graph.WasnGraph` — failures
  produce a *new* graph (``fail_nodes`` / ``fail_random`` /
  ``fail_region``), the historical API; the caller then re-runs the
  information-construction protocol on it;
* a live :class:`~repro.network.dynamic.DynamicTopology` — the
  ``*_dynamic`` variants take nodes down *in place*, touching only the
  incident edges and returning the
  :class:`~repro.network.dynamic.TopologyDelta`, which is what makes
  long failure/restoration schedules linear in event size instead of
  quadratic in event count.  ``restore_nodes`` is the inverse
  (a repaired or recharged node rejoining the network).

Both substrates select the same victims for the same inputs: the
region and random selectors iterate nodes in ascending id order, so a
schedule replayed against either produces identical surviving
topologies (the differential suite pins this through the session
layer).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.geometry import Point, Rect
from repro.network.dynamic import DynamicTopology, TopologyDelta
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = [
    "fail_nodes",
    "fail_nodes_dynamic",
    "fail_random",
    "fail_random_dynamic",
    "fail_region",
    "fail_region_dynamic",
    "restore_nodes",
]


def fail_nodes(graph: WasnGraph, failed: Iterable[NodeId]) -> WasnGraph:
    """Remove an explicit set of failed nodes."""
    failed = set(failed)
    missing = failed - set(graph.node_ids)
    if missing:
        raise KeyError(f"cannot fail unknown nodes: {sorted(missing)}")
    return graph.without_nodes(failed)


def _region_test(region: Rect | tuple[Point, float]) -> Callable[[Point], bool]:
    """The membership predicate of a rectangle or ``(center, radius)`` disc."""
    if isinstance(region, Rect):
        return region.contains
    center, radius = region
    if radius <= 0:
        raise ValueError("region radius must be positive")
    radius_sq = radius * radius

    def hit(p: Point) -> bool:
        return p.distance_squared_to(center) <= radius_sq

    return hit


def fail_random(
    graph: WasnGraph,
    fraction: float,
    rng: random.Random,
    protect: Iterable[NodeId] = (),
) -> tuple[WasnGraph, set[NodeId]]:
    """Fail a random fraction of nodes (power exhaustion model).

    ``protect`` shields specific nodes (e.g. an experiment's source and
    destination) from failing.  Returns the surviving graph and the set
    of failed ids.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    protected = set(protect)
    candidates = [u for u in graph.node_ids if u not in protected]
    count = round(fraction * len(candidates))
    failed = set(rng.sample(candidates, count)) if count else set()
    return graph.without_nodes(failed), failed


def fail_region(
    graph: WasnGraph,
    region: Rect | tuple[Point, float],
    protect: Iterable[NodeId] = (),
) -> tuple[WasnGraph, set[NodeId]]:
    """Fail every node inside a region (jamming / physical damage model).

    ``region`` is either a rectangle or a ``(center, radius)`` disc.
    Returns the surviving graph and the set of failed ids.
    """
    protected = set(protect)
    hit = _region_test(region)
    failed = {
        u
        for u in graph.node_ids
        if u not in protected and hit(graph.position(u))
    }
    return graph.without_nodes(failed), failed


# ---------------------------------------------------------------------------
# In-place variants over a live DynamicTopology.


def fail_nodes_dynamic(
    topology: DynamicTopology, failed: Iterable[NodeId]
) -> TopologyDelta:
    """Take an explicit set of nodes down, in place.

    Ids that are unknown — or already down, hence absent from the
    graph a schedule replay would see — raise the same ``KeyError``
    :func:`fail_nodes` raises for ids absent from its graph.
    """
    # Dedup (preserving order) exactly as fail_nodes' set() does: an
    # id listed twice is one failure, not a mid-batch KeyError.
    failed = list(dict.fromkeys(failed))
    missing = {
        u for u in failed if u not in topology or topology.is_down(u)
    }
    if missing:
        raise KeyError(f"cannot fail unknown nodes: {sorted(missing)}")
    return topology.fail_many(failed)


def fail_random_dynamic(
    topology: DynamicTopology,
    fraction: float,
    rng: random.Random,
    protect: Iterable[NodeId] = (),
) -> tuple[TopologyDelta, set[NodeId]]:
    """In-place :func:`fail_random`: same victims for the same ``rng``.

    The candidate pool is the alive nodes in ascending id order — the
    same sequence ``fail_random`` samples from — so a seeded schedule
    produces identical failures on either substrate.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    protected = set(protect)
    candidates = [u for u in topology.alive_ids if u not in protected]
    count = round(fraction * len(candidates))
    failed = set(rng.sample(candidates, count)) if count else set()
    return topology.fail_many(sorted(failed)), failed


def fail_region_dynamic(
    topology: DynamicTopology,
    region: Rect | tuple[Point, float],
    protect: Iterable[NodeId] = (),
) -> tuple[TopologyDelta, set[NodeId]]:
    """In-place :func:`fail_region` over the currently alive nodes."""
    protected = set(protect)
    hit = _region_test(region)
    failed = {
        u
        for u in topology.alive_ids
        if u not in protected and hit(topology.position(u))
    }
    return topology.fail_many(sorted(failed)), failed


def restore_nodes(
    topology: DynamicTopology, restored: Iterable[NodeId]
) -> TopologyDelta:
    """Bring failed nodes back up at their stored positions.

    The inverse of the ``fail_*`` operations: a repaired, recharged or
    un-jammed node rejoins the topology and its unit-disk edges
    reappear.  Restoring an alive or unknown id raises ``KeyError``.
    """
    return topology.restore_many(restored)
