"""Failure injection: the dynamic causes of local minima.

Section 1: "The occurrence of block can be caused by not only the
'deployment hole' ... but also many dynamic factors, including node
failures, signal fading, communication jamming, power exhaustion,
interference, and node mobility."

All of these manifest, at the graph level, as nodes disappearing from
the topology.  Because :class:`~repro.network.graph.WasnGraph` is
immutable, failures produce a *new* graph; the caller then re-runs the
information-construction protocol on it — exactly what a deployed WASN
would do when hello beacons stop arriving — and can compare safety
labels before/after (see ``examples/dynamic_failures.py``).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.geometry import Point, Rect
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["fail_nodes", "fail_random", "fail_region"]


def fail_nodes(graph: WasnGraph, failed: Iterable[NodeId]) -> WasnGraph:
    """Remove an explicit set of failed nodes."""
    failed = set(failed)
    missing = failed - set(graph.node_ids)
    if missing:
        raise KeyError(f"cannot fail unknown nodes: {sorted(missing)}")
    return graph.without_nodes(failed)


def fail_random(
    graph: WasnGraph,
    fraction: float,
    rng: random.Random,
    protect: Iterable[NodeId] = (),
) -> tuple[WasnGraph, set[NodeId]]:
    """Fail a random fraction of nodes (power exhaustion model).

    ``protect`` shields specific nodes (e.g. an experiment's source and
    destination) from failing.  Returns the surviving graph and the set
    of failed ids.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    protected = set(protect)
    candidates = [u for u in graph.node_ids if u not in protected]
    count = round(fraction * len(candidates))
    failed = set(rng.sample(candidates, count)) if count else set()
    return graph.without_nodes(failed), failed


def fail_region(
    graph: WasnGraph,
    region: Rect | tuple[Point, float],
    protect: Iterable[NodeId] = (),
) -> tuple[WasnGraph, set[NodeId]]:
    """Fail every node inside a region (jamming / physical damage model).

    ``region`` is either a rectangle or a ``(center, radius)`` disc.
    Returns the surviving graph and the set of failed ids.
    """
    protected = set(protect)
    if isinstance(region, Rect):
        def hit(p: Point) -> bool:
            return region.contains(p)
    else:
        center, radius = region
        if radius <= 0:
            raise ValueError("region radius must be positive")
        radius_sq = radius * radius

        def hit(p: Point) -> bool:
            return p.distance_squared_to(center) <= radius_sq

    failed = {
        u
        for u in graph.node_ids
        if u not in protected and hit(graph.position(u))
    }
    return graph.without_nodes(failed), failed
