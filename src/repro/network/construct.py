"""Vectorized (numpy) construction kernels for the columnar core.

PR 5/6 made *routing* run as array operations; this module is the
construction mirror.  Every kernel here computes exactly what one of
the scalar reference paths in :mod:`repro.network.core` /
:mod:`repro.core.safety` computes — the unit-disk neighbour pass, CSR
assembly, per-edge lengths, the Gabriel/RNG planarization masks, and
the quadrant classification behind the safety labeling — as bulk
numpy operations over the same float64 columns.

**The identity contract.**  The numpy backend is not "close"; it is
bit-identical, by the same two-part argument the vectorized routing
kernel (:mod:`repro.routing.batch`) uses:

* Elementwise IEEE-754 ``+ - * /`` are deterministic and numpy ufuncs
  evaluate them unfused, so every squared-distance / midpoint / bound
  expression here reproduces the scalar reference value *bit for bit*
  as long as the operation order matches — and each kernel copies the
  scalar operation order verbatim (the bodies cite their reference).
* Wherever a *comparison against a threshold* decides an edge
  (``d2 <= r2``, the ``_PLANAR_EPS`` witness tests), any operand
  within a relative 1-ulp band (``_BAND``) of the threshold is
  **defected**: the whole decision is re-made by the scalar reference
  expression on Python floats.  Clear verdicts outside the band are
  provably the scalar verdict already; banded ones are decided by the
  reference itself.  The sign tests of the quadrant kernel need no
  band at all — ``dx > 0`` has no rounding, and the ``dx == 0``
  boundary cases are enumerated exactly.

One deliberate non-vectorization: the per-edge *lengths* column stays
on ``math.hypot``.  ``np.hypot`` is a different correctly-rounded-ish
algorithm (both are accurate to <= 1 ulp, and they disagree on real
inputs), so the kernel vectorizes the coordinate gathers and
differences but applies ``math.hypot`` per element — identical to the
scalar column by construction.

numpy is optional.  :func:`resolve_backend` is the one gate (through
:mod:`repro._optional`, resolved at *call* time per its no-caching
rule): ``"auto"`` degrades silently to the scalar paths, ``"numpy"``
raises :class:`~repro._optional.MissingDependencyError` without it.
"""

from __future__ import annotations

import math
from array import array
from itertools import chain
from typing import Callable, Sequence

from repro._optional import load_numpy, require_numpy

__all__ = [
    "BACKENDS",
    "resolve_backend",
    "build_columns",
    "csr_from_rows",
    "lengths_from_csr",
    "masked_adjacency",
    "planar_mask",
    "quadrant_tables",
    "safety_labels",
    "unit_disk_pairs",
]

BACKENDS = ("auto", "scalar", "numpy")

# Relative half-width of the ambiguity band around every decision
# threshold — matches the defect band of the vectorized routing kernel
# (see ``_BAND_LO``/``_BAND_HI`` in repro.routing.batch).
_BAND = 1e-12


def resolve_backend(backend: str, feature: str):
    """The numpy module to use for ``backend``, or ``None`` for scalar.

    ``"scalar"`` always returns ``None``; ``"numpy"`` raises
    :class:`~repro._optional.MissingDependencyError` (naming
    ``feature``) when numpy is not importable; ``"auto"`` returns
    whatever :func:`repro._optional.load_numpy` finds — the silent
    degradation contract.  Unknown names raise ``ValueError`` eagerly,
    so a typo fails at the call site rather than silently running
    scalar forever.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; "
            "expected 'auto', 'scalar' or 'numpy'"
        )
    if backend == "scalar":
        return None
    if backend == "numpy":
        return require_numpy(feature)
    return load_numpy()


# -- unit-disk neighbour search -----------------------------------------


def _cell_cross(np, order, starts, counts, g, h):
    """All (a, b) index pairs between cell-groups ``g`` and ``h``.

    ``order``/``starts``/``counts`` describe the grid grouping (node
    indices sorted by cell key); ``g[t]``/``h[t]`` are matched group
    positions.  The ragged cross-join is flattened with the standard
    repeat/cumsum arithmetic — no Python loop.
    """
    cg = counts[g]
    ch = counts[h]
    per = cg * ch
    total = int(per.sum())
    empty = np.empty(0, dtype=np.int64)
    if not total:
        return empty, empty
    m = np.repeat(np.arange(g.shape[0]), per)
    base = np.zeros(per.shape[0], dtype=np.int64)
    np.cumsum(per[:-1], out=base[1:])
    t = np.arange(total, dtype=np.int64) - base[m]
    chm = ch[m]
    a = order[starts[g][m] + t // chm]
    b = order[starts[h][m] + t % chm]
    return a, b


def unit_disk_pairs(np, axs, ays, radius: float):
    """Index pairs (a, b) with ``|pos[a] - pos[b]| <= radius``, each once.

    The same grid-binned enumeration as the scalar :func:`build_core`
    (cell size = radius, same-cell pairs plus the lexicographically
    later half of the 3x3 neighbourhood), as array ops: cell keys via
    ``np.floor_divide`` (bit-identical to Python ``//`` on float64),
    a stable argsort to group nodes by cell, and ragged cross-joins
    per neighbouring cell pair.  The membership test is the scalar
    ``dx*dx + dy*dy <= r2`` with the :data:`_BAND` defect contract:
    pairs whose squared distance lands inside the band around ``r2``
    are re-decided by the same expression on Python floats.
    """
    n = axs.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if n < 2:
        return empty, empty
    cx = np.floor_divide(axs, radius).astype(np.int64)
    cy = np.floor_divide(ays, radius).astype(np.int64)
    cx -= cx.min()
    cy -= cy.min() - 1  # keep cy-1 >= 0 so offset keys stay injective
    stride = int(cy.max()) + 2
    keys = cx * stride + cy
    order = np.argsort(keys, kind="stable").astype(np.int64, copy=False)
    sorted_keys = keys[order]
    uniq, starts, counts = np.unique(
        sorted_keys, return_index=True, return_counts=True
    )
    starts = starts.astype(np.int64, copy=False)
    counts = counts.astype(np.int64, copy=False)

    a_parts = []
    b_parts = []
    # Pairs within the same cell: full cross-join of each multi-node
    # cell with itself, upper triangle only (each unordered pair once).
    dense_cells = np.nonzero(counts >= 2)[0]
    if dense_cells.shape[0]:
        a, b = _cell_cross(np, order, starts, counts, dense_cells, dense_cells)
        keep = a < b
        a_parts.append(a[keep])
        b_parts.append(b[keep])
    # Cross-cell pairs against the later half of the 3x3 neighbourhood
    # — the same four offsets the scalar sweep visits.
    for delta in (1, stride - 1, stride, stride + 1):
        pos = np.searchsorted(uniq, uniq + delta)
        found = np.nonzero(
            (pos < uniq.shape[0]) & (uniq[np.minimum(pos, uniq.shape[0] - 1)] == uniq + delta)
        )[0]
        if not found.shape[0]:
            continue
        a, b = _cell_cross(np, order, starts, counts, found, pos[found])
        a_parts.append(a)
        b_parts.append(b)
    if not a_parts:
        return empty, empty
    a = np.concatenate(a_parts)
    b = np.concatenate(b_parts)

    r2 = radius * radius
    dx = axs[a] - axs[b]
    dy = ays[a] - ays[b]
    d2 = dx * dx + dy * dy
    keep = d2 <= r2
    band = np.abs(d2 - r2) <= r2 * _BAND
    if band.any():
        # Defect contract: threshold-adjacent pairs are re-decided by
        # the scalar membership test on Python floats.
        xs_a = axs[a[band]].tolist()
        ys_a = ays[a[band]].tolist()
        xs_b = axs[b[band]].tolist()
        ys_b = ays[b[band]].tolist()
        verdicts = []
        for xa, ya, xb, yb in zip(xs_a, ys_a, xs_b, ys_b):
            ddx = xa - xb
            ddy = ya - yb
            verdicts.append(ddx * ddx + ddy * ddy <= r2)
        keep[band] = verdicts
    return a[keep], b[keep]


def _csr_from_pairs(np, n: int, a, b):
    """CSR (indptr, indices) int64 arrays from undirected index pairs.

    One argsort over the fused key ``src * n + dst`` (injective since
    ``dst < n``) replaces a two-pass lexsort.
    """
    src = np.concatenate((a, b))
    dst = np.concatenate((b, a))
    order = np.argsort(src * n + dst)
    dst = dst[order].astype(np.int64, copy=False)
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst


def build_columns(np, positions: Sequence, radius: float):
    """The full numpy unit-disk build.

    Returns ``(xs, ys, rows, indptr, indices)`` with ``xs``/``ys`` as
    ``array('d')``, ``rows`` as the per-node sorted neighbour-index
    tuples, and the CSR as ``array('q')`` — byte-identical to what the
    scalar :func:`repro.network.core.build_core` path stores, so the
    caller can install the CSR eagerly (it was free) instead of paying
    the lazy scalar assembly later.
    """
    n = len(positions)
    xs = array("d", bytes(8 * n))
    ys = array("d", bytes(8 * n))
    for i, p in enumerate(positions):
        xs[i] = p.x
        ys[i] = p.y
    axs = np.frombuffer(xs, dtype=np.float64)
    ays = np.frombuffer(ys, dtype=np.float64)
    a, b = unit_disk_pairs(np, axs, ays, radius)
    indptr, indices = _csr_from_pairs(np, n, a, b)
    ip = indptr.tolist()
    flat = indices.tolist()
    rows = tuple(tuple(flat[ip[i] : ip[i + 1]]) for i in range(n))
    indptr_arr = array("q")
    indptr_arr.frombytes(indptr.tobytes())
    indices_arr = array("q")
    indices_arr.frombytes(indices.tobytes())
    return xs, ys, rows, indptr_arr, indices_arr


# -- CSR assembly from adopted rows -------------------------------------


def csr_from_rows(np, ids: Sequence[int], rows: Sequence[tuple]):
    """CSR ``array('q')`` pair from per-node neighbour-*id* rows.

    The sparse-id counterpart of the scalar ``_build_csr`` dict loop:
    the id -> index translation runs as one ``np.searchsorted`` over
    the (ascending) id column instead of a dict lookup per edge.
    """
    n = len(ids)
    lens = np.fromiter(map(len, rows), dtype=np.int64, count=n)
    total = int(lens.sum())
    flat = np.fromiter(chain.from_iterable(rows), dtype=np.int64, count=total)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    ids_arr = np.asarray(ids, dtype=np.int64)
    idx = np.searchsorted(ids_arr, flat).astype(np.int64, copy=False)
    indptr_arr = array("q")
    indptr_arr.frombytes(indptr.tobytes())
    indices_arr = array("q")
    indices_arr.frombytes(idx.tobytes())
    return indptr_arr, indices_arr


# -- per-edge lengths ----------------------------------------------------


def lengths_from_csr(np, axs, ays, aindptr, aindices) -> array:
    """The lengths column, bit-identical to the scalar ``math.hypot`` loop.

    Gathers and differences are vectorized; the hypotenuse itself is
    ``math.hypot`` per element (C-level ``map``), because ``np.hypot``
    is *not* guaranteed bit-identical to it (see module docstring).
    """
    n = aindptr.shape[0] - 1
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(aindptr))
    dx = (axs[src] - axs[aindices]).tolist()
    dy = (ays[src] - ays[aindices]).tolist()
    return array("d", map(math.hypot, dx, dy))


# -- planarization masks -------------------------------------------------


def planar_mask(
    np,
    kind: str,
    axs,
    ays,
    aindptr,
    aindices,
    eps: float,
    scalar_edge: Callable[[int, int], bool],
) -> bytearray:
    """One planarization mask (``"gabriel"`` or ``"rng"``) as array ops.

    Replicates the scalar witness scans of
    ``TopologyCore._gabriel_mask`` / ``_rng_mask`` — same expressions,
    same operation order, same ``eps`` — evaluated per undirected edge
    one witness column at a time: with the edges sorted by row length
    descending, the edges owning a ``k``-th witness form a contiguous
    prefix, and that witness column is one CSR gather
    (``indices[indptr[u] + k]``) — no padded neighbour plane, and
    every temporary stays cache-sized.

    Defect contract: an edge whose verdict could hinge on a witness
    distance inside the :data:`_BAND` band around its bound — and that
    has no *clear* witness deciding it outright — is re-decided by
    ``scalar_edge(u, v)``, the per-edge scalar reference.
    """
    n = aindptr.shape[0] - 1
    m = aindices.shape[0]
    mask = bytearray(m)
    if not m:
        return mask
    deg = np.diff(aindptr)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    sel = aindices > src
    epos = np.nonzero(sel)[0]
    eu = src[epos]
    ev = aindices[epos]
    # Witness rows sorted longest-first: column k then concerns the
    # prefix of edges with deg[eu] > k, and prefix slices are
    # contiguous.  Stable for determinism of the (order-independent)
    # per-edge results.
    eorder = np.argsort(-deg[eu], kind="stable")
    epos = epos[eorder]
    eu = eu[eorder]
    ev = ev[eorder]
    e = epos.shape[0]

    xi = axs[eu]
    yi = ays[eu]
    xv = axs[ev]
    yv = ays[ev]
    if kind == "gabriel":
        # Same op order as _gabriel_mask: midpoint, half-diagonal,
        # closed-disc bound.
        px = (xi + xv) / 2.0
        py = (yi + yv) / 2.0
        dx = px - xi
        dy = py - yi
        bound = dx * dx + dy * dy + eps
        qx = qy = None
    else:
        # Same op order as _rng_mask: open-lune bound from |uv|^2.
        dx = xi - xv
        dy = yi - yv
        bound = dx * dx + dy * dy - eps
        px, py = xi, yi
        qx, qy = xv, yv

    max_deg = int(deg.max()) if n else 0
    # Row base of each edge's witness scan: the k-th witness of edge
    # (u, v) is indices[indptr[u] + k], valid exactly while k < deg[u]
    # — which the prefix slicing below guarantees.
    base = aindptr[eu]
    tol = np.abs(bound) * _BAND
    clear = np.zeros(e, dtype=bool)
    banded = np.zeros(e, dtype=bool)

    # Working (compacted) copies.  Every few columns the loop drops
    # edges that are already resolved: a *clear* witness is terminal —
    # ``kept`` and the defect test both ignore ``banded`` once
    # ``clear`` holds — and an exhausted row has no more witnesses.
    # Most edges find a witness among their first few neighbours, so
    # the working set collapses quickly.  ``c_idx is None`` means the
    # working set is still the identity.
    c_idx = None
    c_clear = clear
    c_banded = banded
    c_ev, c_px, c_py, c_bound, c_tol = ev, px, py, bound, tol
    c_qx, c_qy = qx, qy
    c_base = base
    c_degneg = -deg[eu]  # non-decreasing, thanks to the sort
    csize = e
    k = 0
    while k < max_deg and csize:
        # Edges with a k-th witness form a prefix of the working set.
        a = int(np.searchsorted(c_degneg, -k, side="left"))
        if not a:
            break
        w = aindices[c_base[:a] + k]
        gx = axs[w]
        gy = ays[w]
        valid = w != c_ev[:a]
        wx = gx - c_px[:a]
        wy = gy - c_py[:a]
        wd2 = wx * wx + wy * wy
        if kind == "gabriel":
            in_band = np.abs(wd2 - c_bound[:a]) <= c_tol[:a]
            c_clear[:a] |= valid & ~in_band & (wd2 <= c_bound[:a])
            c_banded[:a] |= valid & in_band
        else:
            vx = gx - c_qx[:a]
            vy = gy - c_qy[:a]
            vd2 = vx * vx + vy * vy
            band_u = np.abs(wd2 - c_bound[:a]) <= c_tol[:a]
            band_v = np.abs(vd2 - c_bound[:a]) <= c_tol[:a]
            hit_u = wd2 < c_bound[:a]
            hit_v = vd2 < c_bound[:a]
            c_clear[:a] |= valid & hit_u & ~band_u & hit_v & ~band_v
            c_banded[:a] |= (
                valid
                & (band_u | band_v)
                & (hit_u | band_u)
                & (hit_v | band_v)
            )
        k += 1
        if k % 8 == 0 and k < max_deg:
            if c_idx is not None:
                clear[c_idx] = c_clear
                banded[c_idx] = c_banded
            keep = ~c_clear & (c_degneg < -k)
            kept_n = int(keep.sum())
            if kept_n == csize:
                continue
            if c_idx is None:
                c_idx = np.nonzero(keep)[0]
            else:
                c_idx = c_idx[keep]
            c_clear = c_clear[keep]
            c_banded = c_banded[keep]
            c_ev = c_ev[keep]
            c_px = c_px[keep]
            c_py = c_py[keep]
            c_bound = c_bound[keep]
            c_tol = c_tol[keep]
            if kind != "gabriel":
                c_qx = c_qx[keep]
                c_qy = c_qy[keep]
            c_base = c_base[keep]
            c_degneg = c_degneg[keep]
            csize = kept_n
    if c_idx is not None:
        clear[c_idx] = c_clear
        banded[c_idx] = c_banded
    kept = ~clear & ~banded
    defect = banded & ~clear
    if defect.any():
        eu_d = eu[defect].tolist()
        ev_d = ev[defect].tolist()
        kept[defect] = [scalar_edge(u, v) for u, v in zip(eu_d, ev_d)]

    # Scatter kept edges into both directed CSR slots.  The (v, u)
    # mirror slot is found by bisecting the globally ascending CSR keys
    # src*n + dst (src ascends, dst ascends within each row) — only
    # for the kept edges, which planarization leaves few of.
    keys = src * n + aindices
    ku = eu[kept]
    kv = ev[kept]
    mirror = np.searchsorted(keys, kv * n + ku)
    out = np.zeros(m, dtype=np.uint8)
    out[epos[kept]] = 1
    out[mirror] = 1
    mask[:] = out.tobytes()
    return mask


def masked_adjacency(np, ids: Sequence[int], aindptr, aindices, mask):
    """Per-node kept-neighbour-id tuples for a CSR edge ``mask``.

    The vectorized form of the adjacency-dict materialisation in
    ``TopologyCore._planarization``: selects the kept slots, groups
    them by row with a bincount/cumsum split (CSR order — identical
    to the scalar row walk) and slices the id gather into tuples.
    """
    n = aindptr.shape[0] - 1
    sel = np.frombuffer(mask, dtype=np.uint8).view(bool)
    pos = np.nonzero(sel)[0]
    deg = np.diff(aindptr)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    s = src[pos]
    ids_list = list(ids)
    ids_arr = np.asarray(ids_list, dtype=np.int64)
    d_ids = ids_arr[aindices[pos]].tolist()
    offs = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(s, minlength=n), out=offs[1:])
    offs_l = offs.tolist()
    return {
        ids_list[i]: tuple(d_ids[offs_l[i] : offs_l[i + 1]])
        for i in range(n)
    }


# -- safety quadrant classification --------------------------------------


def _quadrant_masks(np, axs, ays, aindptr, aindices):
    """Per-directed-edge quadrant membership masks (Q1..Q4) plus src.

    Classifies every directed CSR edge into the four closed quadrants
    with the exact branch semantics of the scalar
    ``repro.core.safety._quadrant_tables`` core path: strict sign
    tests on the coordinate differences, ``dx == 0`` boundary cases
    placing the neighbour in two quadrants, coincident neighbours
    (``dx == dy == 0``) in none.  Sign tests have no rounding, and
    ``dx``/``dy`` are the same float64 subtractions the scalar path
    performs, so the 1-ulp defect band collapses to the exact ``== 0``
    cases — which the masks enumerate directly (``-0.0 == 0.0`` lands
    in the same branch either way).
    """
    n = aindptr.shape[0] - 1
    deg = np.diff(aindptr)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    dx = axs[aindices] - axs[src]
    dy = ays[aindices] - ays[src]
    east = dx > 0.0
    west = dx < 0.0
    axis = dx == 0.0
    north = dy > 0.0
    south = dy < 0.0
    ge = dy >= 0.0
    le = dy <= 0.0
    quads = (
        (east & ge) | (axis & north),
        (west & ge) | (axis & north),
        (west & le) | (axis & south),
        (east & le) | (axis & south),
    )
    return src, quads


def quadrant_tables(np, ids: Sequence[int], axs, ays, aindptr, aindices):
    """Forward/reverse quadrant tables, identical to the scalar sweep.

    Materialises the :func:`_quadrant_masks` classification into the
    dict tables the scalar labeling consumes.  Forward tuples preserve
    CSR (= row) order; reverse lists ascend in ``u``, exactly like the
    scalar ascending-id append loop (a *stable* sort by target over
    the already-src-sorted selection).
    """
    n = aindptr.shape[0] - 1
    src, quads = _quadrant_masks(np, axs, ays, aindptr, aindices)
    ids_list = list(ids)
    ids_arr = np.asarray(ids_list, dtype=np.int64)
    forward = []
    reverse = []
    for q in quads:
        s = src[q]
        d = aindices[q]
        counts = np.bincount(s, minlength=n)
        offs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offs[1:])
        offs_l = offs.tolist()
        d_ids = ids_arr[d].tolist()
        forward.append(
            {
                ids_list[i]: tuple(d_ids[offs_l[i] : offs_l[i + 1]])
                for i in range(n)
            }
        )
        order = np.argsort(d, kind="stable")
        rcounts = np.bincount(d, minlength=n)
        roffs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(rcounts, out=roffs[1:])
        roffs_l = roffs.tolist()
        rs_ids = ids_arr[s[order]].tolist()
        reverse.append(
            {
                ids_list[i]: rs_ids[roffs_l[i] : roffs_l[i + 1]]
                for i in range(n)
            }
        )
    return forward, reverse


def safety_labels(np, axs, ays, aindptr, aindices, edge_flags: Sequence[bool]):
    """Definition 1's labeling, fully vectorized: statuses + rounds.

    Runs the quadrant classification (:func:`_quadrant_masks`) and then
    the *synchronous* greatest-fixed-point iteration per zone type:
    each round simultaneously flips every still-safe non-edge node
    whose forwarding zone holds no safe neighbour.  The scalar
    round-structured worklist of :func:`repro.core.safety.compute_safety`
    computes exactly this process (its round-``k`` frontier is the
    synchronous round-``k`` flip set — a node can only become
    flippable when a forward neighbour flipped the round before), so
    statuses *and* the round count match the scalar path exactly; the
    cross-backend differential suite pins both.

    The iteration itself is the counter form of the worklist: a node's
    "safe forward neighbour count" starts at its forwarding-zone
    degree (everyone starts safe) and each flip decrements the counts
    of the flipped node's reverse-quadrant dependents, so total work
    is O(E) over all rounds — same complexity as the scalar worklist,
    with each round a handful of array ops.  ``count == 0`` is exactly
    Definition 1's "no type-i safe neighbour in the zone" (vacuously
    true for an empty zone).  All four types run fused over a single
    ``(type, node)`` key space; they are independent processes, and
    the number of rounds in which *any* type flips equals the maximum
    per-type round count (a type's flip rounds are consecutive from
    round 1 — once a round passes without flips, none can follow).

    Returns ``(columns, rounds)`` where ``columns[i-1]`` is the
    type-``i`` status list in index order (``True`` = safe).
    """
    n = aindptr.shape[0] - 1
    src, quads = _quadrant_masks(np, axs, ays, aindptr, aindices)
    nn = 4 * n
    # Directed quadrant edges on the fused (type, node) key space.
    skeys = np.concatenate(
        [src[q] + qi * n for qi, q in enumerate(quads)]
    )
    dkeys = np.concatenate(
        [aindices[q] + qi * n for qi, q in enumerate(quads)]
    )
    cnt = np.bincount(skeys, minlength=nn)
    # Reverse CSR over destination keys: who loses a safe forward
    # neighbour when a given (type, node) flips.
    rorder = np.argsort(dkeys, kind="stable")
    rsrc = skeys[rorder]
    rstarts = np.zeros(nn + 1, dtype=np.int64)
    np.cumsum(np.bincount(dkeys, minlength=nn), out=rstarts[1:])

    st = np.ones(nn, dtype=bool)
    can_flip = ~np.tile(np.fromiter(edge_flags, dtype=bool, count=n), 4)
    rounds = 0
    flips = st & can_flip & (cnt == 0)
    while flips.any():
        rounds += 1
        st &= ~flips
        f = np.nonzero(flips)[0]
        starts = rstarts[f]
        lens = rstarts[f + 1] - starts
        total = int(lens.sum())
        if total:
            base = np.zeros(f.shape[0], dtype=np.int64)
            np.cumsum(lens[:-1], out=base[1:])
            g = np.repeat(np.arange(f.shape[0]), lens)
            targets = rsrc[
                starts[g] + np.arange(total, dtype=np.int64) - base[g]
            ]
            cnt -= np.bincount(targets, minlength=nn)
        flips = st & can_flip & (cnt == 0)
    columns = [st[qi * n : (qi + 1) * n].tolist() for qi in range(4)]
    return columns, rounds
