"""Node mobility — the random waypoint model.

Section 1 lists "node mobility" among the dynamic factors that create
local minima: as nodes drift, yesterday's safe labels go stale and new
holes open.  This module provides the standard random-waypoint model
so that studies can generate *topology streams*: each epoch the
simulator advances every node toward its waypoint, a fresh unit-disk
graph is built, and the information construction re-runs (exactly what
a deployed WASN's periodic beaconing achieves).

The model: each node picks a uniform waypoint in the area, moves toward
it in a straight line at a per-leg uniform speed, pauses, then picks
the next waypoint.  Obstacles (forbidden areas) are respected by
re-sampling waypoints and by clamping motion that would enter them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.geometry import Point, Rect
from repro.network.dynamic import DynamicTopology, TopologyDelta
from repro.network.edges import EdgeDetector
from repro.network.graph import WasnGraph, build_unit_disk_graph
from repro.network.obstacles import Obstacle

__all__ = ["RandomWaypointMobility"]

_MAX_WAYPOINT_TRIES = 1000


@dataclass
class _Walker:
    """Mutable per-node mobility state."""

    position: Point
    waypoint: Point
    speed: float
    pause_remaining: float


class RandomWaypointMobility:
    """Random-waypoint mobility over a rectangular area.

    ``speed`` is the (min, max) per-leg speed in metres per time unit;
    ``pause`` the dwell time at each waypoint.  All randomness comes
    from the supplied ``rng``, so topology streams are reproducible.
    """

    def __init__(
        self,
        area: Rect,
        count: int,
        rng: random.Random,
        speed: tuple[float, float] = (1.0, 5.0),
        pause: float = 0.0,
        obstacles: Sequence[Obstacle] = (),
    ):
        if count < 0:
            raise ValueError("count must be non-negative")
        low, high = speed
        if low <= 0 or high < low:
            raise ValueError("need 0 < min speed <= max speed")
        if pause < 0:
            raise ValueError("pause must be non-negative")
        self._area = area
        self._rng = rng
        self._speed = speed
        self._pause = pause
        self._obstacles = tuple(obstacles)
        self._walkers = [
            _Walker(
                position=self._sample_point(),
                waypoint=self._sample_point(),
                speed=rng.uniform(low, high),
                pause_remaining=0.0,
            )
            for _ in range(count)
        ]

    def _sample_point(self) -> Point:
        for _ in range(_MAX_WAYPOINT_TRIES):
            p = Point(
                self._rng.uniform(self._area.x_min, self._area.x_max),
                self._rng.uniform(self._area.y_min, self._area.y_max),
            )
            if all(not ob.contains(p) for ob in self._obstacles):
                return p
        raise RuntimeError(
            "could not sample a waypoint outside the forbidden areas"
        )

    def positions(self) -> list[Point]:
        """Current node positions (index = node id)."""
        return [w.position for w in self._walkers]

    def advance(self, dt: float) -> None:
        """Move every node ``dt`` time units along its trajectory."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        low, high = self._speed
        for walker in self._walkers:
            remaining = dt
            while remaining > 1e-12:
                if walker.pause_remaining > 0:
                    dwell = min(walker.pause_remaining, remaining)
                    walker.pause_remaining -= dwell
                    remaining -= dwell
                    continue
                to_target = walker.waypoint - walker.position
                distance = to_target.norm()
                step = walker.speed * remaining
                if step < distance:
                    scale = step / distance
                    candidate = Point(
                        walker.position.x + to_target.x * scale,
                        walker.position.y + to_target.y * scale,
                    )
                    if any(
                        ob.contains(candidate) for ob in self._obstacles
                    ):
                        # Road blocked: abandon this waypoint where we
                        # stand and pick a new one next iteration.
                        walker.waypoint = self._sample_point()
                        walker.speed = self._rng.uniform(low, high)
                        continue
                    walker.position = candidate
                    remaining = 0.0
                else:
                    # Reached the waypoint: consume the travel time,
                    # pause, then pick the next leg.
                    travel = distance / walker.speed if walker.speed else 0.0
                    walker.position = walker.waypoint
                    remaining -= travel
                    walker.pause_remaining = self._pause
                    walker.waypoint = self._sample_point()
                    walker.speed = self._rng.uniform(low, high)

    def snapshot_graph(self, radius: float) -> WasnGraph:
        """The unit-disk graph of the current positions, from scratch.

        One-shot construction; streams should use
        :meth:`dynamic_topology` / :meth:`topology_stream`, which
        maintain the graph incrementally across epochs.
        """
        return build_unit_disk_graph(self.positions(), radius)

    def dynamic_topology(
        self, radius: float, edge_detector: EdgeDetector | None = None
    ) -> DynamicTopology:
        """A live :class:`DynamicTopology` over the current positions.

        Subsequent :meth:`advance` calls do not move it automatically —
        push the new positions with
        ``topology.move_many(enumerate(walker.positions()))`` (what
        :meth:`topology_stream` does per epoch), so each epoch touches
        only the edges that actually changed.
        """
        return DynamicTopology(
            self.positions(), radius, edge_detector=edge_detector
        )

    def topology_stream(
        self, radius: float, dt: float, epochs: int
    ) -> Iterator[WasnGraph]:
        """Yield ``epochs`` successive topology snapshots ``dt`` apart.

        The first snapshot is the current state (before any motion);
        each subsequent one follows an ``advance(dt)``.  Snapshots are
        maintained incrementally: each epoch applies the position
        deltas to one live :class:`DynamicTopology` instead of
        rebuilding the unit-disk graph, and yields its (immutable,
        independent) snapshot — bit-identical to a from-scratch
        :func:`build_unit_disk_graph` per epoch.
        """
        for _, graph in self.delta_stream(radius, dt, epochs):
            yield graph

    def delta_stream(
        self, radius: float, dt: float, epochs: int
    ) -> Iterator[tuple[TopologyDelta | None, WasnGraph]]:
        """Like :meth:`topology_stream`, with the per-epoch deltas.

        Yields ``(delta, graph)`` pairs; the first epoch has no delta
        (``None`` — it is the initial state, not a change).  Consumers
        that cache per-topology state (routers, information models)
        invalidate from the delta instead of diffing graphs.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        topology = self.dynamic_topology(radius)
        yield None, topology.graph
        for _ in range(epochs - 1):
            self.advance(dt)
            delta = topology.move_many(enumerate(self.positions()))
            yield delta, topology.graph
