"""The columnar topology core — flat-array representation of the WASN.

Every layer of the reproduction ultimately consumes the same three
facts about the network: where each node is, who its neighbours are,
and which edges survive planarization.  The object layer
(:class:`~repro.network.graph.WasnGraph`, ``Node``, ``Point``) answers
those questions through per-node Python objects and dict adjacency —
ideal for algorithm-shaped code, but each query costs attribute
lookups and object allocation, which caps Study throughput well below
what the hardware allows.

:class:`TopologyCore` is the flat substrate underneath: position
columns as ``array('d')``, adjacency in CSR form
(``indptr``/``indices``), per-edge lengths, edge-node flags, and the
Gabriel/RNG planarizations computed once per core as CSR edge masks.
It is immutable and value-complete — a :class:`WasnGraph` is a thin
id ↔ index *view* over a core, and the batched routing executor
(:mod:`repro.routing.batch`) runs its successor-selection inner loops
on the core's columns directly.

Index convention: node ids are sorted ascending and mapped to the
dense indices ``0..n-1``; ``ids[i]`` is the id of index ``i``.  For
the common case of a freshly deployed network the ids *are*
``0..n-1`` and the mapping is the identity.  CSR ``indices`` store
neighbour *indices*; the row view (:meth:`rows`) stores neighbour
*ids* — because ids ascend with indices, both are sorted ascending.

Everything derived (CSR arrays, lengths, masks, padded by-id views)
is computed lazily and cached: a core built for one routing batch
never pays for columns the batch does not touch, and cores that share
structure (e.g. the same graph with different edge flags, see
:meth:`with_edge_flags`) share their planarization caches.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro._optional import require_numpy
from repro.geometry import Point
from repro.network import construct as _construct
from repro.network.node import NodeId

__all__ = ["CoreArrays", "TopologyCore", "build_core"]


@dataclass(frozen=True)
class CoreArrays:
    """Read-only numpy views over one core's columns (see
    :meth:`TopologyCore.ndarray_views`).  Fields are ndarrays; the
    class itself never imports numpy, so merely defining a core keeps
    the dependency optional."""

    xs: "object"
    ys: "object"
    indptr: "object"
    indices: "object"
    lengths: "object"
    ids: "object"

# Numerical slack for the planarization witness tests — must match
# repro.network.planar exactly (the core masks are pinned bit-identical
# to the dict-based reference construction by the property suite).
_PLANAR_EPS = 1e-9

_PLANAR_KINDS = ("gabriel", "rng")


class TopologyCore:
    """Immutable columnar form of one unit-disk topology.

    Construction normally goes through :func:`build_core` (bulk
    spatial-grid pass) or :meth:`from_rows` (adopting per-node
    neighbour tuples, e.g. from a dict adjacency or a
    :class:`~repro.network.dynamic.DynamicTopology` snapshot's cached
    rows).  All sequences handed in are trusted and must not be
    mutated afterwards.
    """

    __slots__ = (
        "_ids",
        "_xs",
        "_ys",
        "_radius",
        "_edge_flags",
        "_rows",
        "_dense",
        "_index_of",
        "_indptr",
        "_indices",
        "_lengths",
        "_planar",
        "_coords_by_id",
        "_rows_by_id",
        "_flags_by_id",
        "_ndarrays",
        "_edge_count",
        "_backend",
    )

    def __init__(
        self,
        ids: tuple[NodeId, ...],
        xs: array,
        ys: array,
        radius: float,
        edge_flags: tuple[bool, ...],
        rows: tuple[tuple[NodeId, ...], ...],
        planar_cache: dict | None = None,
        backend: str = "auto",
    ) -> None:
        if radius <= 0:
            raise ValueError("communication radius must be positive")
        if backend not in _construct.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; "
                "expected 'auto', 'scalar' or 'numpy'"
            )
        n = len(ids)
        if not (len(xs) == len(ys) == len(edge_flags) == len(rows) == n):
            raise ValueError("column lengths disagree")
        self._ids = ids
        self._xs = xs
        self._ys = ys
        self._radius = radius
        self._edge_flags = edge_flags
        self._rows = rows
        # Dense ids (0..n-1) make the id <-> index mapping the identity,
        # which the by-id views exploit to avoid copies.
        self._dense = ids == tuple(range(n))
        self._index_of: dict[NodeId, int] | None = None
        self._indptr: array | None = None
        self._indices: array | None = None
        self._lengths: array | None = None
        # kind -> (mask bytearray, planar adjacency dict); shared with
        # flag-variants of this core (planarization ignores edge flags).
        self._planar: dict = planar_cache if planar_cache is not None else {}
        self._coords_by_id: tuple[list, list] | None = None
        self._rows_by_id: list | None = None
        self._flags_by_id: list | None = None
        self._ndarrays = None
        self._edge_count: int | None = None
        # Lazy-column backend preference ("auto"/"scalar"/"numpy"),
        # re-resolved at every use per repro._optional's no-caching
        # rule — a core built before numpy was blocked degrades too.
        self._backend = backend

    # -- construction ---------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        ids: Sequence[NodeId],
        positions: Mapping[NodeId, Point],
        radius: float,
        rows: Sequence[tuple[NodeId, ...]],
        edge_ids: Iterable[NodeId] = (),
        backend: str = "auto",
    ) -> "TopologyCore":
        """Adopt sorted per-node neighbour tuples (ids ascending).

        This is how dict-built graphs and dynamic-topology snapshots
        become cores: the row tuples are shared, not copied, so a
        snapshot whose rows mostly survived the last delta reuses the
        unchanged slices.  ``backend`` sets the lazy-column preference
        (CSR assembly, lengths, planarizations) — see :func:`build_core`.
        """
        ids = tuple(ids)
        xs = array("d", [positions[u].x for u in ids])
        ys = array("d", [positions[u].y for u in ids])
        edge_set = set(edge_ids)
        flags = tuple(u in edge_set for u in ids)
        return cls(ids, xs, ys, radius, flags, tuple(rows), backend=backend)

    def with_edge_flags(self, edge_ids: Iterable[NodeId]) -> "TopologyCore":
        """A core sharing all structure, with edge flags replaced.

        The planarization cache is shared too: Gabriel/RNG masks are
        pure functions of positions and adjacency, never of flags.
        """
        edge_set = set(edge_ids)
        flags = tuple(u in edge_set for u in self._ids)
        return TopologyCore(
            self._ids,
            self._xs,
            self._ys,
            self._radius,
            flags,
            self._rows,
            planar_cache=self._planar,
            backend=self._backend,
        )

    # -- scalar facts ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def ids(self) -> tuple[NodeId, ...]:
        """Node ids, ascending; ``ids[i]`` is the id at index ``i``."""
        return self._ids

    @property
    def xs(self) -> array:
        """``array('d')`` of x coordinates, in index order."""
        return self._xs

    @property
    def ys(self) -> array:
        """``array('d')`` of y coordinates, in index order."""
        return self._ys

    @property
    def edge_flags(self) -> tuple[bool, ...]:
        """Edge-node flags, in index order."""
        return self._edge_flags

    @property
    def dense(self) -> bool:
        """Whether ids are exactly ``0..n-1`` (index == id)."""
        return self._dense

    def index_of(self, node_id: NodeId) -> int:
        """Index of ``node_id`` (KeyError when unknown)."""
        if self._dense:
            if 0 <= node_id < len(self._ids):
                return node_id
            raise KeyError(node_id)
        mapping = self._index_of
        if mapping is None:
            mapping = {u: i for i, u in enumerate(self._ids)}
            self._index_of = mapping
        return mapping[node_id]

    def __contains__(self, node_id: NodeId) -> bool:
        if self._dense:
            # range membership mirrors the historical dict lookup for
            # int-*like* values too (3.0, numpy integers): anything
            # equal to an id is a member, anything else is not.
            return node_id in range(len(self._ids))
        if self._index_of is None:
            self._index_of = {u: i for i, u in enumerate(self._ids)}
        return node_id in self._index_of

    # -- adjacency ------------------------------------------------------

    def rows(self) -> tuple[tuple[NodeId, ...], ...]:
        """Per-index neighbour-id tuples (each sorted ascending).

        These are the same tuple objects a :class:`WasnGraph` view
        serves from ``neighbors()`` — one materialisation feeds both.
        """
        return self._rows

    @property
    def indptr(self) -> array:
        """CSR row pointer: row ``i`` spans ``indices[indptr[i]:indptr[i+1]]``."""
        if self._indptr is None:
            self._build_csr()
        return self._indptr

    @property
    def indices(self) -> array:
        """CSR neighbour *indices* (ascending within each row)."""
        if self._indices is None:
            self._build_csr()
        return self._indices

    def _build_csr(self) -> None:
        if not self._dense:
            # Sparse ids need an id -> index translation per edge; the
            # numpy path does it as one searchsorted over the id column.
            np = _construct.resolve_backend(
                self._backend, "TopologyCore CSR assembly (backend='numpy')"
            )
            if np is not None:
                self._indptr, self._indices = _construct.csr_from_rows(
                    np, self._ids, self._rows
                )
                return
        indptr = array("q", [0])
        indices = array("q")
        if self._dense:
            for row in self._rows:
                indices.extend(row)
                indptr.append(len(indices))
        else:
            index_of = self._index_of
            if index_of is None:
                index_of = {u: i for i, u in enumerate(self._ids)}
                self._index_of = index_of
            for row in self._rows:
                indices.extend([index_of[v] for v in row])
                indptr.append(len(indices))
        self._indptr = indptr
        self._indices = indices

    @property
    def lengths(self) -> array:
        """Per-edge Euclidean lengths, aligned with :attr:`indices`.

        Computed once per core with the same ``math.hypot`` the object
        layer uses, so sums over these agree bit-for-bit with sums of
        ``Point.distance_to`` calls in the same order.
        """
        if self._lengths is None:
            xs, ys = self._xs, self._ys
            indptr, indices = self.indptr, self.indices
            np = _construct.resolve_backend(
                self._backend, "TopologyCore.lengths (backend='numpy')"
            )
            if np is not None and len(indices):
                self._lengths = _construct.lengths_from_csr(
                    np,
                    np.frombuffer(xs, dtype=np.float64),
                    np.frombuffer(ys, dtype=np.float64),
                    np.frombuffer(indptr, dtype=np.int64),
                    np.frombuffer(indices, dtype=np.int64),
                )
                return self._lengths
            hyp = math.hypot
            lengths = array("d", bytes(8 * len(indices)))
            for i in range(len(self._ids)):
                xi = xs[i]
                yi = ys[i]
                for j in range(indptr[i], indptr[i + 1]):
                    v = indices[j]
                    lengths[j] = hyp(xi - xs[v], yi - ys[v])
            self._lengths = lengths
        return self._lengths

    def edge_count(self) -> int:
        if self._edge_count is None:
            self._edge_count = sum(len(row) for row in self._rows) // 2
        return self._edge_count

    # -- by-id views (what the batched executors iterate) ---------------

    def coords_by_id(self) -> tuple[list, list]:
        """Position columns as plain lists indexed *by node id*.

        For dense ids these are straight copies of the columns; for
        sparse ids (failures leave holes) the lists are padded so that
        ``xs[u]`` works for any present id ``u``.  Plain lists because
        the routing inner loops index them millions of times and list
        reads skip the ``array`` unboxing cost.
        """
        if self._coords_by_id is None:
            if self._dense:
                self._coords_by_id = (list(self._xs), list(self._ys))
            else:
                size = (self._ids[-1] + 1) if self._ids else 0
                xs = [0.0] * size
                ys = [0.0] * size
                for i, u in enumerate(self._ids):
                    xs[u] = self._xs[i]
                    ys[u] = self._ys[i]
                self._coords_by_id = (xs, ys)
        return self._coords_by_id

    def rows_by_id(self) -> list:
        """Neighbour-id tuples indexed by node id (padded when sparse)."""
        if self._rows_by_id is None:
            if self._dense:
                self._rows_by_id = list(self._rows)
            else:
                size = (self._ids[-1] + 1) if self._ids else 0
                rows: list = [()] * size
                for i, u in enumerate(self._ids):
                    rows[u] = self._rows[i]
                self._rows_by_id = rows
        return self._rows_by_id

    def flags_by_id(self) -> list:
        """Edge-node flags indexed by node id (padded when sparse)."""
        if self._flags_by_id is None:
            if self._dense:
                self._flags_by_id = list(self._edge_flags)
            else:
                size = (self._ids[-1] + 1) if self._ids else 0
                flags = [False] * size
                for i, u in enumerate(self._ids):
                    flags[u] = self._edge_flags[i]
                self._flags_by_id = flags
        return self._flags_by_id

    # -- numpy views (what the vectorized batch kernel consumes) --------

    def ndarray_views(self) -> "CoreArrays":
        """Zero-copy numpy views over the core's columns, cached.

        ``xs``/``ys``/``lengths`` wrap the ``array('d')`` buffers and
        ``indptr``/``indices`` the CSR ``array('q')`` buffers directly
        (``np.frombuffer`` — no copy, no conversion); ``ids`` is the
        one materialised column (int64, built once from the id tuple).
        All views are marked read-only so the core stays immutable
        even through its numpy face.

        numpy is an *optional* dependency (guarded exactly like the
        alpha shape in :mod:`repro.geometry.hull`, through
        :mod:`repro._optional`): calling this without numpy raises
        :class:`~repro._optional.MissingDependencyError`.
        """
        if self._ndarrays is None:
            np = require_numpy("TopologyCore.ndarray_views()")
            xs = np.frombuffer(self._xs, dtype=np.float64)
            ys = np.frombuffer(self._ys, dtype=np.float64)
            indptr = np.frombuffer(self.indptr, dtype=np.int64)
            indices = np.frombuffer(self.indices, dtype=np.int64)
            lengths = np.frombuffer(self.lengths, dtype=np.float64)
            ids = np.asarray(self._ids, dtype=np.int64)
            for view in (xs, ys, indptr, indices, lengths, ids):
                view.flags.writeable = False
            self._ndarrays = CoreArrays(
                xs=xs,
                ys=ys,
                indptr=indptr,
                indices=indices,
                lengths=lengths,
                ids=ids,
            )
        return self._ndarrays

    # -- planarization masks --------------------------------------------

    def planar_mask(self, kind: str) -> bytearray:
        """CSR edge mask for one planarization (1 = edge kept).

        Aligned with :attr:`indices`; computed once per core (per
        kind) and shared by every consumer — the face-routing caches
        of GF and SLGF2 no longer planarize separately.
        """
        mask, _ = self._planarization(kind)
        return mask

    def planar_adjacency(self, kind: str) -> dict[NodeId, tuple[NodeId, ...]]:
        """Planar subgraph adjacency in the legacy dict form.

        Bit-identical to :func:`repro.network.planar.gabriel_graph` /
        :func:`~repro.network.planar.relative_neighborhood_graph` over
        the corresponding :class:`WasnGraph` (the property suite pins
        this), but computed from the columns and cached on the core.
        """
        _, adjacency = self._planarization(kind)
        return adjacency

    def _planarization(self, kind: str):
        cached = self._planar.get(kind)
        if cached is not None:
            return cached
        if kind not in _PLANAR_KINDS:
            raise ValueError(
                f"unknown planarization {kind!r}; "
                f"expected one of {sorted(_PLANAR_KINDS)}"
            )
        np = _construct.resolve_backend(
            self._backend, f"planar_mask({kind!r}) (backend='numpy')"
        )
        if np is not None:
            xs, ys = self._xs, self._ys
            indptr, indices = self.indptr, self.indices
            scalar_edge = (
                _gabriel_edge_keep if kind == "gabriel" else _rng_edge_keep
            )
            aindptr = np.frombuffer(indptr, dtype=np.int64)
            aindices = np.frombuffer(indices, dtype=np.int64)
            mask = _construct.planar_mask(
                np,
                kind,
                np.frombuffer(xs, dtype=np.float64),
                np.frombuffer(ys, dtype=np.float64),
                aindptr,
                aindices,
                _PLANAR_EPS,
                lambda i, v: scalar_edge(xs, ys, indptr, indices, i, v),
            )
            kept = _construct.masked_adjacency(
                np, self._ids, aindptr, aindices, mask
            )
            result = (mask, kept)
            self._planar[kind] = result
            return result
        mask = self._gabriel_mask() if kind == "gabriel" else self._rng_mask()
        ids = self._ids
        rows = self._rows
        kept: dict[NodeId, tuple[NodeId, ...]] = {}
        indptr = self.indptr
        for i, u in enumerate(ids):
            row = rows[i]
            base = indptr[i]
            kept[u] = tuple(
                row[j] for j in range(len(row)) if mask[base + j]
            )
        result = (mask, kept)
        self._planar[kind] = result
        return result

    def _gabriel_mask(self) -> bytearray:
        """Gabriel edges: no third node inside the closed disc on uv.

        The witness search scans ``N(u)`` only — any point inside the
        Gabriel disc of ``uv`` is a neighbour of both endpoints — and
        uses exactly the closed-disc test of the reference
        implementation (see the tolerance note in
        :mod:`repro.network.planar`).
        """
        xs, ys = self._xs, self._ys
        indptr, indices = self.indptr, self.indices
        mask = bytearray(len(indices))
        eps = _PLANAR_EPS
        pos: dict[int, int] = {}
        n = len(self._ids)
        for i in range(n):
            xi = xs[i]
            yi = ys[i]
            start = indptr[i]
            end = indptr[i + 1]
            for j in range(start, end):
                v = indices[j]
                if v < i:
                    continue  # handled from the smaller endpoint
                cx = (xi + xs[v]) / 2.0
                cy = (yi + ys[v]) / 2.0
                dx = cx - xi
                dy = cy - yi
                bound = dx * dx + dy * dy + eps
                witness = False
                for k in range(start, end):
                    w = indices[k]
                    if w == v:
                        continue
                    wx = xs[w] - cx
                    wy = ys[w] - cy
                    if wx * wx + wy * wy <= bound:
                        witness = True
                        break
                if not witness:
                    mask[j] = 1
                    # mirror: locate u in v's row (rows are sorted).
                    mask[_mirror(indptr, indices, v, i, pos)] = 1
        return mask

    def _rng_mask(self) -> bytearray:
        """RNG edges: no node strictly closer to both endpoints (open lune)."""
        xs, ys = self._xs, self._ys
        indptr, indices = self.indptr, self.indices
        mask = bytearray(len(indices))
        eps = _PLANAR_EPS
        pos: dict[int, int] = {}
        n = len(self._ids)
        for i in range(n):
            xi = xs[i]
            yi = ys[i]
            start = indptr[i]
            end = indptr[i + 1]
            for j in range(start, end):
                v = indices[j]
                if v < i:
                    continue
                xv = xs[v]
                yv = ys[v]
                dx = xi - xv
                dy = yi - yv
                bound = dx * dx + dy * dy - eps
                witness = False
                for k in range(start, end):
                    w = indices[k]
                    if w == v:
                        continue
                    ux = xs[w] - xi
                    uy = ys[w] - yi
                    if ux * ux + uy * uy >= bound:
                        continue
                    vx = xs[w] - xv
                    vy = ys[w] - yv
                    if vx * vx + vy * vy < bound:
                        witness = True
                        break
                if not witness:
                    mask[j] = 1
                    mask[_mirror(indptr, indices, v, i, pos)] = 1
        return mask

    def __repr__(self) -> str:
        return (
            f"TopologyCore(n={len(self._ids)}, "
            f"edges={self.edge_count()}, radius={self._radius})"
        )


def _mirror(
    indptr: array, indices: array, row: int, target: int, pos: dict[int, int]
) -> int:
    """CSR position of ``target`` within ``row`` (rows sorted ascending).

    ``pos`` memoises the last lookup base per row — the mirror lookups
    of a planarization sweep walk each row once, in order, so a linear
    resume beats a bisect.
    """
    j = pos.get(row, indptr[row])
    end = indptr[row + 1]
    while j < end and indices[j] != target:
        j += 1
    if j >= end:  # pragma: no cover - CSR symmetric by construction
        raise ValueError(f"asymmetric CSR: {target} missing from row {row}")
    pos[row] = j + 1
    return j


def _gabriel_edge_keep(
    xs: array, ys: array, indptr: array, indices: array, i: int, v: int
) -> bool:
    """The scalar Gabriel verdict for one edge (i, v) — the defect
    target of the vectorized mask kernel.  Must mirror the loop body
    of :meth:`TopologyCore._gabriel_mask` expression for expression
    (the eps-boundary differential tests pin the two together)."""
    eps = _PLANAR_EPS
    xi = xs[i]
    yi = ys[i]
    cx = (xi + xs[v]) / 2.0
    cy = (yi + ys[v]) / 2.0
    dx = cx - xi
    dy = cy - yi
    bound = dx * dx + dy * dy + eps
    for k in range(indptr[i], indptr[i + 1]):
        w = indices[k]
        if w == v:
            continue
        wx = xs[w] - cx
        wy = ys[w] - cy
        if wx * wx + wy * wy <= bound:
            return False
    return True


def _rng_edge_keep(
    xs: array, ys: array, indptr: array, indices: array, i: int, v: int
) -> bool:
    """The scalar RNG verdict for one edge (i, v) — the defect target
    of the vectorized mask kernel; mirrors
    :meth:`TopologyCore._rng_mask` expression for expression."""
    eps = _PLANAR_EPS
    xi = xs[i]
    yi = ys[i]
    xv = xs[v]
    yv = ys[v]
    dx = xi - xv
    dy = yi - yv
    bound = dx * dx + dy * dy - eps
    for k in range(indptr[i], indptr[i + 1]):
        w = indices[k]
        if w == v:
            continue
        ux = xs[w] - xi
        uy = ys[w] - yi
        if ux * ux + uy * uy >= bound:
            continue
        vx = xs[w] - xv
        vy = ys[w] - yv
        if vx * vx + vy * vy < bound:
            return False
    return True


def build_core(
    positions: Sequence[Point],
    radius: float,
    edge_ids: Iterable[NodeId] = (),
    backend: str = "auto",
) -> TopologyCore:
    """Bulk unit-disk construction straight into columnar form.

    Node ``i`` takes id ``i``; two nodes are adjacent iff their
    distance is at most ``radius`` (closed ball) — the same edge set
    the historical :class:`~repro.network.spatial.SpatialGrid`
    pipeline produced, pair for pair, but enumerated with a single
    half-neighbourhood sweep over the grid cells and no intermediate
    ``Point`` objects.

    ``backend`` selects the construction implementation (and the
    core's lazy-column preference for lengths, CSR and planarization
    masks): ``"numpy"`` runs the grid binning, pair filtering and CSR
    assembly as array ops (:mod:`repro.network.construct`) and raises
    :class:`~repro._optional.MissingDependencyError` without numpy;
    ``"auto"`` (default) does the same when numpy is importable and
    silently falls back to the scalar sweep otherwise; ``"scalar"``
    forces the reference path.  All three produce bit-identical cores
    (the cross-backend differential suite pins every column).
    """
    if radius <= 0:
        raise ValueError("communication radius must be positive")
    np = _construct.resolve_backend(backend, "build_core(backend='numpy')")
    if np is not None:
        n = len(positions)
        xs, ys, rows, indptr, indices = _construct.build_columns(
            np, positions, radius
        )
        edge_set = set(edge_ids)
        flags = tuple(i in edge_set for i in range(n))
        core = TopologyCore(
            tuple(range(n)), xs, ys, radius, flags, rows, backend=backend
        )
        # The CSR fell out of the vectorized build; install it rather
        # than re-deriving it lazily from the rows.
        core._indptr = indptr
        core._indices = indices
        return core
    n = len(positions)
    xs = array("d", bytes(8 * n))
    ys = array("d", bytes(8 * n))
    cells: dict[tuple[int, int], list[int]] = {}
    for i, p in enumerate(positions):
        x = p.x
        y = p.y
        xs[i] = x
        ys[i] = y
        key = (int(x // radius), int(y // radius))
        cell = cells.get(key)
        if cell is None:
            cells[key] = [i]
        else:
            cell.append(i)

    r2 = radius * radius
    neighbor_lists: list[list[int]] = [[] for _ in range(n)]
    get = cells.get
    for (cx, cy), keys in cells.items():
        # Pairs within the same cell.
        for ii, a in enumerate(keys):
            xa = xs[a]
            ya = ys[a]
            la = neighbor_lists[a]
            for b in keys[ii + 1 :]:
                dx = xa - xs[b]
                dy = ya - ys[b]
                if dx * dx + dy * dy <= r2:
                    la.append(b)
                    neighbor_lists[b].append(a)
        # Cross-cell pairs against the lexicographically-later half of
        # the 3x3 neighbourhood, so each pair is tested exactly once.
        for key in (
            (cx, cy + 1),
            (cx + 1, cy - 1),
            (cx + 1, cy),
            (cx + 1, cy + 1),
        ):
            other = get(key)
            if not other:
                continue
            for a in keys:
                xa = xs[a]
                ya = ys[a]
                la = neighbor_lists[a]
                for b in other:
                    dx = xa - xs[b]
                    dy = ya - ys[b]
                    if dx * dx + dy * dy <= r2:
                        la.append(b)
                        neighbor_lists[b].append(a)

    rows: list[tuple[int, ...]] = []
    for row in neighbor_lists:
        row.sort()
        rows.append(tuple(row))

    edge_set = set(edge_ids)
    flags = tuple(i in edge_set for i in range(n))
    return TopologyCore(
        tuple(range(n)), xs, ys, radius, flags, tuple(rows), backend=backend
    )
