"""Incremental unit-disk topology maintenance under churn.

Section 1 motivates exactly this regime: "node failures, signal
fading, communication jamming, power exhaustion, interference, and
node mobility" all perturb the topology *locally*, yet the static
pipeline answers every perturbation by rebuilding the whole unit-disk
graph (``build_unit_disk_graph`` is O(n * k), and each rebuilt
:class:`~repro.network.graph.WasnGraph` revalidates all of E).  For
dynamic sweeps — a failure schedule, a mobility stream, an interactive
session poking at a deployment — that makes event cost proportional to
network size instead of event size.

:class:`DynamicTopology` keeps the graph *live*.  It owns a
:class:`~repro.network.spatial.SpatialGrid` over the alive nodes and,
on every move/failure/restoration, recomputes only the edges incident
to the affected nodes — a 3x3 cell neighbourhood query per touched
node, since the grid's cell size equals the communication radius.
Each mutation produces a structured :class:`TopologyDelta` (edges
added/removed, nodes up/down, nodes moved) that is pushed to
subscribers, so consumers — routers caching planarizations, sessions
caching information models — invalidate precisely what changed instead
of rebuilding on spec.

Snapshots (:attr:`DynamicTopology.graph`) are ordinary immutable
``WasnGraph`` values, bit-identical to a from-scratch
``build_unit_disk_graph`` over the same alive positions (the
differential suite ``tests/network/test_dynamic_differential.py`` pins
this edge for edge, edge-node flags and planarizations included), so
everything above the network layer works unchanged.  Snapshot
construction skips the O(E) symmetry validation — the invariant holds
by construction and is exactly what the differential tests retire —
and reuses cached per-node adjacency tuples and ``Node`` records, so a
snapshot after a small perturbation is O(n), not O(n * k)
(``benchmarks/bench_dynamic.py`` pins the resulting >= 5x speedup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.geometry import Point, Rect
from repro.network import construct as _construct
from repro.network.edges import EdgeDetector
from repro.network.graph import WasnGraph
from repro.network.node import Node, NodeId
from repro.network.spatial import SpatialGrid

__all__ = ["DynamicTopology", "TopologyDelta"]

#: An undirected edge, always stored (smaller id, larger id).
Edge = tuple[NodeId, NodeId]


def _edge(u: NodeId, v: NodeId) -> Edge:
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class TopologyDelta:
    """The net effect of one topology mutation (or batch of them).

    Edges are undirected ``(smaller id, larger id)`` pairs, sorted for
    determinism.  Within one batch, transient churn cancels: an edge
    dropped and regained by successive moves of the same batch appears
    in neither tuple, and a node moved away and back appears not at
    all.  ``moved`` lists each net-moved node once, in first-touch
    order (including currently-down nodes, whose stored position moved
    with them); ``nodes_down`` edges are already folded into
    ``removed_edges``.
    """

    added_edges: tuple[Edge, ...] = ()
    removed_edges: tuple[Edge, ...] = ()
    nodes_up: tuple[NodeId, ...] = ()
    nodes_down: tuple[NodeId, ...] = ()
    moved: tuple[NodeId, ...] = ()

    def __bool__(self) -> bool:
        """Whether the mutation changed anything at all."""
        return bool(
            self.added_edges
            or self.removed_edges
            or self.nodes_up
            or self.nodes_down
            or self.moved
        )


class _DeltaRecorder:
    """Accumulates the net edge/node churn of one mutation batch."""

    __slots__ = ("added", "removed", "up", "down", "origins")

    def __init__(self) -> None:
        self.added: set[Edge] = set()
        self.removed: set[Edge] = set()
        self.up: list[NodeId] = []
        self.down: list[NodeId] = []
        # First pre-batch position of each touched node, in touch
        # order: freeze() nets a node out when it ended where it began.
        self.origins: dict[NodeId, Point] = {}

    def add_edge(self, e: Edge) -> None:
        # Re-adding an edge removed earlier in the same batch is a
        # wash, not an add — the delta reports net change only.
        if e in self.removed:
            self.removed.discard(e)
        else:
            self.added.add(e)

    def remove_edge(self, e: Edge) -> None:
        if e in self.added:
            self.added.discard(e)
        else:
            self.removed.add(e)

    def note_move(self, key: NodeId, origin: Point) -> None:
        if key not in self.origins:
            self.origins[key] = origin

    def freeze(self, positions: Mapping[NodeId, Point]) -> TopologyDelta:
        return TopologyDelta(
            added_edges=tuple(sorted(self.added)),
            removed_edges=tuple(sorted(self.removed)),
            nodes_up=tuple(self.up),
            nodes_down=tuple(self.down),
            moved=tuple(
                key
                for key, origin in self.origins.items()
                if positions[key] != origin
            ),
        )


#: A delta subscriber: called synchronously after each mutation.
DeltaSubscriber = Callable[[TopologyDelta], None]


class DynamicTopology:
    """A unit-disk graph maintained incrementally under churn.

    Node ids are fixed at construction (index order for a position
    sequence); nodes never leave the universe, they only go *down*
    (failure) and come back *up* (restoration), which is how the
    surviving graphs of :mod:`repro.network.failures` keep their
    original ids.  ``edge_detector`` (plus ``area`` for the ``margin``
    strategy) re-runs edge-node detection on each snapshot, matching a
    pipeline that applies :class:`~repro.network.edges.EdgeDetector`
    after every rebuild.

    All mutators return the :class:`TopologyDelta` they caused and
    push it to every subscriber before returning.
    """

    def __init__(
        self,
        positions: Sequence[Point] | Mapping[NodeId, Point],
        radius: float,
        edge_detector: EdgeDetector | None = None,
        area: Rect | None = None,
        backend: str = "auto",
    ):
        if radius <= 0:
            raise ValueError("communication radius must be positive")
        if isinstance(positions, Mapping):
            items = sorted(positions.items())
        else:
            items = list(enumerate(positions))
        self._radius = radius
        self._detector = edge_detector
        self._area = area
        self._positions: dict[NodeId, Point] = dict(items)
        if len(self._positions) != len(items):
            raise ValueError("duplicate node ids in positions")
        self._down: set[NodeId] = set()
        self._grid = SpatialGrid(cell_size=radius)
        self._grid.bulk_insert(items)
        # Per-node caches reused across snapshots; entries drop the
        # moment the node's adjacency / position / edge flag changes.
        self._sorted: dict[NodeId, tuple[NodeId, ...]] = {}
        np = _construct.resolve_backend(
            backend, "DynamicTopology(backend='numpy')"
        )
        if np is not None and len(items) > 1:
            # The initial bulk neighbour pass as array ops — the same
            # closed-ball edge set the grid sweep below produces (the
            # kernel re-decides threshold-adjacent pairs with the
            # scalar test, so the sets are identical).  Rows arrive
            # sorted, which also seeds the snapshot tuple cache.
            self._neighbors = {}
            keys = [key for key, _ in items]
            axs = np.fromiter(
                (p.x for _, p in items), dtype=np.float64, count=len(items)
            )
            ays = np.fromiter(
                (p.y for _, p in items), dtype=np.float64, count=len(items)
            )
            a, b = _construct.unit_disk_pairs(np, axs, ays, radius)
            ids_arr = np.asarray(keys, dtype=np.int64)
            src = np.concatenate((a, b))
            dst = np.concatenate((b, a))
            order = np.lexsort((dst, src))
            flat_ids = ids_arr[dst[order]].tolist()
            counts = np.bincount(src, minlength=len(items))
            offs = np.zeros(len(items) + 1, dtype=np.int64)
            np.cumsum(counts, out=offs[1:])
            offs_l = offs.tolist()
            for i, key in enumerate(keys):
                row = flat_ids[offs_l[i] : offs_l[i + 1]]
                self._neighbors[key] = set(row)
                self._sorted[key] = tuple(row)
        else:
            self._neighbors = {key: set() for key, _ in items}
            for a, b in self._grid.all_pairs_within(radius):
                self._neighbors[a].add(b)
                self._neighbors[b].add(a)
        self._node_cache: dict[NodeId, Node] = {}
        self._edge_ids: set[NodeId] = set()
        self._snapshot: WasnGraph | None = None
        self._subscribers: list[DeltaSubscriber] = []

    @classmethod
    def from_graph(
        cls,
        graph: WasnGraph,
        edge_detector: EdgeDetector | None = None,
        area: Rect | None = None,
        backend: str = "auto",
    ) -> "DynamicTopology":
        """Adopt an existing unit-disk graph (ids and flags preserved).

        The adjacency is re-derived from the positions — identical for
        any graph that satisfies the unit-disk property, which every
        ``build_unit_disk_graph`` product (and any ``without_nodes``
        restriction of one) does.  Without an ``edge_detector`` the
        graph's current edge-node flags are carried into snapshots
        as-is; with one, detection re-runs per snapshot.
        """
        topo = cls(
            {u: graph.position(u) for u in graph.node_ids},
            graph.radius,
            edge_detector=edge_detector,
            area=area,
            backend=backend,
        )
        topo._edge_ids = {
            u for u in graph.node_ids if graph.is_edge_node(u)
        }
        return topo

    # -- inspection -----------------------------------------------------

    @property
    def radius(self) -> float:
        """The common communication range."""
        return self._radius

    def __len__(self) -> int:
        """Number of *alive* nodes."""
        return len(self._neighbors)

    def __contains__(self, key: NodeId) -> bool:
        """Whether the id exists in the universe (alive or down)."""
        return key in self._positions

    @property
    def alive_ids(self) -> tuple[NodeId, ...]:
        """Ids of alive nodes, ascending (deterministic iteration)."""
        return tuple(sorted(self._neighbors))

    @property
    def down_ids(self) -> tuple[NodeId, ...]:
        """Ids of failed nodes, ascending."""
        return tuple(sorted(self._down))

    def is_down(self, key: NodeId) -> bool:
        self._require_known(key)
        return key in self._down

    def position(self, key: NodeId) -> Point:
        """Current (or last known, for down nodes) position of ``key``."""
        return self._positions[key]

    def neighbors(self, key: NodeId) -> tuple[NodeId, ...]:
        """Alive neighbours of an alive node, ascending."""
        if key not in self._neighbors:
            self._require_known(key)
            raise KeyError(f"node {key} is down")
        return self._sorted_neighbors(key)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self._neighbors.get(u, ())

    # -- subscription ---------------------------------------------------

    def subscribe(self, subscriber: DeltaSubscriber) -> DeltaSubscriber:
        """Register a callback invoked after every non-empty mutation.

        Subscribers run synchronously, in registration order, *after*
        the topology reflects the delta — reading :attr:`graph` from a
        subscriber sees the new state.  Returns the subscriber, so it
        doubles as a decorator.
        """
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: DeltaSubscriber) -> None:
        self._subscribers.remove(subscriber)

    # -- mutation -------------------------------------------------------

    def move(self, key: NodeId, position: Point) -> TopologyDelta:
        """Relocate one node, updating only its incident edges."""
        return self.move_many(((key, position),))

    def move_many(
        self,
        moves: Iterable[tuple[NodeId, Point]] | Mapping[NodeId, Point],
    ) -> TopologyDelta:
        """Relocate a batch of nodes (e.g. one mobility epoch).

        Down nodes may move too — their stored position updates and
        they reappear at it when restored — but only alive nodes touch
        the edge set.  No-op moves (identical position) are skipped.
        """
        if isinstance(moves, Mapping):
            moves = moves.items()
        moves = list(moves)
        # Validate the whole batch before mutating anything: a bad id
        # mid-batch must not leave earlier moves applied with no delta
        # delivered (tracked routers would silently go stale).
        for key, _ in moves:
            self._require_known(key)
        rec = _DeltaRecorder()
        self._snapshot = None
        for key, position in moves:
            if position == self._positions[key]:
                continue
            rec.note_move(key, self._positions[key])
            self._positions[key] = position
            self._node_cache.pop(key, None)
            if key in self._down:
                continue
            old_neighbors = self._neighbors[key]
            self._grid.move(key, position)
            new_neighbors = set(
                self._grid.neighbors_within(
                    position, self._radius, exclude=key
                )
            )
            if new_neighbors == old_neighbors:
                continue
            for v in old_neighbors - new_neighbors:
                self._neighbors[v].discard(key)
                self._sorted.pop(v, None)
                rec.remove_edge(_edge(key, v))
            for v in new_neighbors - old_neighbors:
                self._neighbors[v].add(key)
                self._sorted.pop(v, None)
                rec.add_edge(_edge(key, v))
            self._neighbors[key] = new_neighbors
            self._sorted.pop(key, None)
        return self._commit(rec)

    def fail(self, key: NodeId) -> TopologyDelta:
        """Take one node down (with all its incident edges)."""
        return self.fail_many((key,))

    def fail_many(self, keys: Iterable[NodeId]) -> TopologyDelta:
        """Take a batch of nodes down, atomically.

        Failing an unknown, already-down or batch-duplicated node
        raises ``KeyError`` (mirroring
        :func:`repro.network.failures.fail_nodes`): a typo'd id
        silently failing nothing would fake a "with failures" run.
        The whole batch is validated before any node goes down, so a
        rejected batch leaves the topology — and every subscriber —
        exactly as it was.
        """
        keys = list(keys)
        going_down: set[NodeId] = set()
        for key in keys:
            self._require_known(key)
            if key in self._down or key in going_down:
                raise KeyError(f"node {key} is already down")
            going_down.add(key)
        rec = _DeltaRecorder()
        self._snapshot = None
        for key in keys:
            for v in self._neighbors[key]:
                self._neighbors[v].discard(key)
                self._sorted.pop(v, None)
                rec.remove_edge(_edge(key, v))
            del self._neighbors[key]
            self._sorted.pop(key, None)
            # The edge flag deliberately stays in _edge_ids: a node
            # that fails and comes back keeps its flag in no-detector
            # mode; with a detector the next snapshot re-decides.
            self._node_cache.pop(key, None)
            self._grid.remove(key)
            self._down.add(key)
            rec.down.append(key)
        return self._commit(rec)

    def restore(
        self, key: NodeId, position: Point | None = None
    ) -> TopologyDelta:
        """Bring one failed node back, optionally at a new position."""
        positions = None if position is None else {key: position}
        return self.restore_many((key,), positions)

    def restore_many(
        self,
        keys: Iterable[NodeId],
        positions: Mapping[NodeId, Point] | None = None,
    ) -> TopologyDelta:
        """Bring a batch of failed nodes back up, atomically.

        Each node reappears at its stored position unless ``positions``
        overrides it.  Restoring an alive (or batch-duplicated) node
        raises ``KeyError`` — before any node of the batch comes up.
        """
        keys = list(keys)
        coming_up: set[NodeId] = set()
        for key in keys:
            self._require_known(key)
            if key not in self._down or key in coming_up:
                raise KeyError(f"node {key} is not down")
            coming_up.add(key)
        rec = _DeltaRecorder()
        self._snapshot = None
        for key in keys:
            if positions is not None and key in positions:
                if positions[key] != self._positions[key]:
                    rec.note_move(key, self._positions[key])
                self._positions[key] = positions[key]
            position = self._positions[key]
            self._down.discard(key)
            self._node_cache.pop(key, None)
            self._grid.insert(key, position)
            new_neighbors = set(
                self._grid.neighbors_within(
                    position, self._radius, exclude=key
                )
            )
            self._neighbors[key] = new_neighbors
            self._sorted.pop(key, None)
            for v in new_neighbors:
                self._neighbors[v].add(key)
                self._sorted.pop(v, None)
                rec.add_edge(_edge(key, v))
            rec.up.append(key)
        return self._commit(rec)

    # -- snapshots ------------------------------------------------------

    @property
    def graph(self) -> WasnGraph:
        """The current topology as an immutable ``WasnGraph``.

        Cached until the next mutation; successive snapshots share the
        unchanged per-node adjacency tuples and ``Node`` records, so a
        snapshot after a local perturbation costs O(n), not O(n * k).
        """
        if self._snapshot is None:
            self._snapshot = self._build_snapshot()
        return self._snapshot

    def _build_snapshot(self) -> WasnGraph:
        alive = sorted(self._neighbors)
        adjacency = {u: self._sorted_neighbors(u) for u in alive}
        graph = self._snapshot_graph(alive, adjacency)
        if self._detector is None:
            return graph
        edge_ids = self._detector.detect(graph, self._area)
        # Compare against the *alive* flags only: down nodes keep
        # their last flag (irrelevant to this snapshot, meaningful to
        # a no-detector restore) and must not force rebuild loops.
        alive_flagged = {u for u in self._edge_ids if u in self._neighbors}
        if edge_ids != alive_flagged:
            for u in edge_ids ^ alive_flagged:
                self._node_cache.pop(u, None)
            self._edge_ids = (self._edge_ids - alive_flagged) | edge_ids
            graph = self._snapshot_graph(alive, adjacency)
        return graph

    def _snapshot_graph(
        self,
        alive: list[NodeId],
        adjacency: dict[NodeId, tuple[NodeId, ...]],
    ) -> WasnGraph:
        """One immutable snapshot over the incrementally maintained rows.

        The adjacency values are the *same* tuple objects the 3x3-cell
        local recompute maintains — rebuilt only where a delta touched
        them, shared otherwise — and they feed the snapshot's columnar
        core directly when (and only when) something columnar asks:
        ``_sorted_rows`` vouches for their ordering, so the lazy
        dict → core assembly skips its O(E) ordering sweep and a
        snapshot that is never batch-routed never assembles columns
        at all.
        """
        graph = WasnGraph(
            [self._node(u) for u in alive],
            adjacency,
            self._radius,
            validate=False,
        )
        graph._sorted_rows = True  # rows sorted by construction
        return graph

    # -- internals ------------------------------------------------------

    def _require_known(self, key: NodeId) -> None:
        if key not in self._positions:
            raise KeyError(f"unknown node {key}")

    def _sorted_neighbors(self, key: NodeId) -> tuple[NodeId, ...]:
        cached = self._sorted.get(key)
        if cached is None:
            cached = tuple(sorted(self._neighbors[key]))
            self._sorted[key] = cached
        return cached

    def _node(self, key: NodeId) -> Node:
        cached = self._node_cache.get(key)
        if cached is None:
            cached = Node(
                key, self._positions[key], key in self._edge_ids
            )
            self._node_cache[key] = cached
        return cached

    def _commit(self, rec: _DeltaRecorder) -> TopologyDelta:
        delta = rec.freeze(self._positions)
        if delta:
            for subscriber in list(self._subscribers):
                subscriber(delta)
        return delta

    def __repr__(self) -> str:
        return (
            f"DynamicTopology(alive={len(self._neighbors)}, "
            f"down={len(self._down)}, radius={self._radius})"
        )
