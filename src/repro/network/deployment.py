"""Deployment models: where the sensors land.

Section 5 evaluates two deployment models over a 200 m x 200 m interest
area:

* **IA (ideal)** — "nodes will be deployed uniformly ... the hole is
  only caused by a sparse deployment";
* **FA (forbidden areas)** — uniform deployment with random forbidden
  areas "where no nodes can be deployed", producing large holes.

Both are exposed as deployment *strategies* plus two one-call
convenience functions used by the experiment harness.  Two further
strategies (jittered grid, Poisson-disk) are provided for tests and for
studying the algorithms under regular / blue-noise placement, which the
paper's future-work section gestures at ("search for a new balance
point").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.geometry import Point, Rect
from repro.network.obstacles import Obstacle, random_obstacle_field

__all__ = [
    "DeploymentResult",
    "Deployment",
    "GridDeployment",
    "PoissonDiskDeployment",
    "UniformDeployment",
    "deploy_forbidden_area_model",
    "deploy_uniform_model",
]

# Rejection sampling bails out after this many consecutive failed draws
# per point; hitting it means the obstacles cover (nearly) all of the
# area and the configuration is unusable.
_MAX_REJECTIONS_PER_POINT = 10_000


@dataclass(frozen=True)
class DeploymentResult:
    """Outcome of a deployment: positions plus the generating context."""

    positions: tuple[Point, ...]
    area: Rect
    obstacles: tuple[Obstacle, ...] = ()
    model: str = "uniform"

    def __len__(self) -> int:
        return len(self.positions)


class Deployment(Protocol):
    """A placement strategy for ``count`` sensors."""

    area: Rect

    def sample(self, count: int, rng: random.Random) -> list[Point]:
        """Draw ``count`` positions (all outside any forbidden area)."""
        ...


def _clear_of_obstacles(p: Point, obstacles: Sequence[Obstacle]) -> bool:
    return all(not obstacle.contains(p) for obstacle in obstacles)


@dataclass(frozen=True)
class UniformDeployment:
    """Uniform random placement, rejecting draws inside forbidden areas.

    With ``obstacles=()`` this is exactly the paper's IA model; with a
    non-empty obstacle field it is the FA model.
    """

    area: Rect
    obstacles: tuple[Obstacle, ...] = ()

    def sample(self, count: int, rng: random.Random) -> list[Point]:
        if count < 0:
            raise ValueError("count must be non-negative")
        points: list[Point] = []
        for _ in range(count):
            for _attempt in range(_MAX_REJECTIONS_PER_POINT):
                p = Point(
                    rng.uniform(self.area.x_min, self.area.x_max),
                    rng.uniform(self.area.y_min, self.area.y_max),
                )
                if _clear_of_obstacles(p, self.obstacles):
                    points.append(p)
                    break
            else:
                raise RuntimeError(
                    "deployment rejection sampling exhausted: forbidden "
                    "areas cover (nearly) the whole interest area"
                )
        return points


@dataclass(frozen=True)
class GridDeployment:
    """Near-regular lattice with uniform jitter.

    ``jitter`` is the maximum per-axis displacement as a fraction of the
    lattice spacing; ``0`` gives a perfect grid (handy for hand-checked
    routing tests), ``0.5`` lets adjacent cells' nodes swap order.
    Lattice sites falling inside obstacles are dropped, so the returned
    list may be shorter than ``count`` under heavy obstruction.
    """

    area: Rect
    jitter: float = 0.0
    obstacles: tuple[Obstacle, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def sample(self, count: int, rng: random.Random) -> list[Point]:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        aspect = self.area.width / self.area.height if self.area.height else 1.0
        ny = max(1, round(math.sqrt(count / max(aspect, 1e-9))))
        nx = max(1, math.ceil(count / ny))
        dx = self.area.width / nx
        dy = self.area.height / ny
        points: list[Point] = []
        for j in range(ny):
            for i in range(nx):
                if len(points) == count:
                    return points
                base = Point(
                    self.area.x_min + (i + 0.5) * dx,
                    self.area.y_min + (j + 0.5) * dy,
                )
                p = Point(
                    base.x + rng.uniform(-self.jitter, self.jitter) * dx,
                    base.y + rng.uniform(-self.jitter, self.jitter) * dy,
                )
                p = self.area.clamp(p)
                if _clear_of_obstacles(p, self.obstacles):
                    points.append(p)
        return points


@dataclass(frozen=True)
class PoissonDiskDeployment:
    """Dart-throwing placement with a minimum pairwise separation.

    Blue-noise deployments avoid the density spikes of uniform sampling
    and therefore have markedly fewer sparse-deployment holes at equal
    node count; the ablation benches use this to separate "hole caused
    by obstacle" from "hole caused by randomness".
    """

    area: Rect
    min_separation: float
    obstacles: tuple[Obstacle, ...] = ()

    def __post_init__(self) -> None:
        if self.min_separation <= 0:
            raise ValueError("min_separation must be positive")

    def sample(self, count: int, rng: random.Random) -> list[Point]:
        if count < 0:
            raise ValueError("count must be non-negative")
        from repro.network.spatial import SpatialGrid

        grid = SpatialGrid(cell_size=self.min_separation)
        points: list[Point] = []
        failures = 0
        while len(points) < count and failures < _MAX_REJECTIONS_PER_POINT:
            p = Point(
                rng.uniform(self.area.x_min, self.area.x_max),
                rng.uniform(self.area.y_min, self.area.y_max),
            )
            if not _clear_of_obstacles(p, self.obstacles):
                failures += 1
                continue
            clash = next(
                grid.neighbors_within(p, self.min_separation), None
            )
            if clash is not None:
                failures += 1
                continue
            grid.insert(len(points), p)
            points.append(p)
            failures = 0
        return points


def deploy_uniform_model(
    count: int, area: Rect, rng: random.Random
) -> DeploymentResult:
    """The paper's IA model: ``count`` uniform nodes, no obstacles."""
    deployment = UniformDeployment(area)
    return DeploymentResult(
        positions=tuple(deployment.sample(count, rng)),
        area=area,
        obstacles=(),
        model="IA",
    )


def deploy_forbidden_area_model(
    count: int,
    area: Rect,
    rng: random.Random,
    obstacle_count: int = 3,
    min_obstacle_size: float = 20.0,
    max_obstacle_size: float = 60.0,
    shapes: Sequence[str] = ("rect", "disc", "l"),
) -> DeploymentResult:
    """The paper's FA model: uniform nodes avoiding random forbidden areas.

    The obstacle field is drawn first (from the same ``rng``), then the
    nodes are placed around it; see DESIGN.md for why this parameterised
    generator stands in for the paper's unpublished one.
    """
    obstacles = tuple(
        random_obstacle_field(
            area,
            obstacle_count,
            rng,
            min_size=min_obstacle_size,
            max_size=max_obstacle_size,
            shapes=shapes,
        )
    )
    deployment = UniformDeployment(area, obstacles)
    return DeploymentResult(
        positions=tuple(deployment.sample(count, rng)),
        area=area,
        obstacles=obstacles,
        model="FA",
    )
