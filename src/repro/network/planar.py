"""Graph planarization: Gabriel graph and relative neighbourhood graph.

The classic perimeter-routing phase (Bose, Morin, Stojmenovic — the
paper's reference [2], and GPSR) traverses the faces of "the planar
graph that represents the same connectivity as the original network".
For unit-disk graphs the standard local constructions are:

* the **Gabriel graph (GG)**: keep edge ``uv`` iff no other node lies
  inside the closed disc with diameter ``uv``;
* the **relative neighbourhood graph (RNG)**: keep ``uv`` iff no node
  ``w`` satisfies ``max(|uw|, |vw|) < |uv|`` (the "lune" test).

Both are computable from single-hop neighbourhood information only (any
witness node inside the Gabriel disc / lune of an edge is a neighbour
of both endpoints), preserve connectivity of the unit-disk graph, and
are planar — RNG ⊆ GG ⊆ UDG.  The GF router's recovery phase runs the
right-hand rule on one of these subgraphs.
"""

from __future__ import annotations

from repro.geometry import midpoint
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["gabriel_graph", "relative_neighborhood_graph"]

# Numerical slack for the witness tests.  The Gabriel test uses the
# *closed* disc (a witness exactly on the circle removes the edge):
# four exactly co-circular nodes — e.g. a perfect square, common in
# grid fixtures — would otherwise keep both crossing diagonals and
# break planarity.  Connectivity is still preserved because a boundary
# witness w of edge uv satisfies |uw|, |wv| < |uv| strictly, so the
# usual shortest-detour induction goes through.  The RNG lune test
# stays *open* (strict), the standard definition, so that equilateral
# triangles are not disconnected; RNG(open) remains a subgraph of
# GG(closed).
_EPS = 1e-9


def gabriel_graph(graph: WasnGraph) -> dict[NodeId, tuple[NodeId, ...]]:
    """Adjacency of the Gabriel subgraph of ``graph``.

    Edge ``uv`` survives iff no third node lies inside the closed
    circle having ``uv`` as diameter.  Witnesses are searched among
    ``N(u)`` only: any point inside the Gabriel disc of ``uv`` is within
    ``|uv| <= radius`` of both ``u`` and ``v``, hence a neighbour of
    both — this is what makes the construction local/distributed.
    """
    kept: dict[NodeId, list[NodeId]] = {u: [] for u in graph.node_ids}
    for u, v in graph.edges():
        pu, pv = graph.position(u), graph.position(v)
        center = midpoint(pu, pv)
        radius_sq = center.distance_squared_to(pu)
        witness = False
        for w in graph.neighbors(u):
            if w == v:
                continue
            if graph.position(w).distance_squared_to(center) <= radius_sq + _EPS:
                witness = True
                break
        if not witness:
            kept[u].append(v)
            kept[v].append(u)
    return {u: tuple(sorted(vs)) for u, vs in kept.items()}


def relative_neighborhood_graph(
    graph: WasnGraph,
) -> dict[NodeId, tuple[NodeId, ...]]:
    """Adjacency of the RNG subgraph of ``graph``.

    Edge ``uv`` survives iff no node ``w`` is strictly closer to both
    endpoints than they are to each other.  The RNG is sparser than the
    Gabriel graph (fewer faces to traverse) at the cost of longer
    perimeter detours; the GF router accepts either.
    """
    kept: dict[NodeId, list[NodeId]] = {u: [] for u in graph.node_ids}
    for u, v in graph.edges():
        pu, pv = graph.position(u), graph.position(v)
        length_sq = pu.distance_squared_to(pv)
        witness = False
        for w in graph.neighbors(u):
            if w == v:
                continue
            pw = graph.position(w)
            if (
                pw.distance_squared_to(pu) < length_sq - _EPS
                and pw.distance_squared_to(pv) < length_sq - _EPS
            ):
                witness = True
                break
        if not witness:
            kept[u].append(v)
            kept[v].append(u)
    return {u: tuple(sorted(vs)) for u, vs in kept.items()}
