"""Deterministic work-unit plans: the contract between driver and worker.

A plan is a Study's grid flattened to self-contained units — one cell
per unit, each carrying the fully resolved
:class:`~repro.api.scenario.Scenario` (as its strict wire document,
see :mod:`repro.serve.wire`) and the cell's scenario-fingerprint cache
key.  That pair is the whole protocol: a worker anywhere evaluates the
scenario and files the result under the key; the driver merges keys
back into its cache.  Bit-identity across hosts falls out of the key
itself — a scenario fingerprint digests the complete scenario *and*
the package source digest, so a worker running different code computes
*different* keys, which the worker detects up front (it re-derives
every key and refuses the shard on the first mismatch) and the bundle
merge refuses again at the manifest level.

Plans serialise to plain JSON (:func:`write_plan` / :func:`read_plan`)
so they travel over ssh, shared filesystems and job-array submission
scripts unchanged; :func:`shard_plan` deals units round-robin so axes
that correlate with cost (e.g. node count, usually an early axis)
spread evenly across shards.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.api.scenario import Scenario
from repro.experiments.cache import ResultCache
from repro.serve.wire import scenario_from_dict, scenario_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.api.study import Study

__all__ = [
    "PLAN_SCHEMA",
    "PlanError",
    "PlanUnit",
    "StudyPlan",
    "compile_plan",
    "read_plan",
    "registry_identity",
    "shard_plan",
    "write_plan",
]

PLAN_SCHEMA = 1

_PLAN_KIND = "repro-dist-plan"


class PlanError(ValueError):
    """A Study that cannot be compiled into a distributable plan."""


@dataclass(frozen=True)
class PlanUnit:
    """One independently computable cell of a distributed plan.

    ``cache_key`` is the cell's scenario fingerprint — the address the
    worker files its result under, and the address the driver's merge
    and final assembly read it back from.  ``label`` is the cell's
    axis-coordinate tag; ``description`` the classic progress-line
    identity.
    """

    index: int
    cache_key: str
    scenario: Scenario
    label: str
    description: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "cache_key": self.cache_key,
            "scenario": scenario_to_dict(self.scenario),
            "label": self.label,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict, where: str) -> "PlanUnit":
        try:
            return cls(
                index=int(data["index"]),
                cache_key=str(data["cache_key"]),
                scenario=scenario_from_dict(data["scenario"]),
                label=str(data.get("label", "")),
                description=str(data.get("description", "")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise PlanError(f"{where}: invalid plan unit: {error}")


@dataclass(frozen=True)
class StudyPlan:
    """An ordered set of plan units plus the identities binding them.

    ``code`` is the package source digest of the compiling side;
    ``registry`` the identity of the router selections the plan's
    scenarios resolve (see :func:`registry_identity`).  ``total`` is
    the *full* grid size — a pruned or sharded plan remembers how big
    the study it came from is, so progress totals stay honest.
    """

    units: tuple[PlanUnit, ...]
    code: str
    registry: str
    total: int
    shard: str | None = None  # e.g. "shard_2" for sharded sub-plans

    def __len__(self) -> int:
        return len(self.units)

    def keys(self) -> tuple[str, ...]:
        return tuple(unit.cache_key for unit in self.units)

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "kind": _PLAN_KIND,
            "code": self.code,
            "registry": self.registry,
            "total": self.total,
            "shard": self.shard,
            "units": [unit.to_dict() for unit in self.units],
        }

    @classmethod
    def from_dict(cls, data: dict, where: str = "plan") -> "StudyPlan":
        if not isinstance(data, dict):
            raise PlanError(f"{where}: not a JSON object")
        if data.get("kind") != _PLAN_KIND:
            raise PlanError(
                f"{where}: not a dist plan (kind={data.get('kind')!r})"
            )
        if data.get("schema") != PLAN_SCHEMA:
            raise PlanError(
                f"{where}: plan schema {data.get('schema')!r} does not "
                f"match this installation's {PLAN_SCHEMA}"
            )
        raw_units = data.get("units")
        if not isinstance(raw_units, list):
            raise PlanError(f"{where}: units must be an array")
        units = tuple(
            PlanUnit.from_dict(raw, f"{where}.units[{i}]")
            for i, raw in enumerate(raw_units)
        )
        return cls(
            units=units,
            code=str(data.get("code", "")),
            registry=str(data.get("registry", "")),
            total=int(data.get("total", len(units))),
            shard=data.get("shard"),
        )


def registry_identity(scenarios: Sequence[Scenario], registry=None) -> str:
    """One digest over every router selection the scenarios make.

    Each scenario's selection fingerprint already pins the selected
    factories' sources and options; folding the distinct fingerprints
    into one plan-level identity gives the worker and the bundle merge
    a single, cheap equality check with a *located* error ("this host
    resolves router names differently") instead of a silent
    every-key-misses outcome.
    """
    from repro.api.registry import default_registry

    registry = registry if registry is not None else default_registry
    selections = set()
    for scenario in scenarios:
        fingerprint = registry.fingerprint(
            scenario.routers or None, scenario.router_options
        )
        selections.add("-" if fingerprint is None else fingerprint)
    payload = ";".join(sorted(selections))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def compile_plan(study: "Study", cache: ResultCache | None = None) -> StudyPlan:
    """A Study's grid as a distributable plan, optionally pruned.

    Every cell must have a cacheable identity — the cache *is* the
    distributed result channel, so a cell whose scenario cannot be
    fingerprinted (anonymous router factory, non-JSON option value)
    raises :class:`PlanError` naming the cell rather than silently
    computing results that cannot come back.

    ``cache`` prunes: cells whose entry is already present locally are
    dropped from the units (the plan's ``total`` still counts them),
    which is both resumability — an interrupted distributed run re-
    plans to exactly the missing cells — and the no-double-count rule
    for progress totals.
    """
    from repro.api.study import _describe, scenario_fingerprint
    from repro.experiments.cache import _code_digest

    units = []
    scenarios = []
    index = 0
    plan = study.plan()
    for cell, scenario in plan:
        key = scenario_fingerprint(scenario, study.registry)
        if key is None:
            raise PlanError(
                f"cell {cell.label() or 'base'!s} has no cacheable "
                "identity (anonymous router factory or non-JSON option "
                "value); distributed execution needs every cell "
                "addressable in the result cache"
            )
        scenarios.append(scenario)
        if cache is not None and cache.has(key):
            index += 1
            continue
        units.append(
            PlanUnit(
                index=index,
                cache_key=key,
                scenario=scenario,
                label=cell.label(),
                description=_describe(cell, scenario),
            )
        )
        index += 1
    return StudyPlan(
        units=tuple(units),
        code=_code_digest(),
        registry=registry_identity(scenarios, study.registry),
        total=len(plan),
    )


def shard_plan(plan: StudyPlan, shards: int) -> list[StudyPlan]:
    """Deal the plan's units into ``shards`` round-robin sub-plans.

    Round-robin (not contiguous slices) because unit cost usually
    follows an axis — contiguous slicing would hand one host all the
    densest cells.  Empty shards are dropped, so the result may be
    shorter than ``shards``; unit order within a shard preserves plan
    order, keeping worker-side progress lines readable.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    dealt: list[list[PlanUnit]] = [[] for _ in range(shards)]
    for position, unit in enumerate(plan.units):
        dealt[position % shards].append(unit)
    return [
        StudyPlan(
            units=tuple(units),
            code=plan.code,
            registry=plan.registry,
            total=plan.total,
            shard=f"shard_{i}",
        )
        for i, units in enumerate(dealt)
        if units
    ]


def write_plan(plan: StudyPlan, path) -> Path:
    """Write a plan (or shard) as one JSON document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(plan.to_dict(), sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def read_plan(path) -> StudyPlan:
    """Load a plan document, validating shape and schema."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise PlanError(f"{path}: cannot read plan: {error}")
    except ValueError as error:
        raise PlanError(f"{path}: plan is not valid JSON: {error}")
    return StudyPlan.from_dict(data, where=str(path))
