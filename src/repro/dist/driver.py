"""Cluster drivers: execute shard plans, return cache bundles.

A driver does exactly one thing — given shard-plan files, get each one
evaluated by a ``dist-worker`` somewhere and return the resulting
bundle paths.  Everything else (planning, pruning, merging, assembly)
is :func:`run_study`, so drivers stay small and a new cluster flavour
is one class implementing :class:`ClusterDriver`.

:class:`LocalSubprocessDriver` is the reference implementation — N
worker *processes* on this machine, exercising the full protocol
(plan files, JSON progress lines, kill/resume, bundle merge) with
nothing but ``subprocess``, which is what the CI ``dist-smoke`` job
and the test suite drive.  :class:`~repro.dist.ssh.SSHDriver` and
:class:`~repro.dist.jobarray.JobArrayDriver` take the same protocol
across real hosts.

Progress: workers stream one JSON line per event; the
:class:`ShardMonitor` folds every shard's stream into the standard
:class:`~repro.experiments.progress.ProgressEvent` feed — one
completion event per cell *across all hosts*, with the
``cached``/``computed`` split seeded by the cells pruned before
dispatch, so totals never double-count pre-dispatch cache hits (and a
retried shard's resumed cells, replayed by its second attempt, are
deduplicated by cache key).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.dist import worker as worker_module
from repro.dist.plan import StudyPlan, compile_plan, shard_plan, write_plan
from repro.experiments.cache import (
    BundleStats,
    ResultCache,
    default_cache,
    import_bundle,
)
from repro.experiments.engine import ExperimentEngine
from repro.experiments.progress import Progress, ProgressEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.study import Study, StudyResult

__all__ = [
    "ClusterDriver",
    "ClusterError",
    "DistStats",
    "LocalSubprocessDriver",
    "ShardMonitor",
    "execute_plan",
    "run_study",
]


class ClusterError(RuntimeError):
    """A shard could not be completed by the cluster."""


class ShardMonitor:
    """Aggregates every worker's progress stream into one event feed.

    Thread-safe (drivers pump worker stdout from one thread per
    worker).  Cells are counted once by cache key, whatever host or
    attempt reports them — a requeued shard replaying its resumed
    entries does not inflate the totals.
    """

    def __init__(
        self, progress: Progress | None, total: int, cached: int = 0
    ) -> None:
        self._progress = progress
        self.total = total
        self.cached = cached  # pruned before dispatch: cache hits
        self.computed = 0  # unique cells completed by workers
        self._seen: set[str] = set()
        self._lock = threading.Lock()
        self._started = time.monotonic()

    @property
    def completed(self) -> int:
        return self.cached + self.computed

    def _emit(self, event: ProgressEvent) -> None:
        if self._progress is not None:
            self._progress(event)

    def note(self, text: str) -> None:
        with self._lock:
            completed, cached, computed = (
                self.completed, self.cached, self.computed,
            )
        self._emit(
            ProgressEvent.note(
                text,
                completed,
                self.total,
                time.monotonic() - self._started,
                cached=cached,
                computed=computed,
            )
        )

    def line(self, shard: str, raw: str) -> None:
        """Ingest one raw stdout line from a worker."""
        raw = raw.rstrip("\n")
        if not raw:
            return
        try:
            event = json.loads(raw)
            if not isinstance(event, dict):
                raise ValueError
        except ValueError:
            # Anything non-protocol (a traceback, a stray print)
            # surfaces verbatim — shard-tagged, never swallowed.
            self.note(f"[{shard}] {raw}")
            return
        kind = event.get("ev")
        if kind == "unit":
            key = event.get("key")
            with self._lock:
                if not isinstance(key, str) or key in self._seen:
                    return
                self._seen.add(key)
                self.computed += 1
                completed, cached, computed = (
                    self.completed, self.cached, self.computed,
                )
            elapsed = time.monotonic() - self._started
            eta = None
            if computed and completed < self.total:
                eta = (elapsed / computed) * (self.total - completed)
            self._emit(
                ProgressEvent.unit(
                    "computed",
                    f"[{shard}] {event.get('description', '')}",
                    completed,
                    self.total,
                    elapsed,
                    eta,
                    cached=cached,
                    computed=computed,
                )
            )
        elif kind == "error":
            self.note(f"[{shard}] {event.get('detail', 'worker error')}")
        elif kind == "done":
            self.note(
                f"[{shard}] shard complete: "
                f"{event.get('computed', '?')} computed, "
                f"{event.get('skipped', 0)} resumed"
            )
        # "start"/"limit" events carry nothing the totals need.


@runtime_checkable
class ClusterDriver(Protocol):
    """The one method a cluster flavour must provide.

    ``shards`` are plan files (:func:`repro.dist.plan.write_plan`
    output); the driver must get each evaluated by a ``dist-worker``
    and return one local bundle path per shard — a directory or
    tarball importable by
    :func:`repro.experiments.cache.import_bundle`.  Worker stdout
    lines go to ``monitor.line(shard_name, line)`` when a monitor is
    given; unrecoverable shards raise :class:`ClusterError`.
    """

    def run(
        self,
        shards: Sequence[Path],
        bundle_root: Path,
        monitor: ShardMonitor | None = None,
    ) -> list[Path]: ...  # pragma: no cover - protocol signature


class LocalSubprocessDriver:
    """N local worker processes — the reference :class:`ClusterDriver`.

    Each shard runs as ``python -m repro.cli dist-worker`` with its
    stdout pumped into the monitor; a worker that dies (crash, OOM
    kill, ``kill -9``) is relaunched on the *same* bundle directory up
    to ``retries`` more times, so the relaunch resumes from the
    partial bundle instead of recomputing.  An identity refusal (exit
    code 4) is never retried — the plan itself is wrong for this
    installation.
    """

    def __init__(
        self,
        jobs: int | None = None,
        python: str | None = None,
        retries: int = 2,
        extra_env: dict[str, str] | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.python = python or sys.executable
        self.retries = retries
        self.extra_env = dict(extra_env or {})

    def command(self, shard: Path, bundle_dir: Path) -> list[str]:
        return [
            self.python,
            "-m",
            "repro.cli",
            "dist-worker",
            "--plan",
            str(shard),
            "--bundle",
            str(bundle_dir),
        ]

    def _run_shard(
        self,
        shard: Path,
        bundle_dir: Path,
        monitor: ShardMonitor | None,
    ) -> Path:
        name = shard.stem
        attempts = self.retries + 1
        code: int | None = None
        for attempt in range(1, attempts + 1):
            process = subprocess.Popen(
                self.command(shard, bundle_dir),
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,  # tracebacks reach the monitor
                text=True,
                env={**os.environ, **self.extra_env},
            )
            assert process.stdout is not None
            for line in process.stdout:
                if monitor is not None:
                    monitor.line(name, line)
            code = process.wait()
            if code == 0:
                return bundle_dir
            if code == worker_module.EXIT_MISMATCH:
                raise ClusterError(
                    f"shard {name}: worker refused the plan (exit 4: "
                    "code/registry mismatch); retrying cannot help"
                )
            if attempt < attempts and monitor is not None:
                monitor.note(
                    f"[{name}] worker exited with code {code}; "
                    f"requeueing (attempt {attempt}/{attempts}) — the "
                    "partial bundle resumes"
                )
        raise ClusterError(
            f"shard {name} failed after {attempts} attempt(s) "
            f"(last exit code {code})"
        )

    def run(
        self,
        shards: Sequence[Path],
        bundle_root: Path,
        monitor: ShardMonitor | None = None,
    ) -> list[Path]:
        shards = [Path(shard) for shard in shards]
        bundle_root = Path(bundle_root)
        bundle_root.mkdir(parents=True, exist_ok=True)
        jobs = self.jobs if self.jobs is not None else len(shards)
        jobs = max(1, min(jobs, len(shards)))
        bundles = [bundle_root / shard.stem for shard in shards]
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(self._run_shard, shard, bundle, monitor)
                for shard, bundle in zip(shards, bundles)
            ]
            return [future.result() for future in futures]


@dataclass
class DistStats:
    """Accounting of one distributed run (see :func:`run_study`)."""

    total: int = 0  # grid cells in the study
    pre_cached: int = 0  # served from the local cache before dispatch
    shards: int = 0  # shard plans dispatched
    worker_cells: int = 0  # unique cells reported done by workers
    merged: int = 0  # bundle entries newly merged into the cache
    local_cells: int = 0  # computed locally during final assembly
    bundle: BundleStats | None = None  # raw merge accounting

    def describe(self) -> str:
        rate = 100.0 * self.pre_cached / self.total if self.total else 0.0
        return (
            f"{self.total} cells: {self.pre_cached} cached, "
            f"{self.worker_cells} from {self.shards} shard(s), "
            f"{self.local_cells} local ({rate:.0f}% cache hit rate)"
        )


def execute_plan(
    plan: StudyPlan,
    driver: ClusterDriver,
    cache: ResultCache,
    shards: int,
    workdir: Path | None = None,
    monitor: ShardMonitor | None = None,
) -> BundleStats:
    """Dispatch a (pruned) plan through ``driver`` and merge the bundles.

    The low-level half of :func:`run_study`: writes shard files under
    ``workdir`` (a temporary directory when ``None``), runs the
    driver, and imports every returned bundle into ``cache`` —
    verifying each against the plan's code digest and registry
    identity.  Returns the merge accounting.
    """
    if not plan.units:
        return BundleStats()
    own_tmp = None
    if workdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro_dist_")
        workdir = Path(own_tmp.name)
    try:
        workdir = Path(workdir)
        shard_paths = [
            write_plan(sub, workdir / "shards" / f"{sub.shard}.json")
            for sub in shard_plan(plan, shards)
        ]
        bundles = driver.run(shard_paths, workdir / "bundles", monitor)
        stats = BundleStats()
        for bundle in bundles:
            stats += import_bundle(cache, bundle, registry=plan.registry)
        if monitor is not None:
            monitor.note(
                f"[dist] merged {len(bundles)} bundle(s): "
                f"{stats.describe()}"
            )
        return stats
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


def run_study(
    study: "Study",
    driver: ClusterDriver | None = None,
    *,
    shards: int | None = None,
    cache: ResultCache | None = None,
    workdir: Path | None = None,
    progress: Progress | None = None,
    stats: DistStats | None = None,
) -> "StudyResult":
    """Evaluate a Study through a cluster driver; bit-identical results.

    The pipeline: compile the deterministic work-unit plan, prune
    cells already in ``cache`` (resumability — only missing cells
    dispatch), deal the rest into ``shards`` round-robin shard files,
    run them through ``driver`` (default: a
    :class:`LocalSubprocessDriver`), merge the returned bundles into
    the cache, then assemble the :class:`~repro.api.study.StudyResult`
    from the cache — the same entries a local ``Study.run()`` would
    have written, so the result is bit-identical to a single-host run
    (pinned by ``tools/check_dist_identity.py`` in CI).

    Cells a failed host never delivered (only possible when a driver
    returns partial bundles instead of raising) are computed locally
    during assembly — the run degrades, it does not lose work.  Pass a
    :class:`DistStats` as ``stats`` to receive the accounting.
    """
    from repro.api.study import StudyResult

    cache = default_cache() if cache is None else cache
    if cache is None or not cache.enabled:
        raise ValueError(
            "distributed execution needs an enabled result cache — the "
            "cache is the merge point bundles assemble into (set "
            "REPRO_CACHE_DIR / pass cache=ResultCache(...) instead of "
            "disabling it)"
        )
    stats = stats if stats is not None else DistStats()
    plan = compile_plan(study, cache=cache)
    stats.total = plan.total
    stats.pre_cached = plan.total - len(plan.units)
    monitor = ShardMonitor(progress, plan.total, cached=stats.pre_cached)
    if stats.pre_cached:
        monitor.note(
            f"[dist] {stats.pre_cached}/{plan.total} cell(s) already "
            "cached; dispatching the rest"
        )
    if plan.units:
        if driver is None:
            driver = LocalSubprocessDriver()
        if shards is None:
            shards = min(len(plan.units), os.cpu_count() or 1)
        stats.shards = min(shards, len(plan.units))
        stats.bundle = execute_plan(
            plan, driver, cache, shards, workdir=workdir, monitor=monitor
        )
        stats.merged = stats.bundle.merged
    stats.worker_cells = monitor.computed

    # Final assembly reads every cell back through the normal Study
    # stream — quietly (the monitor already reported each cell once;
    # replaying them as events is exactly the double-count this layer
    # is specified to avoid).  Anything still missing is computed here.
    engine = ExperimentEngine(jobs=1, cache=cache, progress=None)
    results = dict(study.stream_through(engine))
    stats.local_cells = engine.computed_units
    if stats.local_cells:
        monitor.note(
            f"[dist] {stats.local_cells} cell(s) missing from bundles; "
            "computed locally during assembly"
        )
    monitor.note(f"[dist] {stats.describe()}")
    return StudyResult(study, results)
