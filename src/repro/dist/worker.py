"""The headless shard worker behind ``repro-wasn dist-worker``.

One invocation evaluates one shard plan anywhere the package is
installed::

    repro-wasn dist-worker --plan shard_0.json --bundle out/shard_0/

and leaves ``out/shard_0/`` as an incremental cache bundle: manifest
first, then one atomically written entry per completed cell, then a
``done.json`` completion marker.  Because entries land atomically and
the manifest precedes them, a worker killed at *any* point leaves a
valid partial bundle — rerunning the same command resumes, skipping
cells whose entries already exist, and the driver's merge accepts the
partial bundle as-is.

Safety before work: the worker re-derives every unit's scenario
fingerprint with its *own* code and registry and refuses the shard on
the first mismatch (exit code 4) — a host running different repro
code or a diverged router registry would otherwise compute results
filed under keys the driver can never match.

Progress streams to stdout as one JSON line per event (``start`` /
``unit`` / ``done`` / ``error``), which the cluster drivers parse and
aggregate into per-host :class:`~repro.experiments.progress.ProgressEvent`
streams.  ``--limit N`` stops after N computed cells with exit code 75
(EX_TEMPFAIL), the "ran out of walltime, resubmit me" convention of
batch schedulers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "run_worker"]

#: Exit codes of the worker protocol (documented, driver-visible).
EXIT_OK = 0
EXIT_FAILURE = 3
EXIT_MISMATCH = 4  # wrong code/registry for this plan: do not retry
EXIT_INCOMPLETE = 75  # EX_TEMPFAIL: partial bundle, resubmit to resume


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wasn dist-worker",
        description=(
            "Evaluate one shard of a distributed study plan into a "
            "portable cache bundle."
        ),
    )
    parser.add_argument(
        "--plan",
        type=Path,
        required=True,
        metavar="SHARD.json",
        help="shard plan document (see repro.dist.plan)",
    )
    parser.add_argument(
        "--bundle",
        type=Path,
        required=True,
        metavar="DIR",
        help="bundle directory to create/resume (one per shard)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help=(
            "compute at most N cells this invocation, then exit 75 "
            "(resume by rerunning; for walltime-bounded batch slots)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-cell JSON progress lines",
    )
    return parser


def _emit(quiet: bool, **event) -> None:
    if quiet:
        return
    print(json.dumps(event, sort_keys=True), flush=True)


def run_worker(
    plan_path: Path,
    bundle_dir: Path,
    limit: int | None = None,
    quiet: bool = False,
) -> int:
    """Evaluate one shard; returns the worker's exit code."""
    # Imports are deferred so `dist-worker --help` and argparse errors
    # stay instant — the evaluation stack is only paid for real runs.
    from repro.api.study import _evaluate_cell, scenario_fingerprint
    from repro.dist.plan import PlanError, read_plan, registry_identity
    from repro.experiments.cache import (
        BundleError,
        _code_digest,
        bundle_add_entry,
        bundle_has_entry,
        encode_point,
        start_bundle,
    )

    try:
        plan = read_plan(plan_path)
    except PlanError as error:
        _emit(quiet, ev="error", detail=str(error))
        print(f"dist-worker: {error}", file=sys.stderr)
        return EXIT_FAILURE

    # -- identity gate: refuse work this host cannot file correctly ----
    local_code = _code_digest()
    if plan.code != local_code:
        detail = (
            f"{plan_path}: plan was compiled by different repro code "
            f"(plan {plan.code[:12]}… vs local {local_code[:12]}…); "
            "results computed here could never merge — update the "
            "checkout on this host or recompile the plan"
        )
        _emit(quiet, ev="error", detail=detail)
        print(f"dist-worker: {detail}", file=sys.stderr)
        return EXIT_MISMATCH
    scenarios = [unit.scenario for unit in plan.units]
    local_registry = registry_identity(scenarios)
    if plan.registry != local_registry:
        detail = (
            f"{plan_path}: this host resolves router names against a "
            f"different registry (plan {plan.registry[:12]}… vs local "
            f"{local_registry[:12]}…)"
        )
        _emit(quiet, ev="error", detail=detail)
        print(f"dist-worker: {detail}", file=sys.stderr)
        return EXIT_MISMATCH
    for unit in plan.units:
        derived = scenario_fingerprint(unit.scenario)
        if derived != unit.cache_key:
            detail = (
                f"{plan_path}: unit {unit.index} ({unit.label or 'base'}) "
                f"cache key mismatch (plan {unit.cache_key[:12]}… vs "
                f"derived {derived and derived[:12]}…); the plan is "
                "stale or tampered with"
            )
            _emit(quiet, ev="error", detail=detail)
            print(f"dist-worker: {detail}", file=sys.stderr)
            return EXIT_MISMATCH

    try:
        start_bundle(
            bundle_dir,
            plan.registry,
            meta={"shard": plan.shard, "units": len(plan.units)},
        )
    except BundleError as error:
        _emit(quiet, ev="error", detail=str(error))
        print(f"dist-worker: {error}", file=sys.stderr)
        return EXIT_MISMATCH

    total = len(plan.units)
    _emit(
        quiet,
        ev="start",
        shard=plan.shard,
        units=total,
        plan_total=plan.total,
    )
    computed = 0
    skipped = 0
    for unit in plan.units:
        if bundle_has_entry(bundle_dir, unit.cache_key):
            # A previous (killed) invocation already paid for this
            # cell; resuming must not recompute it.
            skipped += 1
            _emit(
                quiet,
                ev="unit",
                kind="cached",
                key=unit.cache_key,
                done=computed + skipped,
                units=total,
                description=unit.description,
            )
            continue
        if limit is not None and computed >= limit:
            _emit(
                quiet,
                ev="limit",
                computed=computed,
                skipped=skipped,
                units=total,
            )
            return EXIT_INCOMPLETE
        point = _evaluate_cell(unit.scenario, None)
        bundle_add_entry(bundle_dir, unit.cache_key, encode_point(point))
        computed += 1
        _emit(
            quiet,
            ev="unit",
            kind="computed",
            key=unit.cache_key,
            done=computed + skipped,
            units=total,
            description=unit.description,
        )

    # The completion marker job-array collectors poll for; written
    # atomically, after every entry, so its presence implies a full
    # bundle.
    from repro.experiments.cache import _write_atomic

    _write_atomic(
        Path(bundle_dir) / "done.json",
        json.dumps(
            {"computed": computed, "skipped": skipped, "units": total},
            sort_keys=True,
        ),
    )
    _emit(quiet, ev="done", computed=computed, skipped=skipped, units=total)
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.limit is not None and args.limit < 0:
        _parser().error("--limit must be >= 0")
    try:
        return run_worker(
            args.plan, args.bundle, limit=args.limit, quiet=args.quiet
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return EXIT_INCOMPLETE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
