"""Distributed study execution: shard Studies across hosts.

The engine parallelizes across one machine's cores; a Study's grid —
axes × seeds × schemes — is embarrassingly parallel beyond that.  This
package is the layer between the Study API and the engine that takes
it across hosts:

* :mod:`~repro.dist.plan` compiles a Study's deterministic ``(cell,
  scenario-fingerprint)`` work-unit plan, prunes already-cached cells
  and splits the rest into shards (portable JSON documents);
* the headless worker (``repro-wasn dist-worker --plan shard.json
  --bundle out/``, :mod:`~repro.dist.worker`) evaluates one shard
  anywhere the package is installed, growing an incremental **cache
  bundle** and streaming JSON progress lines;
* a :class:`~repro.dist.driver.ClusterDriver` runs the shards —
  :class:`~repro.dist.driver.LocalSubprocessDriver` (N local worker
  processes, the CI-testable reference),
  :class:`~repro.dist.ssh.SSHDriver` (stdlib ``subprocess`` + ssh,
  per-host job lists, retry/requeue on host failure) or
  :class:`~repro.dist.jobarray.JobArrayDriver` (emit shard files plus
  a SLURM-style array submission script, collect bundles from a
  shared directory);
* :func:`~repro.dist.driver.run_study` merges the returned bundles
  into the content-addressed ``.repro_cache`` (refusing mismatched
  code digests or registry identities) and assembles one
  :class:`~repro.api.study.StudyResult` **bit-identical** to a local
  ``Study.run()`` — resumable at every stage, because the cache is
  the merge point.
"""

from repro.dist.driver import (
    ClusterDriver,
    ClusterError,
    DistStats,
    LocalSubprocessDriver,
    run_study,
)
from repro.dist.jobarray import JobArrayDriver
from repro.dist.plan import (
    PlanError,
    PlanUnit,
    StudyPlan,
    compile_plan,
    read_plan,
    shard_plan,
    write_plan,
)
from repro.dist.ssh import SSHDriver, SSHHost

__all__ = [
    "ClusterDriver",
    "ClusterError",
    "DistStats",
    "JobArrayDriver",
    "LocalSubprocessDriver",
    "PlanError",
    "PlanUnit",
    "SSHDriver",
    "SSHHost",
    "StudyPlan",
    "compile_plan",
    "read_plan",
    "run_study",
    "shard_plan",
    "write_plan",
]
