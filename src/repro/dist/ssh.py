"""SSH cluster driver: plain hosts, stdlib subprocess, no daemons.

The smallest real cluster is "some machines I can ssh into", so this
driver assumes nothing beyond that: the repro package importable on
each host (``SSHHost.pythonpath`` points at a source checkout), a
scratch directory, and a ``tar`` binary.  Per shard it ships the plan
over stdin, runs ``dist-worker`` streaming its JSON progress lines
back through the ssh channel, and fetches the finished bundle as a
tarball (``tar -C bundle -cf - .``) — three ssh invocations, no scp
dependency, nothing listening anywhere.

Scheduling is a shared work queue: every host pulls the next pending
shard, so fast hosts naturally take more work.  A shard that fails is
requeued (its retry budget decremented) for *any* host to pick up; a
host that keeps failing retires itself and the others absorb its
share.  Only when every host has retired with shards still pending —
or a worker reports an identity mismatch, which no retry can fix —
does the run raise :class:`~repro.dist.driver.ClusterError`.

The actual ``ssh`` invocation sits behind a one-method transport
object so tests exercise the scheduler (requeue, retirement, partial
hosts) with an in-process fake instead of a real ssh daemon.
"""

from __future__ import annotations

import shlex
import subprocess
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.dist import worker as worker_module
from repro.dist.driver import ClusterError, ShardMonitor

__all__ = ["SSHDriver", "SSHHost", "SSHTransport"]


class _Mismatch(ClusterError):
    """Worker refused the plan (exit 4) — retrying cannot help."""


@dataclass(frozen=True)
class SSHHost:
    """One reachable host and how to run the worker there.

    ``workdir`` is remote scratch (created on demand); ``pythonpath``
    is prepended so a plain source checkout works without installing;
    ``ssh_options`` are extra ``ssh`` arguments (port, identity file).
    """

    address: str  # e.g. "user@node17"
    workdir: str = "~/.repro_dist"
    python: str = "python3"
    pythonpath: str | None = None
    ssh_options: tuple[str, ...] = ()


class SSHTransport:
    """Runs one remote command over ``ssh``; the injectable seam.

    ``run`` returns the remote exit status (ssh's own failures show up
    as 255, which the driver treats like any dead host).  Exactly one
    of the output modes is used per call: ``line_sink`` receives
    decoded stdout lines (stderr merged in, so remote tracebacks reach
    the monitor), ``stdout_path`` captures raw bytes (bundle
    tarballs).
    """

    def __init__(self, ssh: str = "ssh") -> None:
        self.ssh = ssh

    def run(
        self,
        host: SSHHost,
        command: str,
        *,
        stdin_text: str | None = None,
        line_sink: Callable[[str], None] | None = None,
        stdout_path: Path | None = None,
    ) -> int:
        argv = [
            self.ssh,
            "-o",
            "BatchMode=yes",
            *host.ssh_options,
            host.address,
            command,
        ]
        if stdout_path is not None:
            with open(stdout_path, "wb") as sink:
                process = subprocess.Popen(
                    argv,
                    stdin=subprocess.DEVNULL,
                    stdout=sink,
                    stderr=subprocess.DEVNULL,
                )
                return process.wait()
        process = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE if stdin_text is not None else subprocess.DEVNULL,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        if stdin_text is not None:
            out, _ = process.communicate(stdin_text)
            if line_sink is not None:
                for line in out.splitlines():
                    line_sink(line)
            return process.returncode
        assert process.stdout is not None
        for line in process.stdout:
            if line_sink is not None:
                line_sink(line)
        return process.wait()


@dataclass
class _Pending:
    shard: Path
    budget: int  # retries remaining


class SSHDriver:
    """Run shards across :class:`SSHHost` machines over plain ssh."""

    def __init__(
        self,
        hosts: Sequence[SSHHost],
        retries: int = 2,
        host_strikes: int = 2,
        transport: SSHTransport | None = None,
    ) -> None:
        if not hosts:
            raise ValueError("SSHDriver needs at least one host")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.hosts = list(hosts)
        self.retries = retries
        self.host_strikes = host_strikes
        self.transport = transport or SSHTransport()

    # -- single-shard pipeline: ship plan, run worker, fetch bundle ----

    def _run_shard_on(
        self,
        host: SSHHost,
        shard: Path,
        tar_path: Path,
        monitor: ShardMonitor | None,
    ) -> Path:
        name = shard.stem
        q = shlex.quote
        plans_dir = f"{host.workdir}/plans"
        bundles_dir = f"{host.workdir}/bundles"
        remote_plan = f"{plans_dir}/{name}.json"
        remote_bundle = f"{bundles_dir}/{name}"

        code = self.transport.run(
            host,
            f"mkdir -p {q(plans_dir)} {q(bundles_dir)} && cat > {q(remote_plan)}",
            stdin_text=shard.read_text(encoding="utf-8"),
        )
        if code != 0:
            raise ClusterError(
                f"[{host.address}] could not ship plan for shard {name} "
                f"(exit {code})"
            )

        env = (
            f"PYTHONPATH={q(host.pythonpath)} " if host.pythonpath else ""
        )
        worker_cmd = (
            f"{env}{host.python} -m repro.cli dist-worker "
            f"--plan {q(remote_plan)} --bundle {q(remote_bundle)}"
        )

        def sink(line: str) -> None:
            if monitor is not None:
                monitor.line(name, line)

        code = self.transport.run(host, worker_cmd, line_sink=sink)
        if code == worker_module.EXIT_MISMATCH:
            raise _Mismatch(
                f"[{host.address}] worker refused shard {name} (exit 4: "
                "code/registry mismatch); align the checkout on that "
                "host with the one that compiled the plan"
            )
        if code != 0:
            raise ClusterError(
                f"[{host.address}] shard {name} worker exited with "
                f"code {code}"
            )

        tar_path.parent.mkdir(parents=True, exist_ok=True)
        code = self.transport.run(
            host,
            f"tar -C {q(remote_bundle)} -cf - .",
            stdout_path=tar_path,
        )
        if code != 0:
            raise ClusterError(
                f"[{host.address}] could not fetch bundle for shard "
                f"{name} (tar exit {code})"
            )
        return tar_path

    # -- scheduler: shared queue, per-host threads, requeue/retire -----

    def run(
        self,
        shards: Sequence[Path],
        bundle_root: Path,
        monitor: ShardMonitor | None = None,
    ) -> list[Path]:
        shards = [Path(shard) for shard in shards]
        bundle_root = Path(bundle_root)
        bundle_root.mkdir(parents=True, exist_ok=True)

        pending: deque[_Pending] = deque(
            _Pending(shard, self.retries) for shard in shards
        )
        done: dict[Path, Path] = {}
        fatal: list[ClusterError] = []
        in_flight = 0
        cond = threading.Condition()

        def note(text: str) -> None:
            if monitor is not None:
                monitor.note(text)

        def host_loop(host: SSHHost) -> None:
            nonlocal in_flight
            strikes = 0
            while True:
                with cond:
                    # A shard in flight elsewhere may yet be requeued,
                    # so an idle host waits instead of exiting early.
                    while not pending and in_flight and not fatal:
                        cond.wait()
                    if fatal or not pending:
                        return
                    item = pending.popleft()
                    in_flight += 1
                name = item.shard.stem
                try:
                    result = self._run_shard_on(
                        host,
                        item.shard,
                        bundle_root / f"{name}.tar",
                        monitor,
                    )
                except _Mismatch as error:
                    with cond:
                        in_flight -= 1
                        fatal.append(error)
                        cond.notify_all()
                    return
                except ClusterError as error:
                    strikes += 1
                    with cond:
                        in_flight -= 1
                        if item.budget > 0:
                            item.budget -= 1
                            pending.append(item)
                            note(
                                f"[{name}] {error}; requeued "
                                f"({item.budget} retr{'y' if item.budget == 1 else 'ies'} left)"
                            )
                        else:
                            fatal.append(
                                ClusterError(
                                    f"shard {name} exhausted its retries; "
                                    f"last error: {error}"
                                )
                            )
                        cond.notify_all()
                    if fatal:
                        return
                    if strikes > self.host_strikes:
                        note(
                            f"[dist] retiring host {host.address} after "
                            f"{strikes} consecutive failures"
                        )
                        return
                    continue
                with cond:
                    in_flight -= 1
                    done[item.shard] = result
                    cond.notify_all()
                strikes = 0

        threads = [
            threading.Thread(
                target=host_loop, args=(host,), name=f"ssh:{host.address}"
            )
            for host in self.hosts
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if fatal:
            raise fatal[0]
        if pending:
            missing = ", ".join(item.shard.stem for item in pending)
            raise ClusterError(
                f"every host retired with shard(s) still pending: {missing}"
            )
        return [done[shard] for shard in shards]
