"""Boundary detection: convex hull and alpha-shape (concave) boundary.

Section 3 of the paper assumes "all of the communication actions occur
inside the interest area.  This area is an inner part of the deployment
area encircled by the edge of networks, which can easily be built by
the hull algorithm.  In our labeling process, each edge node will
always keep its status tuple as (1, 1, 1, 1)."

The labeling process therefore needs a notion of *edge node*.  Two
implementations are provided:

* :func:`convex_hull` — Andrew's monotone chain; exact, dependency-free,
  and adequate for convex (IA / uniform) deployments;
* :func:`alpha_shape_boundary` — a Delaunay-based alpha shape that also
  follows concave deployment outlines, which matters under the FA model
  when forbidden areas touch the boundary of the deployment region.
"""

from __future__ import annotations

import math
import warnings
from typing import Sequence

from repro._optional import load_numpy
from repro.geometry.point import Point

__all__ = ["convex_hull", "alpha_shape_boundary", "hull_indices"]


def _delaunay():
    """The scipy/numpy trio the alpha shape needs, or ``None``.

    The numpy probe is the package-wide guard
    (:func:`repro._optional.load_numpy` — shared with the vectorized
    routing backend, so the two cannot drift); scipy rides the same
    check because an environment missing either must degrade the same
    way.  The degradation is loud — a concave deployment outline
    silently approximated by its convex hull would mislabel boundary
    nodes with no hint why.
    """
    np = load_numpy()
    if np is not None:
        try:
            from scipy.spatial import Delaunay, QhullError
        except ImportError:
            np = None
    if np is None:
        warnings.warn(
            "scipy/numpy unavailable: alpha_shape_boundary falls back "
            "to the convex hull, which cannot follow concave "
            "deployment outlines (install scipy for exact alpha "
            "shapes)",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return np, Delaunay, QhullError


def _cross(o: Point, a: Point, b: Point) -> float:
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def hull_indices(points: Sequence[Point]) -> list[int]:
    """Indices (into ``points``) of the convex hull, counter-clockwise.

    Collinear points *on* the hull boundary are included: an edge node
    sitting exactly on the outline of the deployment must be pinned safe
    even if it is not a hull corner, otherwise Definition 1 would label
    it unsafe merely for facing the void outside the network.
    Duplicate coordinates are collapsed to their first occurrence.
    """
    order: dict[tuple[float, float], int] = {}
    for index, p in enumerate(points):
        order.setdefault((p.x, p.y), index)
    unique = sorted(order.items())  # sorted by (x, y)
    if len(unique) <= 2:
        return [index for _, index in unique]

    coords = [Point(x, y) for (x, y), _ in unique]
    indices = [index for _, index in unique]

    def half_hull(sequence: list[int]) -> list[int]:
        hull: list[int] = []
        for i in sequence:
            # Pop while the last three make a strict clockwise turn;
            # collinear (cross == 0) points are kept.
            while (
                len(hull) >= 2
                and _cross(
                    points[hull[-2]], points[hull[-1]], points[i]
                )
                < 0
            ):
                hull.pop()
            hull.append(i)
        return hull

    lower = half_hull(indices)
    upper = half_hull(indices[::-1])
    # Drop the last point of each half because it repeats the first of
    # the other half.
    result = lower[:-1] + upper[:-1]
    del coords
    return result


def convex_hull(points: Sequence[Point]) -> list[Point]:
    """Convex hull vertices in counter-clockwise order (collinear kept)."""
    return [points[i] for i in hull_indices(points)]


def _circumradius(a: Point, b: Point, c: Point) -> float:
    """Circumradius of triangle abc; ``inf`` for degenerate triangles."""
    la = b.distance_to(c)
    lb = a.distance_to(c)
    lc = a.distance_to(b)
    area2 = abs(_cross(a, b, c))  # twice the triangle area
    if area2 <= 1e-12:
        return math.inf
    return (la * lb * lc) / (2.0 * area2)


def alpha_shape_boundary(points: Sequence[Point], alpha: float) -> set[int]:
    """Indices of points on the alpha-shape boundary of the point set.

    The alpha shape keeps every Delaunay triangle whose circumradius is
    at most ``alpha``; boundary edges are those that belong to exactly
    one kept triangle.  With ``alpha`` equal to the communication radius
    this traces the outline a sensor field "sees" at its own hop scale,
    including concavities carved by large forbidden areas.

    Falls back to the convex hull when the input is too small or too
    degenerate for a Delaunay triangulation (e.g. collinear points).
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if len(points) < 4:
        return set(hull_indices(points))

    trio = _delaunay()
    if trio is None:  # no scipy/numpy: convex-hull fallback (warned)
        return set(hull_indices(points))
    np, Delaunay, QhullError = trio

    coords = np.asarray([(p.x, p.y) for p in points], dtype=float)
    try:
        tri = Delaunay(coords)
    except (QhullError, ValueError):
        return set(hull_indices(points))

    edge_count: dict[tuple[int, int], int] = {}
    kept_any = False
    for ia, ib, ic in tri.simplices:
        r = _circumradius(points[ia], points[ib], points[ic])
        if r > alpha:
            continue
        kept_any = True
        for i, j in ((ia, ib), (ib, ic), (ic, ia)):
            key = (min(i, j), max(i, j))
            edge_count[key] = edge_count.get(key, 0) + 1

    if not kept_any:
        # Alpha smaller than every triangle: no interior at this scale;
        # treat the whole point set as boundary.
        return set(range(len(points)))

    boundary: set[int] = set()
    for (i, j), count in edge_count.items():
        if count == 1:
            boundary.add(i)
            boundary.add(j)
    # The convex-hull corners are always part of the network edge even
    # if the alpha filter dropped their incident skinny triangles.
    boundary.update(hull_indices(points))
    return boundary
