"""Planar geometry substrate for the WASN simulator.

Everything in the paper is two-dimensional: node locations, request-zone
rectangles, counter-clockwise ray scans, and the hull that bounds the
interest area.  This subpackage provides those primitives with exact,
well-tested semantics so that the routing and safety-model layers never
have to reason about raw coordinate arithmetic.

Public surface
--------------
* :class:`~repro.geometry.point.Point` — immutable 2-D point/vector.
* :class:`~repro.geometry.rect.Rect` — axis-aligned rectangle, the
  paper's ``[x1 : x2, y1 : y2]`` notation.
* :class:`~repro.geometry.segment.Segment` — line segment with
  intersection predicates (used by planarity checks and obstacles).
* :mod:`~repro.geometry.angles` — angle normalisation, CCW sweeps and
  the hand-rule neighbour ordering used by perimeter routing.
* :mod:`~repro.geometry.hull` — convex hull (Andrew monotone chain) and
  an alpha-shape style concave boundary for edge-node detection.
"""

from repro.geometry.angles import (
    angle_of,
    ccw_angle_distance,
    cw_angle_distance,
    is_ccw_turn,
    normalize_angle,
    orientation,
)
from repro.geometry.hull import alpha_shape_boundary, convex_hull
from repro.geometry.point import Point, distance, midpoint
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment, segments_intersect

__all__ = [
    "Point",
    "Rect",
    "Segment",
    "alpha_shape_boundary",
    "angle_of",
    "ccw_angle_distance",
    "convex_hull",
    "cw_angle_distance",
    "distance",
    "is_ccw_turn",
    "midpoint",
    "normalize_angle",
    "orientation",
    "segments_intersect",
]
