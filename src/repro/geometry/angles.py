"""Angle arithmetic and rotational sweeps.

The paper's perimeter phases are all defined by rotating rays:

* LGF's perimeter step "rotat[es] the ray ``ud`` counter-clockwise until
  the first untried node ``v`` in ``N(u)`` is hit by the ray"
  (Section 3, Algorithm 1 step 4) — the classic right-hand rule;
* SLGF2's **either-hand rule** performs the same sweep either
  counter-clockwise (right-hand) or clockwise (left-hand) and then
  sticks with the chosen hand (Section 4, Algorithm 3 steps 4-5);
* Algorithm 2 orders the unsafe neighbours of a node by a
  counter-clockwise scan of the forwarding quadrant to find the first
  and last boundary chains of an unsafe area.

This module owns the underlying angular machinery so every sweep in the
code base normalises, compares, and tie-breaks angles the same way.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence, TypeVar

from repro.geometry.point import Point

__all__ = [
    "angle_of",
    "ccw_angle_distance",
    "cw_angle_distance",
    "first_hit_ccw",
    "first_hit_cw",
    "is_ccw_turn",
    "normalize_angle",
    "orientation",
    "sort_ccw",
]

T = TypeVar("T")

_EPS = 1e-12


def normalize_angle(theta: float) -> float:
    """Map an angle in radians onto ``[0, 2*pi)``."""
    theta = math.fmod(theta, math.tau)
    if theta < 0.0:
        theta += math.tau
    # fmod of values like -1e-18 can round back up to tau exactly.
    if theta >= math.tau:
        theta -= math.tau
    return theta


def angle_of(origin: Point, target: Point) -> float:
    """Angle of the ray ``origin -> target`` in ``[0, 2*pi)``.

    ``0`` points along +x (east), ``pi/2`` along +y (north), matching
    the quadrant numbering of the paper (quadrant I = north-east).
    """
    return normalize_angle(math.atan2(target.y - origin.y, target.x - origin.x))


def ccw_angle_distance(from_angle: float, to_angle: float) -> float:
    """Counter-clockwise rotation needed to get from one angle to another.

    Result lies in ``[0, 2*pi)``; zero means the angles coincide.
    """
    return normalize_angle(to_angle - from_angle)


def cw_angle_distance(from_angle: float, to_angle: float) -> float:
    """Clockwise rotation needed to get from one angle to another."""
    return normalize_angle(from_angle - to_angle)


def orientation(a: Point, b: Point, c: Point) -> int:
    """Turn direction of the path a -> b -> c.

    ``+1`` = counter-clockwise (left turn), ``-1`` = clockwise (right
    turn), ``0`` = collinear within floating-point tolerance.
    """
    cross = (b - a).cross(c - a)
    if cross > _EPS:
        return 1
    if cross < -_EPS:
        return -1
    return 0


def is_ccw_turn(a: Point, b: Point, c: Point) -> bool:
    """True when a -> b -> c makes a strict left (counter-clockwise) turn."""
    return orientation(a, b, c) == 1


def _sweep(
    origin: Point,
    reference_angle: float,
    candidates: Iterable[T],
    position_of: Callable[[T], Point],
    distance_fn: Callable[[float, float], float],
    exclusive: bool,
) -> T | None:
    """Shared implementation of the CW/CCW "first node hit by a ray" sweep.

    Candidates at zero angular offset are either returned immediately
    (``exclusive=False``) or pushed a full turn away (``exclusive=True``
    — used when sweeping away from the previous hop so the packet never
    bounces straight back).  Ties in angle are broken by Euclidean
    distance (closer node first), matching the deterministic successor
    choice the simulation needs for reproducibility.
    """
    best: T | None = None
    best_key: tuple[float, float] | None = None
    for candidate in candidates:
        pos = position_of(candidate)
        if pos == origin:
            continue
        offset = distance_fn(reference_angle, angle_of(origin, pos))
        if exclusive and offset < _EPS:
            offset = math.tau
        key = (offset, origin.distance_to(pos))
        if best_key is None or key < best_key:
            best = candidate
            best_key = key
    return best


def first_hit_ccw(
    origin: Point,
    reference_angle: float,
    candidates: Iterable[T],
    position_of: Callable[[T], Point],
    exclusive: bool = False,
) -> T | None:
    """First candidate hit by rotating a ray counter-clockwise.

    This is the right-hand rule sweep of Algorithm 1 step 4: start the
    ray at ``reference_angle`` (typically the direction ``u -> d`` or
    the direction back to the previous hop) and rotate CCW until a
    candidate is hit.  Returns ``None`` when there are no candidates.
    """
    return _sweep(
        origin, reference_angle, candidates, position_of, ccw_angle_distance, exclusive
    )


def first_hit_cw(
    origin: Point,
    reference_angle: float,
    candidates: Iterable[T],
    position_of: Callable[[T], Point],
    exclusive: bool = False,
) -> T | None:
    """First candidate hit by rotating a ray clockwise (left-hand rule)."""
    return _sweep(
        origin, reference_angle, candidates, position_of, cw_angle_distance, exclusive
    )


def sort_ccw(
    origin: Point,
    reference_angle: float,
    candidates: Sequence[T],
    position_of: Callable[[T], Point],
) -> list[T]:
    """Candidates ordered by increasing CCW offset from the reference ray.

    Algorithm 2 step 3 scans the forwarding quadrant "in counter-
    clockwise order" to find the *first* and *last* unsafe neighbours;
    those are exactly the first and last elements of this ordering
    restricted to the quadrant.
    """
    return sorted(
        candidates,
        key=lambda c: (
            ccw_angle_distance(reference_angle, angle_of(origin, position_of(c))),
            origin.distance_to(position_of(c)),
        ),
    )
