"""Line segments and their intersection predicates.

Segments back two substrates:

* **obstacle checks** — the FA deployment model rejects node placements
  and (optionally) links that cross a forbidden area;
* **planarity validation** — the Gabriel-graph planarization used by the
  GF perimeter phase is property-tested by asserting that no two of its
  edges cross, which needs a robust segment-intersection predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point

__all__ = ["Segment", "proper_intersection_point", "segments_intersect"]

_EPS = 1e-12


def _orient(a: Point, b: Point, c: Point) -> int:
    """Sign of the signed area of triangle (a, b, c).

    Returns ``+1`` for a counter-clockwise turn, ``-1`` for clockwise,
    ``0`` for (numerically) collinear points.
    """
    cross = (b - a).cross(c - a)
    if cross > _EPS:
        return 1
    if cross < -_EPS:
        return -1
    return 0


def _on_segment(a: Point, b: Point, p: Point) -> bool:
    """True when collinear point ``p`` lies within the bounding box of ab."""
    return (
        min(a.x, b.x) - _EPS <= p.x <= max(a.x, b.x) + _EPS
        and min(a.y, b.y) - _EPS <= p.y <= max(a.y, b.y) + _EPS
    )


@dataclass(frozen=True, slots=True)
class Segment:
    """Closed line segment between two points."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        return self.a.distance_to(self.b)

    @property
    def midpoint(self) -> Point:
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def intersects(self, other: "Segment") -> bool:
        """Closed-segment intersection (shared endpoints count)."""
        return segments_intersect(self.a, self.b, other.a, other.b)

    def properly_intersects(self, other: "Segment") -> bool:
        """True only for a transversal crossing at an interior point.

        Sharing an endpoint or merely touching does **not** count; this
        is the predicate planarity tests care about, because two edges
        of a planar graph may legitimately share a vertex.
        """
        o1 = _orient(self.a, self.b, other.a)
        o2 = _orient(self.a, self.b, other.b)
        o3 = _orient(other.a, other.b, self.a)
        o4 = _orient(other.a, other.b, self.b)
        return o1 * o2 < 0 and o3 * o4 < 0

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the closest point of the segment."""
        ab = self.b - self.a
        denom = ab.norm_squared()
        # Only a *exactly* zero-length segment is degenerate: for tiny
        # but nonzero segments the parametric projection below is
        # numerically fine (numerator and denominator scale together),
        # while an epsilon cutoff would silently misreport distances to
        # the far endpoint.
        if denom == 0.0:
            return self.a.distance_to(p)
        t = (p - self.a).dot(ab) / denom
        t = min(1.0, max(0.0, t))
        closest = Point(self.a.x + t * ab.x, self.a.y + t * ab.y)
        return closest.distance_to(p)


def proper_intersection_point(
    p1: Point, p2: Point, p3: Point, p4: Point
) -> Point | None:
    """Interior crossing point of segments ``p1p2`` and ``p3p4``.

    Returns ``None`` unless the segments cross transversally at a point
    interior to both (endpoint touching and collinear overlap do not
    count).  GPSR-style face routing uses this to decide whether a
    candidate perimeter edge crosses the stuck-node-to-destination line
    closer to the destination (the face-change test).
    """
    d1 = p2 - p1
    d2 = p4 - p3
    denom = d1.cross(d2)
    if abs(denom) <= _EPS:
        return None  # parallel or collinear
    t = (p3 - p1).cross(d2) / denom
    s = (p3 - p1).cross(d1) / denom
    if not (_EPS < t < 1.0 - _EPS and _EPS < s < 1.0 - _EPS):
        return None
    return Point(p1.x + t * d1.x, p1.y + t * d1.y)


def segments_intersect(p1: Point, p2: Point, p3: Point, p4: Point) -> bool:
    """Closed intersection test for segments ``p1p2`` and ``p3p4``.

    Handles all degeneracies: collinear overlap, endpoint touching, and
    zero-length segments. Uses the classic four-orientation test.
    """
    o1 = _orient(p1, p2, p3)
    o2 = _orient(p1, p2, p4)
    o3 = _orient(p3, p4, p1)
    o4 = _orient(p3, p4, p2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, p2, p3):
        return True
    if o2 == 0 and _on_segment(p1, p2, p4):
        return True
    if o3 == 0 and _on_segment(p3, p4, p1):
        return True
    if o4 == 0 and _on_segment(p3, p4, p2):
        return True
    return False
