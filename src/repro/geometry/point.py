"""Immutable 2-D points.

The paper denotes a node location as ``L(u) = (x_u, y_u)`` and uses
``|L(u) - L(v)|`` for the Euclidean distance between nodes.  ``Point``
is the in-code counterpart of ``L(u)``: a frozen value object with the
small amount of vector arithmetic the routing layers need (differences,
dot/cross products, distances).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Point", "distance", "midpoint"]


@dataclass(frozen=True, slots=True)
class Point:
    """A point (or free vector) in the plane.

    Instances are immutable and hashable so they can be dictionary keys,
    set members, and safely shared between nodes, packets and cached
    shape information.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        """Allow ``x, y = point`` unpacking and ``tuple(point)``."""
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scale: float) -> "Point":
        return Point(self.x * scale, self.y * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        """Dot product, treating both points as vectors from the origin."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 3-D cross product (signed parallelogram area).

        Positive when ``other`` lies counter-clockwise of ``self``.
        """
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of the vector from the origin."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        """Squared Euclidean length (avoids the sqrt for comparisons)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance ``|L(self) - L(other)|``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_squared_to(self, other: "Point") -> float:
        """Squared Euclidean distance (cheap comparison key)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def angle_to(self, other: "Point") -> float:
        """Angle of the ray ``self -> other`` in radians, in ``[0, 2*pi)``."""
        angle = math.atan2(other.y - self.y, other.x - self.x) % math.tau
        # A tiny negative atan2 result wraps to a value that rounds to
        # exactly tau; clamp it back into the half-open interval.
        return angle if angle < math.tau else 0.0

    def as_tuple(self) -> tuple[float, float]:
        """Plain tuple, convenient for numpy and networkx interop."""
        return (self.x, self.y)

    def is_finite(self) -> bool:
        """True when both coordinates are finite numbers."""
        return math.isfinite(self.x) and math.isfinite(self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points (module-level convenience)."""
    return a.distance_to(b)


def midpoint(a: Point, b: Point) -> Point:
    """The midpoint of segment ``ab`` (used by Gabriel-graph planarization)."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
