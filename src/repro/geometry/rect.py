"""Axis-aligned rectangles — the paper's ``[x1 : x2, y1 : y2]`` notation.

Rectangles appear in three roles in the paper:

* the **request zone** ``Z_k(u, d) = [x_u : x_d, y_u : y_d]`` of LAR
  scheme 1, with the current node and the destination at opposite
  corners (Section 3);
* the **estimated unsafe-area shape** ``E_i(u) = [x_u : x_u(1), y_u :
  y_u(2)]`` stored at unsafe nodes (Section 3, Theorem 2);
* the **forbidden deployment areas** of the FA model (Section 5).

The paper's corner order is arbitrary (``[x_u : x_d, ...]`` may have
``x_d < x_u``), so the constructor normalises corners; the original
anchoring that the safety model needs is preserved by the call sites
(they keep the anchor node separately).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import Point

__all__ = ["Rect"]


@dataclass(frozen=True, slots=True)
class Rect:
    """Axis-aligned rectangle with ``x_min <= x_max`` and ``y_min <= y_max``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError(
                f"degenerate Rect bounds: [{self.x_min}:{self.x_max}, "
                f"{self.y_min}:{self.y_max}]"
            )

    @classmethod
    def from_corners(cls, a: Point, b: Point) -> "Rect":
        """The paper's ``[x_a : x_b, y_a : y_b]`` with corners normalised.

        This is exactly the request zone construction: ``a`` and ``b``
        sit at opposite corners regardless of their relative position.
        """
        return cls(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )

    @classmethod
    def from_center(cls, center: Point, half_width: float, half_height: float) -> "Rect":
        """Rectangle centred on ``center`` (used by obstacle generators)."""
        if half_width < 0 or half_height < 0:
            raise ValueError("half extents must be non-negative")
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """Corners in counter-clockwise order starting at (x_min, y_min)."""
        return (
            Point(self.x_min, self.y_min),
            Point(self.x_max, self.y_min),
            Point(self.x_max, self.y_max),
            Point(self.x_min, self.y_max),
        )

    def contains(self, p: Point, tol: float = 0.0) -> bool:
        """Closed-rectangle membership, optionally fattened by ``tol``.

        The safety model tests node membership in estimated unsafe areas
        with a small tolerance so that floating-point jitter on the
        boundary chain never flips a containment verdict.
        """
        return (
            self.x_min - tol <= p.x <= self.x_max + tol
            and self.y_min - tol <= p.y <= self.y_max + tol
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside ``self`` (closed)."""
        return (
            self.x_min <= other.x_min
            and self.y_min <= other.y_min
            and other.x_max <= self.x_max
            and other.y_max <= self.y_max
        )

    def intersects(self, other: "Rect") -> bool:
        """Closed-rectangle overlap test."""
        return not (
            other.x_max < self.x_min
            or self.x_max < other.x_min
            or other.y_max < self.y_min
            or self.y_max < other.y_min
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x_min, other.x_min),
            max(self.y_min, other.y_min),
            min(self.x_max, other.x_max),
            min(self.y_max, other.y_max),
        )

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both (used by the bounded perimeter
        phase, which confines routing to "the area that covers all four
        E areas")."""
        return Rect(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side.

        A negative margin shrinks the rectangle; shrinking past a
        degenerate rectangle collapses to the centre point.
        """
        if 2.0 * -margin > min(self.width, self.height):
            c = self.center
            return Rect(c.x, c.y, c.x, c.y)
        return Rect(
            self.x_min - margin,
            self.y_min - margin,
            self.x_max + margin,
            self.y_max + margin,
        )

    def clamp(self, p: Point) -> Point:
        """The point of the rectangle closest to ``p``."""
        return Point(
            min(max(p.x, self.x_min), self.x_max),
            min(max(p.y, self.y_min), self.y_max),
        )

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the rectangle (0 inside)."""
        return self.clamp(p).distance_to(p)

    def sample_grid(self, nx: int, ny: int) -> list[Point]:
        """An ``nx * ny`` lattice of interior points (test fixtures)."""
        if nx < 1 or ny < 1:
            raise ValueError("grid dimensions must be >= 1")
        xs = [
            self.x_min + (i + 0.5) * self.width / nx for i in range(nx)
        ]
        ys = [
            self.y_min + (j + 0.5) * self.height / ny for j in range(ny)
        ]
        return [Point(x, y) for y in ys for x in xs]

    def is_degenerate(self, tol: float = 0.0) -> bool:
        """True when the rectangle has (near-)zero width or height."""
        return self.width <= tol or self.height <= tol

    def diagonal(self) -> float:
        """Length of the rectangle diagonal."""
        return math.hypot(self.width, self.height)
