"""Declarative parameter studies: Scenario grids with streaming results.

The paper's evaluation is a grid — deployment model × node count × 100
random networks — but nothing about a grid is density-specific.  A
:class:`Study` generalises it: one base
:class:`~repro.api.scenario.Scenario` plus named *axes*, where an axis
is any Scenario field::

    from repro.api import RandomFailure, Scenario, Study

    study = Study(
        Scenario(deployment_model="FA", networks=10),
        nodes=range(400, 801, 50),
        vary={
            "failures": [(), (RandomFailure(20),)],
            "obstacle_count": [1, 3, 5],
        },
    )

The grid *compiles* to a deterministic work-unit plan — one
:class:`Cell` (axis coordinates) and one fully resolved Scenario per
grid point, in row-major order (last axis fastest) — evaluated through
:class:`~repro.api.session.Session` in worker processes via the
:class:`~repro.experiments.engine.ExperimentEngine` task stream.
Every Scenario feature (failure schedules, explicit obstacle fields,
mobility, per-scheme router options) is therefore a sweepable axis.

Results stream: :meth:`Study.stream` yields ``(cell, CellResult)``
pairs as workers complete, with one
:class:`~repro.experiments.progress.ProgressEvent` per cell
(completed/total counters, ETA).  :meth:`Study.run` assembles the
stream into a columnar :class:`StudyResult` — ``series()``/``table()``
projections, JSON/CSV export, and a
:meth:`StudyResult.sweep_result` adapter that feeds the legacy
figure/report pipeline bit-identically.

Caching: each cell is keyed by :func:`scenario_fingerprint` — a digest
of the *complete* scenario (failures, obstacles, mobility, router
selection and options included) plus the package source digest — so
two studies differing in any scenario feature never share a
``.repro_cache`` entry, and an interrupted study resumes cell by cell.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from typing import Iterator, Mapping, Sequence

from repro.api.registry import RouterRegistry, default_registry
from repro.api.scenario import Scenario
from repro.api.session import run_scenario
from repro.experiments.cache import (
    CACHE_SCHEMA,
    ResultCache,
    _code_digest,
    point_to_dict,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import EngineTask, ExperimentEngine
from repro.experiments.progress import Progress
from repro.experiments.runner import PointResult

__all__ = [
    "Cell",
    "CellResult",
    "Study",
    "StudyResult",
    "scenario_fingerprint",
]


# -- canonical value handling -----------------------------------------------


def _freeze(value):
    """A hashable, order-canonical form of any axis value.

    Dataclasses (failure specs, obstacles, schedules) freeze to
    ``(type name, field values)``; mappings sort by key.  Two values
    that compare equal freeze identically, which is what lets a
    :class:`Cell` act as a dictionary key even when an axis carries
    ``router_options`` dicts.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, Mapping):
        return (
            "<map>",
            tuple(sorted((str(k), _freeze(v)) for k, v in value.items())),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _jsonable(value):
    """A canonical JSON encoding of a scenario field value.

    Raises :class:`TypeError` for values with no stable encoding —
    the fingerprint then reports the scenario uncacheable instead of
    guessing an identity.
    """
    if isinstance(value, float) and not isinstance(value, bool):
        # 200 and 200.0 are the same scenario input (and compute the
        # same numbers), but json.dumps renders them differently; the
        # wire codec delivers int-valued coordinates as floats, so
        # without this an exported plan's keys would never match the
        # keys a worker re-derives from the decoded scenario.
        return int(value) if value.is_integer() else value
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # The type name disambiguates specs with coinciding fields
        # (e.g. RectObstacle vs a future shape with one rect field).
        encoded = {"__kind__": type(value).__name__}
        for f in dataclasses.fields(value):
            encoded[f.name] = _jsonable(getattr(value, f.name))
        return encoded
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    raise TypeError(f"no canonical encoding for {value!r}")


def _label(value) -> str:
    """A compact human-readable tag for one axis value."""
    if isinstance(value, str):
        return value
    if value is None or isinstance(value, (bool, int, float)):
        return str(value)
    if isinstance(value, (list, tuple)):
        if not value:
            return "-"
        return "+".join(_label(v) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return type(value).__name__
    if isinstance(value, Mapping):
        inner = ",".join(
            f"{k}:{_label(v)}" for k, v in sorted(value.items(), key=str)
        )
        return "{" + inner + "}"
    return type(value).__name__


def scenario_fingerprint(
    scenario: Scenario, registry: RouterRegistry | None = None
) -> str | None:
    """Content hash identifying one scenario's complete inputs.

    Digests every Scenario field — the grid coordinates *and* the
    dynamic features the legacy point key ignored (failure schedules,
    explicit obstacles, mobility, router selection and per-scheme
    options) — together with the router selection's registry
    fingerprint and the package source digest.  Two scenarios that can
    produce different numbers therefore never share a cache entry,
    and the digest is stable across processes (canonical JSON, no
    address- or hash-seed-dependent input).

    Returns ``None`` when the scenario has no cacheable identity: a
    selected router factory without a stable fingerprint
    (lambda/closure) or a scenario field value with no canonical
    encoding.  Such cells are computed every run rather than risking
    a key collision.
    """
    registry = registry if registry is not None else default_registry
    selection = registry.fingerprint(
        scenario.routers or None, scenario.router_options
    )
    if selection is None:
        return None
    fields = {}
    for f in dataclasses.fields(Scenario):
        try:
            fields[f.name] = _jsonable(getattr(scenario, f.name))
        except TypeError:
            return None
    # Normalise the selection: "every scheme, implicitly" (routers=())
    # and "every scheme, by name" evaluate identically, so they must
    # share a fingerprint.
    fields["routers"] = list(scenario.routers or registry.names())
    payload = {
        "schema": CACHE_SCHEMA,
        "code": _code_digest(),
        "kind": "scenario",
        "scenario": fields,
        "selection": selection,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- the grid ----------------------------------------------------------------


class Cell:
    """One grid point: axis name → value, in axis order.

    Hashable (usable as a dictionary key) even when axis values are
    unhashable containers — equality and hashing go through a frozen
    canonical form — and cheap to print: :meth:`label` renders the
    coordinates for progress lines and table rows.
    """

    __slots__ = ("_names", "_values", "_frozen")

    def __init__(self, names: Sequence[str], values: Sequence) -> None:
        self._names = tuple(names)
        self._values = tuple(values)
        self._frozen = tuple(
            (name, _freeze(value))
            for name, value in zip(self._names, self._values)
        )

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def values(self) -> tuple:
        return self._values

    def items(self) -> tuple[tuple[str, object], ...]:
        return tuple(zip(self._names, self._values))

    def get(self, name: str, default=None):
        for n, v in zip(self._names, self._values):
            if n == name:
                return v
        return default

    def __getitem__(self, name: str):
        for n, v in zip(self._names, self._values):
            if n == name:
                return v
        raise KeyError(
            f"cell has no axis {name!r}; axes: {list(self._names)}"
        )

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def label(self) -> str:
        """``"node_count=400 failures=RandomFailure"`` style tag."""
        return " ".join(
            f"{name}={_label(value)}" for name, value in self.items()
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cell) and self._frozen == other._frozen

    def __hash__(self) -> int:
        return hash(self._frozen)

    def __repr__(self) -> str:
        return f"Cell({self.label() or 'base'})"


@dataclasses.dataclass(frozen=True)
class CellResult:
    """One evaluated grid point.

    ``point`` carries the same per-router aggregates the figure
    pipeline consumes (delivery, hop/length summaries, max hops,
    recovery counters) — computed through the golden-tested
    :func:`~repro.api.session.run_scenario` facade, merged over the
    scenario's ``networks`` replicas.
    """

    cell: Cell
    scenario: Scenario
    point: PointResult

    def routers(self) -> tuple[str, ...]:
        return tuple(self.point.per_router)

    def metric(self, router: str, name: str) -> float:
        """Scalar projection (``mean_hops``, ``delivery_rate``, ...)."""
        return self.point.metric(router, name)


def _evaluate_cell(
    scenario: Scenario, registry: RouterRegistry | None
) -> PointResult:
    """Worker entry point: one cell, evaluated through the Session facade.

    Module-level (hence picklable) so the engine can ship cells to
    worker processes; the registry travels along as resolved specs, so
    a worker never re-resolves router names against its own (possibly
    diverged) registry.
    """
    routes = run_scenario(scenario, registry=registry)
    return routes.point_result(
        scenario.deployment_model, scenario.node_count, scenario.networks
    )


def _describe(cell: Cell, scenario: Scenario) -> str:
    """Progress-line identity of one cell (classic unit style)."""
    head = f"[{scenario.deployment_model}] n={scenario.node_count}"
    extras = " ".join(
        f"{name}={_label(value)}"
        for name, value in cell.items()
        if name not in ("deployment_model", "node_count")
    )
    if extras:
        head = f"{head} {extras}"
    return (
        f"{head} ({scenario.networks} networks x "
        f"{scenario.routes_per_network} routes)"
    )


class Study:
    """A base Scenario swept along named axes.

    Parameters
    ----------
    base:
        The Scenario every cell starts from (default: the paper's
        ``Scenario()``).
    nodes / seeds:
        Sugar for the two most common axes — ``nodes=range(400, 801,
        50)`` is ``vary={"node_count": [...]}``, ``seeds=range(100)``
        is ``vary={"seed": [...]}``.
    vary:
        Further axes: any Scenario field name → sequence of values.
        Axis order is ``nodes``, ``seeds``, then ``vary`` in mapping
        order; the plan enumerates the product row-major (last axis
        fastest).
    registry:
        Router registry the cells resolve scheme names against
        (default: the process-wide one).  Shipped to workers as
        resolved specs.
    """

    def __init__(
        self,
        base: Scenario | None = None,
        *,
        nodes: Sequence[int] | None = None,
        seeds: Sequence[int] | None = None,
        vary: Mapping[str, Sequence] | None = None,
        registry: RouterRegistry | None = None,
    ) -> None:
        self.base = base if base is not None else Scenario()
        axes: dict[str, tuple] = {}
        if nodes is not None:
            axes["node_count"] = tuple(nodes)
        if seeds is not None:
            axes["seed"] = tuple(seeds)
        for name, values in dict(vary or {}).items():
            if name in axes:
                raise ValueError(
                    f"axis {name!r} given twice (keyword sugar and vary)"
                )
            axes[name] = tuple(values)
        known = {f.name for f in dataclasses.fields(Scenario)}
        for name, values in axes.items():
            if name not in known:
                raise ValueError(
                    f"unknown Scenario axis {name!r}; "
                    f"fields: {', '.join(sorted(known))}"
                )
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            frozen = [_freeze(v) for v in values]
            if len(set(frozen)) != len(frozen):
                raise ValueError(
                    f"axis {name!r} repeats a value; cells must be "
                    "distinct grid points"
                )
        self.axes: dict[str, tuple] = axes
        self.registry = (
            registry if registry is not None else default_registry
        )
        self._plan: tuple[tuple[Cell, Scenario], ...] | None = None

    @classmethod
    def from_config(
        cls,
        config: ExperimentConfig,
        models: Sequence[str] = ("IA", "FA"),
        routers: Sequence[str] | None = None,
        router_options: Mapping[str, Mapping] | None = None,
        registry: RouterRegistry | None = None,
    ) -> "Study":
        """The classic density sweep, as a Study.

        Axes are ``deployment_model`` × ``node_count`` in the legacy
        plan order (models outer); the resulting
        :meth:`StudyResult.sweep_result` panels are bit-identical to
        the historical ``run_sweeps`` output.
        """
        models = tuple(models)
        if not models:
            raise ValueError("need at least one deployment model")
        base = Scenario.from_config(
            config,
            models[0],
            config.node_counts[0],
            routers=tuple(routers or ()),
            router_options=dict(router_options or {}),
        )
        return cls(
            base,
            vary={
                "deployment_model": models,
                "node_count": config.node_counts,
            },
            registry=registry,
        )

    # -- the compiled plan ----------------------------------------------

    def plan(self) -> tuple[tuple[Cell, Scenario], ...]:
        """Every ``(cell, scenario)`` of the grid, in deterministic order.

        Compiling eagerly validates every combination through
        Scenario's own rules (e.g. explicit obstacles require the FA
        model), so an inexpressible cell fails here — before any work
        is dispatched — not in a worker process mid-study.
        """
        if self._plan is None:
            names = tuple(self.axes)
            compiled = []
            for values in itertools.product(*self.axes.values()):
                overrides = dict(zip(names, values))
                compiled.append(
                    (Cell(names, values), self.base.with_(**overrides))
                )
            self._plan = tuple(compiled)
        return self._plan

    def cells(self) -> tuple[Cell, ...]:
        return tuple(cell for cell, _ in self.plan())

    def export_plan(self, path=None, cache: ResultCache | None = None):
        """The grid as a distributable work-unit plan (:mod:`repro.dist`).

        Compiles every cell to a ``(scenario, cache-key)`` unit for the
        distributed layer; with ``cache``, already-cached cells are
        pruned (resumability).  With ``path``, the plan is also written
        as its portable JSON document and the path returned; otherwise
        the :class:`~repro.dist.plan.StudyPlan` itself is.  Imported
        lazily — the Study API does not pay for the dist layer until a
        plan is exported.
        """
        from repro.dist.plan import compile_plan, write_plan

        plan = compile_plan(self, cache=cache)
        if path is not None:
            return write_plan(plan, path)
        return plan

    def scenario(self, cell: Cell) -> Scenario:
        for candidate, scenario in self.plan():
            if candidate == cell:
                return scenario
        raise KeyError(f"{cell!r} is not a cell of this study")

    def __len__(self) -> int:
        cells = 1
        for values in self.axes.values():
            cells *= len(values)
        return cells

    def __repr__(self) -> str:
        axes = ", ".join(
            f"{name}[{len(values)}]" for name, values in self.axes.items()
        )
        return f"Study({len(self)} cells: {axes or 'base only'})"

    # -- execution ------------------------------------------------------

    def _tasks(self, caching: bool) -> list[EngineTask]:
        tasks = []
        for cell, scenario in self.plan():
            # Fingerprinting is skipped entirely when the engine cannot
            # cache — a disabled cache must cost nothing extra.
            key = (
                scenario_fingerprint(scenario, self.registry)
                if caching
                else None
            )
            tasks.append(
                EngineTask(
                    key=cell,
                    fn=_evaluate_cell,
                    args=(scenario, self.registry),
                    cache_key=key,
                    description=_describe(cell, scenario),
                )
            )
        return tasks

    def stream(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> Iterator[tuple[Cell, CellResult]]:
        """Yield ``(cell, CellResult)`` as cells complete.

        Cached cells come first (plan order), computed ones follow in
        completion order — ``jobs > 1`` dispatches them over worker
        processes.  Each computed cell is persisted before it is
        yielded, so closing the stream mid-study (or Ctrl-C) leaves a
        cache the next run resumes from.  ``progress`` receives one
        :class:`~repro.experiments.progress.ProgressEvent` per cell.
        """
        engine = ExperimentEngine(jobs=jobs, cache=cache, progress=progress)
        return self.stream_through(engine)

    def stream_through(
        self, engine: ExperimentEngine
    ) -> Iterator[tuple[Cell, CellResult]]:
        """:meth:`stream` over a caller-owned engine (shared counters)."""
        scenarios = dict(self.plan())
        for task, point in engine.stream(self._tasks(engine.caching)):
            cell = task.key
            yield cell, CellResult(
                cell=cell, scenario=scenarios[cell], point=point
            )

    def run(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> "StudyResult":
        """Evaluate the whole grid and assemble a :class:`StudyResult`."""
        results = dict(
            self.stream(jobs=jobs, cache=cache, progress=progress)
        )
        return StudyResult(self, results)


# -- results -----------------------------------------------------------------


class StudyResult:
    """A completed study, columnar: cells in plan order, per-router metrics.

    Projections:

    * :meth:`cell` — one cell's result by axis coordinates;
    * :meth:`column` — one metric over every cell, in plan order;
    * :meth:`series` — one metric along one axis, the other axes fixed;
    * :meth:`table` — an aligned text table (axes × routers);
    * :meth:`to_csv` / :meth:`to_json` — exports;
    * :meth:`sweep_result` — the legacy
      :class:`~repro.experiments.sweep.SweepResult` adapter feeding
      ``figures.py``/``report.py`` bit-identically (plain density
      studies only).
    """

    def __init__(
        self, study: Study, results: Mapping[Cell, CellResult]
    ) -> None:
        self.study = study
        self.axes = dict(study.axes)
        self.cells = study.cells()
        missing = [cell for cell in self.cells if cell not in results]
        if missing:
            raise ValueError(
                f"study results missing {len(missing)} cell(s), "
                f"first: {missing[0]!r}"
            )
        # Plan order, whatever order the stream completed in.
        self._results = {cell: results[cell] for cell in self.cells}

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self._results.values())

    def __getitem__(self, cell: Cell) -> CellResult:
        return self._results[cell]

    def results(self) -> dict[Cell, CellResult]:
        return dict(self._results)

    def routers(self) -> tuple[str, ...]:
        """Every router name present in any cell, first-seen order.

        Usually identical across cells; under a ``routers`` axis the
        union keeps :meth:`table` renderable (absent combinations show
        as ``-``).
        """
        seen: dict[str, None] = {}
        for cell in self.cells:
            for name in self._results[cell].routers():
                seen.setdefault(name)
        return tuple(seen)

    # -- selection ------------------------------------------------------

    def cell(self, **coords) -> CellResult:
        """The one cell matching ``coords`` (axis name = value).

        Unnamed axes must be single-valued; anything ambiguous or
        unmatched raises with the offending coordinates spelled out.
        """
        unknown = set(coords) - set(self.axes)
        if unknown:
            raise KeyError(
                f"unknown axis/axes {sorted(unknown)}; "
                f"study axes: {list(self.axes)}"
            )
        wanted = {name: _freeze(value) for name, value in coords.items()}
        matches = [
            cell
            for cell in self.cells
            if all(
                _freeze(cell[name]) == value
                for name, value in wanted.items()
            )
        ]
        if len(matches) != 1:
            raise KeyError(
                f"coordinates {coords!r} match {len(matches)} cells; "
                "fix every multi-valued axis"
            )
        return self._results[matches[0]]

    def column(self, router: str, metric: str) -> list[float]:
        """One metric for one router over every cell, in plan order."""
        return [
            self._results[cell].metric(router, metric)
            for cell in self.cells
        ]

    def series(
        self,
        router: str,
        metric: str,
        along: str | None = None,
        where: Mapping[str, object] | None = None,
    ) -> tuple[list, list[float]]:
        """One curve: ``metric`` along one axis, other axes fixed.

        Returns ``(axis values, metric values)``.  ``along`` may be
        omitted for single-axis studies; every *other* multi-valued
        axis must be pinned through ``where``.
        """
        if along is None:
            if len(self.axes) != 1:
                raise ValueError(
                    f"study has axes {list(self.axes)}; name the "
                    "one to walk with along="
                )
            along = next(iter(self.axes))
        if along not in self.axes:
            raise KeyError(
                f"unknown axis {along!r}; study axes: {list(self.axes)}"
            )
        where = dict(where or {})
        for name, values in self.axes.items():
            if name == along or name in where:
                continue
            if len(values) > 1:
                raise ValueError(
                    f"axis {name!r} is multi-valued; pin it via "
                    f"where={{'{name}': ...}}"
                )
        values = []
        for value in self.axes[along]:
            result = self.cell(**{along: value, **where})
            values.append(result.metric(router, metric))
        return list(self.axes[along]), values

    # -- rendering and export -------------------------------------------

    def table(
        self,
        metric: str = "mean_hops",
        routers: Sequence[str] | None = None,
        digits: int = 2,
    ) -> str:
        """Aligned text table: one row per cell, one column per router."""
        routers = tuple(routers) if routers is not None else self.routers()
        axis_names = tuple(self.axes)
        header = [*axis_names, *routers] if axis_names else ["cell", *routers]
        rows = [list(header)]
        for cell in self.cells:
            coords = (
                [_label(cell[name]) for name in axis_names]
                if axis_names
                else ["base"]
            )
            result = self._results[cell]
            rows.append(
                coords
                + [
                    (
                        f"{result.metric(r, metric):.{digits}f}"
                        if r in result.point.per_router
                        else "-"  # router not selected in this cell
                    )
                    for r in routers
                ]
            )
        widths = [
            max(len(row[col]) for row in rows)
            for col in range(len(header))
        ]
        lines = [f"study {metric} ({len(self.cells)} cells)"]
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(
                    cell.rjust(width) for cell, width in zip(row, widths)
                )
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        """One JSON-ready record per cell, in plan order."""
        records = []
        for index, cell in enumerate(self.cells):
            result = self._results[cell]
            coords = {}
            for name, value in cell.items():
                try:
                    coords[name] = _jsonable(value)
                except TypeError:
                    coords[name] = _label(value)
            records.append(
                {
                    "index": index,
                    "cell": coords,
                    "label": cell.label(),
                    "point": point_to_dict(result.point),
                }
            )
        return records

    def to_json(self, path) -> "Path":
        """Write the study as one JSON document; returns the path."""
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "axes": {
                name: [_label(v) for v in values]
                for name, values in self.axes.items()
            },
            "routers": list(self.routers()),
            "cells": self.to_dicts(),
        }
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        return path

    def to_csv(
        self,
        path,
        metrics: Sequence[str] = (
            "delivery_rate",
            "mean_hops",
            "max_hops",
            "mean_length",
        ),
    ) -> "Path":
        """Columnar CSV: one row per (cell, router); returns the path."""
        import csv
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        axis_names = tuple(self.axes)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["cell", *axis_names, "router", *metrics])
            for index, cell in enumerate(self.cells):
                result = self._results[cell]
                coords = [_label(cell[name]) for name in axis_names]
                for router in result.routers():
                    writer.writerow(
                        [index, *coords, router]
                        + [
                            result.metric(router, metric)
                            for metric in metrics
                        ]
                    )
        return path

    # -- interop with the legacy figure pipeline ------------------------

    def sweep_result(self, deployment_model: str | None = None):
        """This study as a legacy ``SweepResult`` (figures/report input).

        Only plain density studies — axes within ``deployment_model``
        × ``node_count`` — are expressible as a sweep; richer grids
        should be projected with :meth:`series`/:meth:`table` instead.
        The returned panel is bit-identical to the historical
        ``run_sweeps`` output for the same configuration (golden-
        tested), so ``figure_table``/``format_table``/``to_csv`` keep
        working unchanged.
        """
        from repro.experiments.sweep import SweepResult

        extra = set(self.axes) - {"deployment_model", "node_count"}
        if extra:
            raise ValueError(
                f"sweep adapter needs a plain density study; extra "
                f"axes: {sorted(extra)} (use series()/table() instead)"
            )
        models = self.axes.get("deployment_model")
        if deployment_model is None:
            if models is not None and len(models) > 1:
                raise ValueError(
                    f"study spans models {list(models)}; name one"
                )
            deployment_model = (
                models[0] if models else self.study.base.deployment_model
            )
        else:
            # A model this study never evaluated must not come back
            # relabeled as if it had been.
            evaluated = (
                tuple(models)
                if models is not None
                else (self.study.base.deployment_model,)
            )
            if deployment_model not in evaluated:
                raise ValueError(
                    f"study evaluated model(s) {list(evaluated)}, "
                    f"not {deployment_model!r}"
                )
        node_counts = tuple(
            self.axes.get("node_count", (self.study.base.node_count,))
        )
        points = []
        for n in node_counts:
            coords = {}
            if "node_count" in self.axes:
                coords["node_count"] = n
            if models is not None:
                coords["deployment_model"] = deployment_model
            points.append(self.cell(**coords).point)
        config = dataclasses.replace(
            self.study.base.to_config(), node_counts=node_counts
        )
        return SweepResult(
            deployment_model=deployment_model,
            config=config,
            points=tuple(points),
        )
