"""repro.api — the public facade over the whole reproduction stack.

Every consumer (CLI, examples, experiment engine, visualisation,
tests) drives the system through three ideas:

* a **router registry** (:data:`default_registry`,
  :func:`register_router`): routing schemes are discoverable by name,
  accept per-scheme options, and third-party schemes plug into sweeps,
  caching, reports and figure legends with no harness edits;
* a declarative :class:`Scenario` plus a :class:`Session` facade:
  describe the network once, materialise it once, then
  ``route``/``route_pairs``/``run`` against it;
* a declarative :class:`Study`: a base Scenario swept along named
  axes (any Scenario field — densities, seeds, failure schedules,
  obstacle fields, router options), streamed cell by cell through
  worker processes with scenario-fingerprint caching;
* **instrumentation hooks**: :class:`TraceRecorder` /
  :class:`EnergyMeter` attach to any route call via ``on_hop`` /
  ``on_phase_change`` — no subclassing.

Quickstart::

    from repro.api import Scenario, Session

    session = Session(Scenario(deployment_model="IA", node_count=400,
                               seed=7))
    print(session.route_all(*session.sample_pairs(1)[0]))

    routes = session.run()              # the scenario's workload
    print(routes.aggregate("SLGF2").hops.mean)

A parameter study over any Scenario feature::

    from repro.api import RandomFailure, Study

    study = Study(Scenario(networks=10),
                  nodes=range(400, 801, 100),
                  vary={"failures": [(), (RandomFailure(20),)]})
    for cell, result in study.stream(jobs=4):
        print(cell.label(), result.metric("SLGF2", "delivery_rate"))

Registering a fifth scheme::

    from repro.api import register_router

    @register_router("GF-FACE", order=4)
    def build_gf_face(instance, **kwargs):
        return GreedyRouter(instance.graph, recovery="face", **kwargs)

See ``docs/API.md`` for the full tour.
"""

from repro.api.instruments import EnergyMeter, TraceRecorder
from repro.api.registry import (
    RegistryRouterFactory,
    RouterRegistry,
    RouterSpec,
    default_registry,
    register_router,
    router_order,
)
from repro.api.routeset import RouteSet, RouterAggregate
from repro.api.scenario import (
    FailureSpec,
    MobilitySchedule,
    NodesFailure,
    RandomFailure,
    RegionFailure,
    Scenario,
)
from repro.api.session import Session, connected_session, run_scenario
from repro.api.study import (
    Cell,
    CellResult,
    Study,
    StudyResult,
    scenario_fingerprint,
)
from repro.experiments.progress import ProgressEvent
from repro.network.channel import (
    CommunicationModel,
    DeadLinks,
    DutyCycle,
    IntermittentLinks,
    LinkFaultModel,
    LogNormalShadowing,
    Transmission,
    UnitDisk,
)
from repro.network.dynamic import DynamicTopology, TopologyDelta
from repro.routing.base import HopEvent, PacketTrace, RouteResult

__all__ = [
    "Cell",
    "CellResult",
    "CommunicationModel",
    "DeadLinks",
    "DutyCycle",
    "DynamicTopology",
    "EnergyMeter",
    "FailureSpec",
    "HopEvent",
    "IntermittentLinks",
    "LinkFaultModel",
    "LogNormalShadowing",
    "MobilitySchedule",
    "NodesFailure",
    "PacketTrace",
    "ProgressEvent",
    "RandomFailure",
    "RegionFailure",
    "RegistryRouterFactory",
    "RouteResult",
    "TopologyDelta",
    "RouteSet",
    "Transmission",
    "UnitDisk",
    "RouterAggregate",
    "RouterRegistry",
    "RouterSpec",
    "Scenario",
    "Session",
    "Study",
    "StudyResult",
    "TraceRecorder",
    "connected_session",
    "default_registry",
    "register_router",
    "router_order",
    "run_scenario",
    "scenario_fingerprint",
]
