"""Declarative scenarios: everything a routing experiment needs, once.

A :class:`Scenario` is a frozen value object naming a complete
experimental setting — deployment model, density, obstacles, failure
and mobility schedules, workload and seed — with no behaviour of its
own.  A :class:`~repro.api.session.Session` materialises it into a
concrete network; :func:`~repro.api.session.run_scenario` evaluates it
end to end.

Determinism contract: a Scenario with the same field values always
produces the same networks, the same source-destination pairs and the
same routes.  For plain IA/FA scenarios the derivation matches the
legacy harness exactly (same per-network seeds as
:func:`repro.experiments.runner.evaluate_point`), which is what the
golden equivalence tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, TypeAlias, Union

from repro.experiments.config import ExperimentConfig
from repro.geometry import Rect
from repro.network.channel import (
    CommunicationModel,
    LinkFaultModel,
    UnitDisk,
)
from repro.network.obstacles import Obstacle

__all__ = [
    "FailureSpec",
    "MobilitySchedule",
    "NodesFailure",
    "RandomFailure",
    "RegionFailure",
    "Scenario",
]


@dataclass(frozen=True)
class RegionFailure:
    """Jam/destroy every node within ``radius`` of ``(x, y)``.

    The "communication jamming" and "power exhaustion" holes of
    Section 1, applied to the deployed network before the information
    construction runs.  Nodes listed in ``protect`` survive even
    inside the region (e.g. an experiment's source and destination).
    """

    x: float
    y: float
    radius: float
    protect: tuple[int, ...] = ()


@dataclass(frozen=True)
class NodesFailure:
    """Fail an explicit set of node ids."""

    nodes: tuple[int, ...]


@dataclass(frozen=True)
class RandomFailure:
    """Fail ``count`` uniformly chosen nodes (seeded per network).

    Nodes listed in ``protect`` are never drawn.
    """

    count: int
    protect: tuple[int, ...] = ()


#: Any one entry of a Scenario failure schedule.  A real alias (not a
#: string): usable in ``isinstance``-free annotations throughout the
#: Session and wire layers, and introspectable via ``typing.get_args``.
FailureSpec: TypeAlias = Union[RegionFailure, NodesFailure, RandomFailure]


@dataclass(frozen=True)
class MobilitySchedule:
    """Random-waypoint drift: periodic topology snapshots.

    A mobile scenario yields one network *epoch* per snapshot (see
    :meth:`repro.api.session.Session.epochs`), each re-running the
    information construction — the paper's periodic beaconing.
    """

    speed_min: float = 1.0
    speed_max: float = 3.0
    pause: float = 2.0
    dt: float = 10.0
    epochs: int = 6

    def __post_init__(self) -> None:
        # Validated here, at declaration time: the epoch loop in
        # Session.epochs() would otherwise turn e.g. epochs=0 into a
        # silent zero-result "mobile" run.
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.speed_min <= 0 or self.speed_max < self.speed_min:
            raise ValueError("need 0 < speed_min <= speed_max")
        if self.pause < 0:
            raise ValueError("pause must be non-negative")


@dataclass(frozen=True)
class Scenario:
    """One fully specified routing experiment.

    Defaults reproduce the paper's setting: a 200 m x 200 m interest
    area, 20 m radio range, uniform (IA) deployment.  ``routers``
    selects registered schemes by name (empty = all registered);
    ``router_options`` passes per-scheme constructor kwargs, e.g.
    ``{"SLGF2": {"perimeter_mode": "dfs"}}``.
    """

    deployment_model: str = "IA"
    node_count: int = 400
    area: Rect = field(default_factory=lambda: Rect(0, 0, 200, 200))
    radius: float = 20.0
    seed: int = 2009
    # Workload: how much routing a full `run()` does.
    networks: int = 1
    routes_per_network: int = 20
    # FA model: either a random obstacle field (the paper's setting) …
    obstacle_count: int = 3
    min_obstacle_size: float = 20.0
    max_obstacle_size: float = 60.0
    # … or explicit obstacle shapes (overrides the random field).
    obstacles: tuple[Obstacle, ...] = ()
    # Dynamic schedules.
    failures: tuple[FailureSpec, ...] = ()
    mobility: MobilitySchedule | None = None
    # Radio channel: per-link delivery model, attempt-level link
    # faults, per-hop retransmission budget.  The default is the
    # paper's perfect unit-disk radio — bit-identical to the
    # historical pipeline, with no transmission accounting at all.
    channel: CommunicationModel = field(default_factory=UnitDisk)
    link_faults: LinkFaultModel | None = None
    max_retransmits: int = 3
    # Router selection (names from the registry; () = all registered).
    routers: tuple[str, ...] = ()
    router_options: Mapping[str, Mapping] = field(default_factory=dict)
    # Bits per routed packet, for the energy aggregates.
    packet_bits: int = 1

    def __post_init__(self) -> None:
        if self.deployment_model not in ("IA", "FA"):
            raise ValueError(
                f"unknown deployment model {self.deployment_model!r}; "
                "expected 'IA' or 'FA'"
            )
        if self.node_count < 2:
            raise ValueError("node_count must be >= 2")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.networks < 1 or self.routes_per_network < 1:
            raise ValueError("networks and routes_per_network must be >= 1")
        if self.packet_bits < 1:
            raise ValueError("packet_bits must be >= 1")
        if not isinstance(self.channel, CommunicationModel):
            raise ValueError(
                f"channel must be a CommunicationModel, "
                f"got {self.channel!r}"
            )
        if self.link_faults is not None and not isinstance(
            self.link_faults, LinkFaultModel
        ):
            raise ValueError(
                f"link_faults must be a LinkFaultModel or None, "
                f"got {self.link_faults!r}"
            )
        if isinstance(self.max_retransmits, bool) or not isinstance(
            self.max_retransmits, int
        ):
            raise ValueError(
                f"max_retransmits must be an integer, "
                f"got {self.max_retransmits!r}"
            )
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        if self.obstacles and self.deployment_model == "IA":
            raise ValueError(
                "explicit obstacles need the FA deployment model"
            )
        if self.mobility is not None and (self.failures or self.obstacles):
            # The random-waypoint walker knows nothing about forbidden
            # areas or failure schedules; dropping them silently would
            # mislabel the results, so the combination is rejected.
            raise ValueError(
                "mobility schedules cannot be combined with obstacles "
                "or failure schedules (not supported yet)"
            )
        # Normalise mutable-by-accident inputs to immutable forms.
        # router_options stays a mapping (callers read it back as one);
        # __hash__ below canonicalises it, keeping the frozen contract.
        object.__setattr__(self, "obstacles", tuple(self.obstacles))
        object.__setattr__(self, "failures", tuple(self.failures))
        object.__setattr__(self, "routers", tuple(self.routers))
        object.__setattr__(
            self,
            "router_options",
            {
                name: dict(opts)
                for name, opts in dict(self.router_options).items()
            },
        )

    def __hash__(self) -> int:
        # Explicit because the generated hash would choke on the
        # router_options dict; a Scenario must work as a memoisation
        # key.  Consistent with the generated __eq__: equal dicts
        # canonicalise to equal tuples.
        options = tuple(
            sorted(
                (name, tuple(sorted(opts.items())))
                for name, opts in self.router_options.items()
            )
        )
        return hash(
            (
                self.deployment_model,
                self.node_count,
                self.area,
                self.radius,
                self.seed,
                self.networks,
                self.routes_per_network,
                self.obstacle_count,
                self.min_obstacle_size,
                self.max_obstacle_size,
                self.obstacles,
                self.failures,
                self.mobility,
                self.routers,
                options,
                self.packet_bits,
                self.channel,
                self.link_faults,
                self.max_retransmits,
            )
        )

    # -- conversions ----------------------------------------------------

    def to_config(self) -> ExperimentConfig:
        """The legacy :class:`ExperimentConfig` this scenario implies.

        This is the bridge that keeps Session results bit-identical to
        the historical harness: per-network seeds derive from this
        config exactly as :mod:`repro.experiments.runner` derives them.
        """
        return ExperimentConfig(
            area=self.area,
            radius=self.radius,
            node_counts=(self.node_count,),
            networks_per_point=self.networks,
            routes_per_network=self.routes_per_network,
            seed=self.seed,
            obstacle_count=self.obstacle_count,
            min_obstacle_size=self.min_obstacle_size,
            max_obstacle_size=self.max_obstacle_size,
        )

    @classmethod
    def from_config(
        cls,
        config: ExperimentConfig,
        deployment_model: str,
        node_count: int,
        **overrides,
    ) -> "Scenario":
        """Scenario for one figure point of a legacy config."""
        return cls(
            deployment_model=deployment_model,
            node_count=node_count,
            area=config.area,
            radius=config.radius,
            seed=config.seed,
            networks=config.networks_per_point,
            routes_per_network=config.routes_per_network,
            obstacle_count=config.obstacle_count,
            min_obstacle_size=config.min_obstacle_size,
            max_obstacle_size=config.max_obstacle_size,
            **overrides,
        )

    def with_(self, **changes) -> "Scenario":
        """A modified copy (thin, readable ``dataclasses.replace``)."""
        return replace(self, **changes)

    @property
    def is_dynamic(self) -> bool:
        """Whether any schedule diverges from the paper's static setup."""
        return bool(self.failures or self.obstacles or self.mobility)

    @property
    def is_lossy(self) -> bool:
        """Whether routed packets need channel/retransmission accounting.

        ``False`` exactly when the channel is perfect (``UnitDisk``
        with no link faults) — the bit-identity guarantee: such
        scenarios skip the channel layer entirely.
        """
        return not (self.channel.is_perfect and self.link_faults is None)
