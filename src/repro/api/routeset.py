"""Route collections with lazy aggregate metrics.

A :class:`RouteSet` is what the Session facade hands back: every
individual :class:`~repro.routing.base.RouteResult`, grouped per
router in routing order, with the aggregates the paper reports —
delivery ratio, hop/length/energy summaries — computed lazily and
cached on first access.

It also closes the serialisation loop: ``to_dicts`` / ``from_dicts``
round-trip every route (phases and failure reasons included) through
plain JSON, so exports and the report layer stop hand-rolling their
own encodings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.analysis.stats import Summary, summarize
from repro.network.channel import Transmission
from repro.routing.base import RouteResult

__all__ = ["RouteSet", "RouterAggregate"]


class RouterAggregate:
    """Lazy per-router summary over one RouteSet's routes.

    Hop and length statistics are over *delivered* routes only (the
    paper reports path metrics; failures surface via
    :attr:`delivery_rate`), mirroring the legacy
    ``RouterPointMetrics`` semantics exactly.  Energy is summarised
    over delivered routes too, when the set carries energies.
    """

    def __init__(
        self,
        router: str,
        results: list[RouteResult],
        energies: "list[float | None]",
        transmissions: "list[Transmission | None] | None" = None,
    ) -> None:
        self.router = router
        # Snapshot the lists: an aggregate is a consistent view of the
        # set at creation time, never a half-cached mix of before and
        # after a later add()/merge().
        self._results = list(results)
        self._energies = list(energies)  # parallel; None = unmeasured
        # Parallel channel accounting; None = perfect-link route.
        self._transmissions = (
            list(transmissions)
            if transmissions is not None
            else [None] * len(self._results)
        )
        self._cache: dict[str, object] = {}

    @property
    def samples(self) -> int:
        return len(self._results)

    @property
    def delivered(self) -> int:
        return sum(1 for r in self._results if r.delivered)

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.samples if self.samples else 0.0

    def _summary(self, key: str, values: list[float]) -> Summary:
        if key not in self._cache:
            self._cache[key] = summarize(values or [0.0])
        return self._cache[key]  # type: ignore[return-value]

    @property
    def hops(self) -> Summary:
        return self._summary(
            "hops",
            [float(r.hops) for r in self._results if r.delivered],
        )

    @property
    def length(self) -> Summary:
        return self._summary(
            "length", [r.length for r in self._results if r.delivered]
        )

    @property
    def energy(self) -> Summary:
        """Radio energy per delivered route (J); zeros when unmeasured.

        ``_energies`` is index-aligned with ``_results`` (``None`` for
        routes collected without energy), so mixed sets aggregate only
        the measured routes — never a mispaired value.
        """
        return self._summary(
            "energy",
            [
                e
                for r, e in zip(self._results, self._energies)
                if r.delivered and e is not None
            ],
        )

    # -- channel/retransmission aggregates (lossy scenarios) -----------

    @property
    def channel_delivered(self) -> int:
        """Routes delivered end to end: routing found the destination
        *and* every hop survived the channel.  Equals :attr:`delivered`
        for perfect-link routes (no transmission record)."""
        return sum(
            1
            for r, t in zip(self._results, self._transmissions)
            if r.delivered and (t is None or t.delivered)
        )

    @property
    def channel_delivery_rate(self) -> float:
        return self.channel_delivered / self.samples if self.samples else 0.0

    @property
    def retransmits(self) -> Summary:
        """Retransmissions per route, over transmission-carrying routes.

        Undelivered routes count too — a packet that burned its whole
        budget into a dead link is exactly the energy story this
        aggregate exists to tell.  Zeros when the set has no channel
        accounting (perfect links).
        """
        return self._summary(
            "retransmits",
            [
                float(t.retransmits)
                for t in self._transmissions
                if t is not None
            ],
        )

    @property
    def effective_hops(self) -> Summary:
        """Hops actually crossed, over channel-delivered routes.

        The lossy counterpart of :attr:`hops` (which reports the
        routing layer's path over delivered routes).
        """
        return self._summary(
            "effective_hops",
            [
                float(t.effective_hops)
                for r, t in zip(self._results, self._transmissions)
                if t is not None and r.delivered and t.delivered
            ],
        )

    @property
    def retransmit_energy(self) -> Summary:
        """Radio energy incl. retransmissions/acks (J), where measured.

        Summarised over every transmission-carrying route whose energy
        was computed (``energy=True`` workloads) — dropped packets
        included, since their failed attempts cost real energy.
        """
        return self._summary(
            "retransmit_energy",
            [
                t.energy
                for t in self._transmissions
                if t is not None and t.energy is not None
            ],
        )

    @property
    def max_hops(self) -> int:
        return max(
            (r.hops for r in self._results if r.delivered), default=0
        )

    @property
    def perimeter_entries_per_route(self) -> float:
        samples = self.samples or 1
        return sum(r.perimeter_entries for r in self._results) / samples

    @property
    def backup_entries_per_route(self) -> float:
        samples = self.samples or 1
        return sum(r.backup_entries for r in self._results) / samples

    def phase_hops(self) -> dict[str, int]:
        """Total hop count per phase label, across all routes."""
        totals: dict[str, int] = {}
        for result in self._results:
            for phase, hops in result.phase_hops().items():
                totals[phase] = totals.get(phase, 0) + hops
        return totals


class RouteSet:
    """Ordered, per-router collection of routed packets.

    Results append per router in routing order; that order is the
    aggregation order, which keeps float reductions bit-identical to
    the legacy tally pipeline when a Session replays a legacy
    workload.
    """

    def __init__(self) -> None:
        self._results: dict[str, list[RouteResult]] = {}
        # Always index-aligned with _results (None = no energy measured
        # for that route), so merged/mixed sets can never mispair.
        self._energies: dict[str, list[float | None]] = {}
        # Likewise index-aligned: channel/retransmission accounting
        # (None = perfect-link route, no accounting).
        self._transmissions: dict[str, list[Transmission | None]] = {}

    # -- collection -----------------------------------------------------

    def add(
        self,
        result: RouteResult,
        energy: float | None = None,
        router: str | None = None,
        transmission: Transmission | None = None,
    ) -> None:
        """Append one routed packet (optionally with its radio energy
        and its lossy-channel :class:`Transmission` accounting).

        ``router`` overrides the grouping key — the Session passes the
        *registry* name, which may differ from the scheme's own
        ``result.router`` label (e.g. a registered variant of GF).
        """
        key = router if router is not None else result.router
        self._results.setdefault(key, []).append(result)
        self._energies.setdefault(key, []).append(energy)
        self._transmissions.setdefault(key, []).append(transmission)

    def extend(self, results: Iterable[RouteResult]) -> None:
        for result in results:
            self.add(result)

    def merge(self, other: "RouteSet") -> None:
        """Fold another set in, router by router, preserving order."""
        for router, results in other._results.items():
            self._results.setdefault(router, []).extend(results)
        for router, energies in other._energies.items():
            self._energies.setdefault(router, []).extend(energies)
        for router, transmissions in other._transmissions.items():
            self._transmissions.setdefault(router, []).extend(transmissions)

    # -- access ---------------------------------------------------------

    def routers(self) -> tuple[str, ...]:
        """Router names, in insertion (= routing) order."""
        return tuple(self._results)

    def results(self, router: str | None = None) -> tuple[RouteResult, ...]:
        """All routes, or one router's routes, in routing order."""
        if router is not None:
            return tuple(self._results.get(router, ()))
        return tuple(
            result
            for results in self._results.values()
            for result in results
        )

    def aggregate(self, router: str) -> RouterAggregate:
        """Lazy summary of one router's routes."""
        if router not in self._results:
            known = ", ".join(self._results) or "none"
            raise KeyError(
                f"no routes for router {router!r}; present: {known}"
            )
        return RouterAggregate(
            router,
            self._results[router],
            self._energies[router],
            self._transmissions[router],
        )

    def aggregates(self) -> dict[str, RouterAggregate]:
        """Every router's lazy summary, in routing order."""
        return {name: self.aggregate(name) for name in self._results}

    def delivery_rate(self, router: str | None = None) -> float:
        """Delivered fraction for one router, or over every route."""
        if router is not None:
            return self.aggregate(router).delivery_rate
        results = self.results()
        if not results:
            return 0.0
        return sum(1 for r in results if r.delivered) / len(results)

    def __len__(self) -> int:
        return sum(len(r) for r in self._results.values())

    def __iter__(self) -> Iterator[RouteResult]:
        return iter(self.results())

    def __repr__(self) -> str:
        per_router = ", ".join(
            f"{name}:{len(results)}"
            for name, results in self._results.items()
        )
        return f"RouteSet({per_router or 'empty'})"

    def __eq__(self, other: object) -> bool:
        """Value equality: same routes, energies and grouping order.

        Makes the wire round-trip contract directly assertable:
        ``RouteSet.from_dict(rs.to_dict()) == rs``.
        """
        if not isinstance(other, RouteSet):
            return NotImplemented
        return (
            self._results == other._results
            and self._energies == other._energies
            and self._transmissions == other._transmissions
        )

    __hash__ = None  # mutable collection; value equality forbids hashing

    # -- interop with the legacy harness --------------------------------

    def point_result(
        self, deployment_model: str, node_count: int, networks: int
    ):
        """This set as a legacy ``PointResult`` (figures/report input).

        Aggregation runs through the very same ``RouteTally`` folds as
        :func:`repro.experiments.runner.evaluate_point`, in the same
        order, so a Session replay of a legacy workload produces a
        bit-identical point.
        """
        # Imported here: runner imports the registry from this package,
        # and this is the single api -> runner edge.
        from repro.experiments.runner import PointResult, RouteTally

        per_router = {}
        for name, results in self._results.items():
            tally = RouteTally()
            for result in results:
                tally.add(result)
            if tally.samples:
                per_router[name] = tally.finish(name)
        return PointResult(
            deployment_model=deployment_model,
            node_count=node_count,
            networks=networks,
            per_router=per_router,
        )

    # -- serialisation --------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """Every route as a JSON-ready dict, in routing order.

        Each record is the route's :meth:`RouteResult.to_dict` plus,
        when present, the set-level extras: ``registry_router`` (the
        grouping key, only when it differs from the scheme's own
        label), ``energy`` and ``transmission`` (the lossy-channel
        retransmission accounting) — so a round-trip loses nothing,
        and perfect-link sets serialise exactly as before.
        """
        records = []
        for name, results in self._results.items():
            energies = self._energies[name]
            transmissions = self._transmissions[name]
            for result, energy, transmission in zip(
                results, energies, transmissions
            ):
                record = result.to_dict()
                if name != result.router:
                    record["registry_router"] = name
                if energy is not None:
                    record["energy"] = energy
                if transmission is not None:
                    record["transmission"] = transmission.to_dict()
                records.append(record)
        return records

    @classmethod
    def from_dicts(cls, records: Iterable[Mapping]) -> "RouteSet":
        """Rebuild a set from :meth:`to_dicts` output."""
        out = cls()
        for record in records:
            transmission = record.get("transmission")
            out.add(
                RouteResult.from_dict(record),
                energy=record.get("energy"),
                router=record.get("registry_router"),
                transmission=(
                    Transmission.from_dict(transmission)
                    if transmission is not None
                    else None
                ),
            )
        return out

    def to_dict(self) -> dict:
        """The whole set as one JSON-ready document.

        The wire form used by the serve layer
        (:mod:`repro.serve`): the route records of
        :meth:`to_dicts` under a ``"routes"`` key, so the document
        can grow siblings (versioning, per-set metadata) without
        breaking readers that index into it.
        """
        return {"routes": self.to_dicts()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RouteSet":
        """Rebuild a set from :meth:`to_dict` output.

        Raises ``KeyError`` on a document without ``"routes"`` —
        a truncated or foreign payload must not decode as an empty
        (successful-looking) set.
        """
        return cls.from_dicts(data["routes"])

    def to_json(self, path: str | Path) -> Path:
        """Write the set as a JSON array of route records."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dicts(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "RouteSet":
        """Read a set written by :meth:`to_json`."""
        records = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dicts(records)
