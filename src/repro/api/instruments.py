"""Ready-made hop observers for the routing instrumentation hooks.

:meth:`repro.routing.base.Router.route` accepts ``on_hop`` and
``on_phase_change`` callables; these classes are the common consumers,
so tracing, energy accounting and path animation need no router
subclassing:

* :class:`TraceRecorder` — records every :class:`HopEvent` and phase
  transition, and can replay the path growth as animation frames for
  :func:`repro.viz.network_map.path_animation`;
* :class:`EnergyMeter` — accumulates first-order radio energy hop by
  hop, live, using :class:`~repro.routing.metrics.RadioEnergyModel`.
"""

from __future__ import annotations

from repro.network.node import NodeId
from repro.routing.base import HopEvent
from repro.routing.metrics import RadioEnergyModel

__all__ = ["EnergyMeter", "TraceRecorder"]


class TraceRecorder:
    """Collects hop events and phase transitions as they happen.

    Attach both callbacks::

        recorder = TraceRecorder()
        router.route(s, d, on_hop=recorder.on_hop,
                     on_phase_change=recorder.on_phase_change)
        recorder.events          # every HopEvent, in order
        recorder.phase_changes   # (hop_index, old, new) transitions
        recorder.path()          # the node sequence seen so far
    """

    def __init__(self) -> None:
        self.events: list[HopEvent] = []
        self.phase_changes: list[tuple[int, str | None, str]] = []

    def on_hop(self, event: HopEvent) -> None:
        self.events.append(event)

    def on_phase_change(
        self, index: int, previous: str | None, new: str
    ) -> None:
        self.phase_changes.append((index, previous, new))

    def path(self) -> tuple[NodeId, ...]:
        """The node sequence implied by the recorded hops."""
        if not self.events:
            return ()
        nodes = [self.events[0].sender]
        nodes.extend(event.receiver for event in self.events)
        return tuple(nodes)

    def path_prefixes(self) -> list[tuple[NodeId, ...]]:
        """Growing path per hop — animation frames for the viz layer."""
        full = self.path()
        return [full[: i + 2] for i in range(len(self.events))]

    def __len__(self) -> int:
        return len(self.events)


class EnergyMeter:
    """Accumulates radio energy per hop, while the packet is in flight.

    Unlike :func:`~repro.routing.metrics.path_energy` (which walks a
    finished result), the meter observes live — mid-route budgets,
    per-phase breakdowns and abort-on-budget experiments all become
    one callback::

        meter = EnergyMeter(bits=1_000)
        router.route(s, d, on_hop=meter.on_hop)
        meter.total_j                # transmit + receive, joules
        meter.per_phase_j["greedy"]  # energy by routing phase
    """

    def __init__(
        self, bits: int = 1, model: RadioEnergyModel | None = None
    ) -> None:
        self.bits = bits
        self.model = model if model is not None else RadioEnergyModel()
        self.total_j = 0.0
        self.per_phase_j: dict[str, float] = {}

    def on_hop(self, event: HopEvent) -> None:
        hop_j = self.model.transmit(
            event.distance, self.bits
        ) + self.model.receive(self.bits)
        self.total_j += hop_j
        self.per_phase_j[event.phase] = (
            self.per_phase_j.get(event.phase, 0.0) + hop_j
        )
