"""The Session facade: one materialised network, ready to route.

A :class:`Session` turns a declarative
:class:`~repro.api.scenario.Scenario` into a concrete network exactly
once — deployment, unit-disk graph, edge detection, failure schedule,
information construction, hole boundaries, routers — and then answers
routing questions against it:

* :meth:`Session.route` — one packet through one scheme (with
  optional hop-level observers);
* :meth:`Session.route_pairs` — a batch of random pairs through any
  subset of schemes;
* :meth:`Session.run` — the scenario's full workload, returning a
  :class:`~repro.api.routeset.RouteSet` with lazy aggregates.

:func:`run_scenario` evaluates a multi-network scenario (one Session
per network, merged), and is bit-identical to the legacy
:func:`repro.experiments.runner.evaluate_point` pipeline for plain
IA/FA scenarios — the golden tests pin this.
"""

from __future__ import annotations

import random
from typing import Iterator, Mapping, Sequence

from repro.api.registry import RouterRegistry, default_registry
from repro.api.routeset import RouteSet
from repro.api.scenario import (
    FailureSpec,
    NodesFailure,
    RandomFailure,
    RegionFailure,
    Scenario,
)
from repro.core.model import InformationModel
from repro.experiments.runner import _network_seed
from repro.experiments.workload import sample_pairs
from repro.geometry import Point
from repro.network.channel import ChannelState, channel_seed
from repro.network.dynamic import DynamicTopology
from repro.network.edges import EdgeDetector
from repro.network.failures import (
    fail_nodes_dynamic,
    fail_region_dynamic,
)
from repro.network.deployment import (
    UniformDeployment,
    deploy_forbidden_area_model,
    deploy_uniform_model,
)
from repro.network.graph import WasnGraph
from repro.network.mobility import RandomWaypointMobility
from repro.network.node import NodeId
from repro.protocols.boundhole import build_hole_boundaries
from repro.routing import RouteResult, Router
from repro.routing.base import OnHop, OnPhaseChange
from repro.routing.metrics import path_energy, retransmission_energy

__all__ = ["Session", "connected_session", "run_scenario"]

#: Scenario fields :meth:`Session.clone` may change: they affect which
#: routes are asked for and how routers are configured, but never the
#: materialised network itself (deployment, failures, topology).
_ROUTING_SIDE_FIELDS = frozenset(
    {
        "routers",
        "router_options",
        "routes_per_network",
        "packet_bits",
        "networks",
        # The channel sits *on top of* the materialised network: it
        # changes what transmissions cost, never which nodes and edges
        # exist — so clones may swap it freely.
        "channel",
        "link_faults",
        "max_retransmits",
    }
)


def _apply_failure(
    topology: DynamicTopology, event: FailureSpec, rng: random.Random
) -> None:
    """Apply one failure-schedule entry to the live topology."""
    if isinstance(event, RegionFailure):
        fail_region_dynamic(
            topology,
            (Point(event.x, event.y), event.radius),
            protect=event.protect,
        )
    elif isinstance(event, NodesFailure):
        fail_nodes_dynamic(topology, event.nodes)
    elif isinstance(event, RandomFailure):
        protected = set(event.protect)
        pool = [u for u in topology.alive_ids if u not in protected]
        count = min(event.count, len(pool))
        fail_nodes_dynamic(topology, rng.sample(pool, count))
    else:
        raise TypeError(
            f"unknown failure spec {event!r}; expected RegionFailure, "
            "NodesFailure or RandomFailure"
        )


def _apply_failures(
    topology: DynamicTopology, scenario: Scenario, rng: random.Random
) -> None:
    """Run the scenario's failure schedule, in order, in place.

    Events apply sequentially to the live topology — each takes its
    victims down incrementally (only incident edges are touched)
    instead of copying the surviving graph, but selects them from the
    alive nodes in ascending id order exactly as the historical
    graph-copy pipeline did, so seeded schedules are bit-identical.  A
    :class:`NodesFailure` naming a node that is not (or no longer)
    present raises ``KeyError`` — a typo'd id silently failing nothing
    would fake a "with failures" run.
    """
    for event in scenario.failures:
        _apply_failure(topology, event, rng)


class _PreparedNetwork:
    """A routable network with lazily built information bases.

    Satisfies the registry's
    :class:`~repro.api.registry.RoutableNetwork` protocol like the
    eager ``NetworkInstance``, but defers the information model
    (Algorithm 2) and the BOUNDHOLE boundary walks until a router or
    caller actually touches them — a session selecting only LGF never
    pays for either.  Laziness cannot change any value: both are pure
    functions of the (already fixed) graph.
    """

    def __init__(
        self,
        graph: WasnGraph,
        deployment_model: str,
        seed: int,
        construction_backend: str = "auto",
    ) -> None:
        self.graph = graph
        self.deployment_model = deployment_model
        self.seed = seed
        self.construction_backend = construction_backend
        self._model: InformationModel | None = None
        self._boundaries = None

    @property
    def model(self) -> InformationModel:
        if self._model is None:
            self._model = InformationModel.build(
                self.graph, backend=self.construction_backend
            )
        return self._model

    @property
    def boundaries(self):
        if self._boundaries is None:
            self._boundaries = build_hole_boundaries(self.graph)
        return self._boundaries


def _materialise(
    scenario: Scenario,
    network_index: int,
    construction_backend: str = "auto",
) -> _PreparedNetwork:
    """Build network ``network_index`` of a scenario, deterministically.

    Seed derivation and graph construction replicate the legacy
    :func:`~repro.experiments.workload.build_network` step for step
    (same RNG stream, same deployment, same edge detection) — that is
    the bit-identity bridge the golden tests pin.  Failure schedules
    slot in between graph construction and edge detection, so the
    surviving network is what re-runs its hull detection and
    information construction, exactly as a deployed WASN would.
    """
    if scenario.mobility is not None:
        # A mobile scenario has no meaningful static network; routing
        # it as one would report static numbers under a mobile label.
        raise ValueError(
            "mobile scenarios route per topology snapshot; iterate "
            "Session.epochs() instead of the static routing calls"
        )
    config = scenario.to_config()
    seed = _network_seed(
        config, scenario.deployment_model, scenario.node_count, network_index
    )
    rng = random.Random(seed)
    if scenario.obstacles:
        # Explicit shapes replace the FA model's random field.
        deployment = UniformDeployment(scenario.area, scenario.obstacles)
        positions = list(deployment.sample(scenario.node_count, rng))
    elif scenario.deployment_model == "FA":
        positions = list(
            deploy_forbidden_area_model(
                scenario.node_count,
                scenario.area,
                rng,
                obstacle_count=scenario.obstacle_count,
                min_obstacle_size=scenario.min_obstacle_size,
                max_obstacle_size=scenario.max_obstacle_size,
            ).positions
        )
    else:
        positions = list(
            deploy_uniform_model(
                scenario.node_count, scenario.area, rng
            ).positions
        )
    # The failure schedule runs against a live DynamicTopology — each
    # event touches only its incident edges — and the final snapshot
    # (with hull-based edge detection re-run over the survivors) is
    # bit-identical to the historical rebuild-per-event pipeline.
    topology = DynamicTopology(
        positions,
        scenario.radius,
        edge_detector=EdgeDetector(strategy="convex"),
        backend=construction_backend,
    )
    _apply_failures(topology, scenario, rng)
    return _PreparedNetwork(
        topology.graph,
        scenario.deployment_model,
        seed,
        construction_backend=construction_backend,
    )


class Session:
    """One prepared network plus its routers, behind a small facade.

    The expensive work (deployment, information model, hole
    boundaries, router setup) happens lazily on first use and exactly
    once; every routing call afterwards is cheap and deterministic.
    Laziness matters for mobility scenarios, whose epochs build their
    own per-snapshot networks and never touch the static one.
    """

    def __init__(
        self,
        scenario: Scenario | None = None,
        network_index: int = 0,
        registry: RouterRegistry | None = None,
        construction_backend: str = "auto",
        _instance: "_PreparedNetwork | None" = None,
    ) -> None:
        self.scenario = scenario if scenario is not None else Scenario()
        self.network_index = network_index
        # How the network materialises (unit-disk build, planarization
        # masks, safety classification): "auto" vectorizes when numpy
        # is importable and degrades silently otherwise.  A Session
        # parameter rather than a Scenario field on purpose — backends
        # cannot change any value, so they must not perturb Study
        # cache fingerprints.
        self.construction_backend = construction_backend
        self._registry = (
            registry if registry is not None else default_registry
        )
        self._instance_cache = _instance
        self._routers_cache: dict[str, Router] | None = None
        self._channel_cache: ChannelState | None = None

    @classmethod
    def from_graph(
        cls,
        graph: WasnGraph,
        scenario: Scenario | None = None,
        seed: int = 0,
        registry: RouterRegistry | None = None,
        routers: "Mapping[str, Router] | None" = None,
        construction_backend: str = "auto",
    ) -> "Session":
        """Session over an already-built graph (mobility snapshots,
        externally generated topologies).  The information model and
        hole boundaries are built lazily, on first need; the scenario
        contributes router selection and workload parameters only.

        ``routers`` injects already-constructed routers instead of
        building fresh ones — the resident-session path of
        :mod:`repro.serve`, whose routers track a live
        :class:`~repro.network.dynamic.DynamicTopology` and rebind
        incrementally.  The caller guarantees they are bound to
        ``graph``; the rebind == fresh contract (pinned by the router
        fuzz suite) is what makes the shortcut exact.
        """
        scenario = scenario if scenario is not None else Scenario()
        instance = _PreparedNetwork(
            graph,
            scenario.deployment_model,
            seed,
            construction_backend=construction_backend,
        )
        session = cls(
            scenario,
            network_index=0,
            registry=registry,
            construction_backend=construction_backend,
            _instance=instance,
        )
        if routers is not None:
            session._routers_cache = dict(routers)
        return session

    def clone(self, **changes) -> "Session":
        """A Session sharing this one's materialised network.

        Materialisation — deployment, failure schedule, unit-disk
        construction, the columnar TopologyCore and the lazy
        information bases — is the expensive part of a Session, and it
        is a pure function of the scenario's *network-side* fields.
        ``clone`` reuses it: the returned Session answers routing
        queries over the very same prepared network (O(1) startup,
        pinned by ``benchmarks/bench_serve.py``), optionally with
        different *routing-side* fields::

            fast = session.clone(routers=("GF",), routes_per_network=100)

        Only routing-side changes are accepted — ``routers``,
        ``router_options``, ``routes_per_network``, ``packet_bits``,
        ``networks``, ``channel``, ``link_faults`` and
        ``max_retransmits`` (the channel layers on top of the
        materialised network without altering it, so lossy variants of
        one deployment share its topology).  Changing a network-side
        field (density,
        seed, failures, …) raises ``ValueError``: the shared network
        would not match the new scenario, and silently serving stale
        topology under a fresh label is exactly the bug this guard
        exists to prevent.  Results are bit-identical to a
        from-scratch ``Session`` of the same scenario (same network
        seed, same pair stream); the golden serve tests pin this.
        """
        unsupported = set(changes) - _ROUTING_SIDE_FIELDS
        if unsupported:
            allowed = ", ".join(sorted(_ROUTING_SIDE_FIELDS))
            raise ValueError(
                "clone() only changes routing-side fields "
                f"({allowed}); got network-side change(s): "
                f"{', '.join(sorted(unsupported))} — build a new "
                "Session for a different network"
            )
        scenario = (
            self.scenario.with_(**changes) if changes else self.scenario
        )
        return Session(
            scenario,
            self.network_index,
            registry=self._registry,
            construction_backend=self.construction_backend,
            _instance=self.instance,
        )

    # -- materialised state ---------------------------------------------

    @property
    def instance(self) -> _PreparedNetwork:
        """The prepared network (graph + lazy information bases)."""
        if self._instance_cache is None:
            self._instance_cache = _materialise(
                self.scenario,
                self.network_index,
                construction_backend=self.construction_backend,
            )
        return self._instance_cache

    @property
    def graph(self) -> WasnGraph:
        return self.instance.graph

    @property
    def model(self) -> InformationModel:
        return self.instance.model

    @property
    def boundaries(self):
        return self.instance.boundaries

    @property
    def channel(self) -> ChannelState | None:
        """The materialised lossy channel, or ``None`` for perfect links.

        Built lazily per session (cheap: link probabilities price on
        first touch) and seeded from the network seed via
        :func:`~repro.network.channel.channel_seed`, so the same
        scenario reproduces the same channel across processes — and a
        mobility epoch, whose session carries its own seed, gets its
        own channel.  ``None`` exactly when ``scenario.is_lossy`` is
        false: perfect-link sessions never touch the channel layer,
        which is the bit-identity guarantee the golden tests pin.
        """
        if not self.scenario.is_lossy:
            return None
        if self._channel_cache is None:
            self._channel_cache = ChannelState(
                self.graph,
                self.scenario.radius,
                self.scenario.channel,
                faults=self.scenario.link_faults,
                seed=channel_seed(self.instance.seed),
                max_retransmits=self.scenario.max_retransmits,
            )
        return self._channel_cache

    def _router_map(self) -> dict[str, Router]:
        if self._routers_cache is None:
            self._routers_cache = self._registry.build(
                self.instance,
                names=self.scenario.routers or None,
                options=self.scenario.router_options,
            )
        return self._routers_cache

    @property
    def routers(self) -> dict[str, Router]:
        """Name -> constructed router, in registry (legend) order."""
        return dict(self._router_map())

    def router(self, name: str | None = None) -> Router:
        """One router by name (or the only one, if just one is set)."""
        routers = self._router_map()
        if name is None:
            if len(routers) == 1:
                return next(iter(routers.values()))
            raise ValueError(
                "session has several routers "
                f"({', '.join(routers)}); name one"
            )
        try:
            return routers[name]
        except KeyError:
            known = ", ".join(routers)
            raise KeyError(
                f"router {name!r} not in this session; present: {known}"
            ) from None

    def connected(self) -> bool:
        """Whether the materialised graph is one component."""
        return self.graph.is_connected()

    # -- routing --------------------------------------------------------

    def route(
        self,
        source: NodeId,
        destination: NodeId,
        router: str | None = None,
        on_hop: OnHop | None = None,
        on_phase_change: OnPhaseChange | None = None,
    ) -> RouteResult:
        """Route one packet (hop observers pass straight through)."""
        return self.router(router).route(
            source,
            destination,
            on_hop=on_hop,
            on_phase_change=on_phase_change,
        )

    def route_all(
        self, source: NodeId, destination: NodeId
    ) -> dict[str, RouteResult]:
        """One packet through every configured scheme."""
        return {
            name: router.route(source, destination)
            for name, router in self._router_map().items()
        }

    def sample_pairs(
        self, count: int | None = None
    ) -> list[tuple[NodeId, NodeId]]:
        """The scenario's deterministic source-destination pairs.

        Re-entrant: every call re-derives the same pair stream (the
        legacy harness's ``seed + 1`` derivation), so repeated batches
        are replays, not fresh draws.
        """
        if count is None:
            count = self.scenario.routes_per_network
        pair_rng = random.Random(self.instance.seed + 1)
        return sample_pairs(self.graph, count, pair_rng)

    def route_pairs(
        self,
        count: int | None = None,
        routers: Sequence[str] | None = None,
        energy: bool = False,
        backend: str = "auto",
    ) -> RouteSet:
        """Route a batch of sampled pairs through the selected schemes.

        Iteration order (router-major, pairs inner) and pair sampling
        replicate the legacy ``evaluate_network`` loop exactly.
        ``energy=True`` additionally folds per-route radio energy
        (``scenario.packet_bits`` bits) into the set — off by default,
        since it costs an extra O(hops) walk per route that most
        workloads never read.  ``backend`` is handed to
        :meth:`~repro.routing.base.Router.route_batch` unchanged
        (``"auto"``/``"scalar"``/``"numpy"`` — every backend returns
        bit-identical results, so it only selects speed).
        """
        pairs = self.sample_pairs(count)
        selected = (
            tuple(self._router_map()) if routers is None else tuple(routers)
        )
        # Lossy scenarios replay every routed path over the seeded
        # channel (a pure function of seed/link/slot — identical across
        # backends and processes); perfect channels skip the layer
        # entirely, keeping default runs bit-identical to the seed.
        state = self.channel
        out = RouteSet()
        for name in selected:
            router = self.router(name)
            # The whole batch runs through the scheme's columnar fast
            # path (bit-identical to sequential route() calls — the
            # equivalence suite pins it); schemes without one fall
            # back to per-pair routing inside route_batch.
            for result in router.route_batch(pairs, backend=backend):
                transmission = None
                if state is not None:
                    transmission = state.transmit_route(
                        result.path, result.delivered
                    )
                    if energy:
                        transmission = state.with_energy(
                            transmission,
                            retransmission_energy(
                                result,
                                self.graph,
                                transmission,
                                bits=self.scenario.packet_bits,
                            ),
                        )
                out.add(
                    result,
                    energy=(
                        path_energy(
                            result,
                            self.graph,
                            bits=self.scenario.packet_bits,
                        )
                        if energy
                        else None
                    ),
                    # Group under the registry name (the legend name),
                    # which may differ from the scheme's own label.
                    router=name,
                    transmission=transmission,
                )
        return out

    def run(self, backend: str = "auto") -> RouteSet:
        """The scenario's full per-network workload."""
        return self.route_pairs(backend=backend)

    # -- mobility -------------------------------------------------------

    def epochs(self) -> Iterator["Session"]:
        """Sessions over the mobility schedule's topology snapshots.

        The topology is maintained incrementally: one live
        :class:`~repro.network.dynamic.DynamicTopology` absorbs each
        epoch's position deltas (only the edges that actually changed
        are recomputed, and edge-node detection re-runs per snapshot),
        instead of rebuilding the unit-disk graph per epoch.  Each
        yielded session still rebuilds the information model on the
        drifted topology (the paper's periodic beaconing); routers are
        reconstructed per snapshot.  Requires ``scenario.mobility``.
        """
        schedule = self.scenario.mobility
        if schedule is None:
            raise ValueError("scenario has no mobility schedule")
        seed = self._walker_seed()
        walker = RandomWaypointMobility(
            self.scenario.area,
            self.scenario.node_count,
            random.Random(seed),
            speed=(schedule.speed_min, schedule.speed_max),
            pause=schedule.pause,
        )
        topology = walker.dynamic_topology(
            self.scenario.radius,
            edge_detector=EdgeDetector(strategy="convex"),
        )
        for epoch in range(schedule.epochs):
            if epoch:
                walker.advance(schedule.dt)
                topology.move_many(enumerate(walker.positions()))
            yield Session.from_graph(
                topology.graph,
                self.scenario,
                seed=seed + 1 + epoch,
                registry=self._registry,
                construction_backend=self.construction_backend,
            )

    def _walker_seed(self) -> int:
        """The session's network seed, derived without materialising.

        Equals ``instance.seed`` for scenario-built sessions; mobility
        epochs use it so a mobile scenario never pays for the static
        network it will not route on.
        """
        if self._instance_cache is not None:
            return self._instance_cache.seed
        return _network_seed(
            self.scenario.to_config(),
            self.scenario.deployment_model,
            self.scenario.node_count,
            self.network_index,
        )

    def __repr__(self) -> str:
        return (
            f"Session({self.scenario.deployment_model}, "
            f"n={self.scenario.node_count}, network={self.network_index}, "
            f"routers=[{', '.join(self.scenario.routers) or 'all'}])"
        )


def run_scenario(
    scenario: Scenario,
    registry: RouterRegistry | None = None,
    backend: str = "auto",
) -> RouteSet:
    """Evaluate a scenario across all its networks, merged in order.

    For plain IA/FA scenarios this reproduces the legacy
    ``evaluate_point`` numbers bit-identically (per-network seeds,
    pair streams and aggregation order all match).  A *mobile*
    scenario is evaluated per topology epoch — each network's
    incrementally maintained snapshots (see :meth:`Session.epochs`)
    route their own workload — and the epochs merge in order, so the
    result aggregates over the whole drift.
    """
    merged = RouteSet()
    for index in range(scenario.networks):
        session = Session(scenario, index, registry=registry)
        if scenario.mobility is not None:
            for epoch_session in session.epochs():
                merged.merge(epoch_session.run(backend=backend))
        else:
            merged.merge(session.run(backend=backend))
    return merged


def connected_session(
    scenario: Scenario,
    attempts: int = 50,
    registry: RouterRegistry | None = None,
) -> Session:
    """First session (by network index) whose graph is connected.

    The facade form of the examples' old retry loops: network index
    varies the per-network seed, so trying successive indices is the
    deterministic way to find a connected deployment.
    """
    for index in range(attempts):
        session = Session(scenario, index, registry=registry)
        if session.connected():
            return session
    raise RuntimeError(
        f"no connected deployment in {attempts} attempts for {scenario}"
    )
