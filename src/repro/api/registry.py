"""Pluggable router registry: routing schemes discoverable by name.

The paper evaluates four schemes, but nothing about the harness is
four-specific: a scheme is just "a way to build a
:class:`~repro.routing.base.Router` for a prepared network".  This
module makes that the extension point.  A scheme registers once::

    from repro.api import register_router

    @register_router("SLGF2-DFS", order=4.5)
    def build_slgf2_dfs(instance, **kwargs):
        return Slgf2Router(instance.model, perimeter_mode="dfs", **kwargs)

and from then on it is constructible by name everywhere — the CLI's
``--routers`` flag, :class:`~repro.api.Scenario`, the sweep engine,
figure legends and the result cache — with no harness edits.

``order`` controls presentation order (figure legends, table columns);
the paper's four schemes occupy orders 0-3, so third-party schemes
slot after them by default.

Cache identity: :meth:`RouterRegistry.fingerprint` digests the
factories behind a name selection (module-qualified names, plus source
digests for factories defined outside the ``repro`` package, plus any
per-router options), so the sweep result cache distinguishes runs with
different registered routers or options.  A factory with no stable
identity (lambda/closure) makes the selection uncacheable rather than
wrongly cached.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Mapping, Protocol, Sequence

from repro.core.model import InformationModel
from repro.network.graph import WasnGraph
from repro.routing import (
    GreedyRouter,
    LgfRouter,
    Router,
    SlgfRouter,
    Slgf2Router,
)

__all__ = [
    "RouterRegistry",
    "RouterSpec",
    "RegistryRouterFactory",
    "RoutableNetwork",
    "default_registry",
    "register_router",
    "router_order",
]


class RoutableNetwork(Protocol):
    """What a router factory receives: a fully prepared network.

    Structurally identical to
    :class:`~repro.experiments.workload.NetworkInstance` (which is the
    usual concrete type); a Protocol here keeps the registry importable
    without the experiments layer.
    """

    graph: WasnGraph
    model: InformationModel
    boundaries: object


#: A router factory: builds one router for a prepared network.
RouterBuilder = Callable[..., Router]


@dataclass(frozen=True)
class RouterSpec:
    """One registered scheme: its name, factory and legend position."""

    name: str
    factory: RouterBuilder
    order: float
    description: str = ""

    def build(self, instance: RoutableNetwork, **kwargs) -> Router:
        """Construct the router for ``instance``."""
        return self.factory(instance, **kwargs)


def _factory_identity(factory: Callable) -> str | None:
    """Stable cross-run identity of a factory, or ``None``.

    Same rules as
    :func:`repro.experiments.cache.factory_fingerprint`: module-level
    functions are nameable; package-external ones additionally fold in
    their module source so edits invalidate cached results.
    """
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", None)
    if not module or not qualname:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    try:
        source = inspect.getsourcefile(factory)
    except TypeError:
        return None
    if source is None:
        return None
    path = Path(source).resolve()
    package_root = Path(__file__).resolve().parent.parent
    if path.is_relative_to(package_root):
        # Package code is covered by the sweep-wide source digest.
        return f"{module}:{qualname}"
    try:
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None
    return f"{module}:{qualname}:{digest}"


class RouterRegistry:
    """Mutable name -> :class:`RouterSpec` mapping with stable order.

    Names are case-sensitive and unique; re-registering a taken name
    raises (use :meth:`unregister` first if replacement is really
    intended — silent shadowing of a scheme would corrupt comparisons).
    """

    def __init__(self) -> None:
        # Equal orders tie-break by registration (dict insertion)
        # order, via sorted()'s stability in names().
        self._specs: dict[str, RouterSpec] = {}

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        factory: RouterBuilder | None = None,
        *,
        order: float | None = None,
        description: str = "",
    ):
        """Register ``factory`` under ``name``.

        Usable directly (``registry.register("GF", build_gf)``) or as
        a decorator (``@registry.register("GF", order=0)``).  ``order``
        defaults to after every currently registered scheme.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"router name must be a non-empty string, got {name!r}")

        def _register(builder: RouterBuilder) -> RouterBuilder:
            if name in self._specs:
                raise ValueError(
                    f"router {name!r} is already registered; unregister it "
                    "first if you really mean to replace it"
                )
            position = order
            if position is None:
                position = max(
                    (spec.order for spec in self._specs.values()),
                    default=-1.0,
                ) + 1.0
            self._specs[name] = RouterSpec(
                name=name,
                factory=builder,
                order=float(position),
                description=description,
            )
            return builder

        if factory is not None:
            _register(factory)
            return factory
        return _register

    def unregister(self, name: str) -> None:
        """Remove a scheme (mainly for tests and experiment teardown)."""
        self.get(name)  # raise the helpful error on unknown names
        del self._specs[name]

    # -- lookup ---------------------------------------------------------

    def get(self, name: str) -> RouterSpec:
        """The spec for ``name``; unknown names list what *is* known."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(self.names()) or "none registered"
            raise KeyError(
                f"unknown router {name!r}; known routers: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Every registered name, in presentation (legend) order."""
        return tuple(
            spec.name
            for spec in sorted(self._specs.values(), key=lambda s: s.order)
        )

    def describe_unknown(self, names: Sequence[str]) -> str | None:
        """Usage-style error message for unknown names, or ``None``.

        The one validation message every name-taking CLI surface
        shares, so the wording cannot drift between entry points.
        """
        unknown = [n for n in names if n not in self]
        if not unknown:
            return None
        return (
            f"unknown router(s) {', '.join(unknown)}; "
            f"registered: {', '.join(self.names())}"
        )

    def specs(self) -> tuple[RouterSpec, ...]:
        """Every spec, in presentation order."""
        return tuple(self.get(name) for name in self.names())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._specs)

    # -- construction ---------------------------------------------------

    def create(
        self, name: str, instance: RoutableNetwork, **kwargs
    ) -> Router:
        """Build one router by name for a prepared network."""
        return self.get(name).build(instance, **kwargs)

    def build(
        self,
        instance: RoutableNetwork,
        names: Sequence[str] | None = None,
        options: Mapping[str, Mapping] | None = None,
    ) -> dict[str, Router]:
        """Build a router per name, in presentation order.

        The result is always ordered by the registry's ``order`` keys,
        regardless of the order ``names`` are given in (legends and
        tables must not depend on call-site spelling).  ``names=None``
        means every registered scheme.  ``options`` maps
        a router name to extra constructor kwargs; an option for a
        name outside the selection is an error (it would otherwise be
        silently ignored — the classic misspelled-knob trap).
        """
        selected = self.names() if names is None else tuple(names)
        for name in selected:
            self.get(name)  # validate early, with the helpful error
        options = dict(options or {})
        unknown = set(options) - set(selected)
        if unknown:
            raise KeyError(
                f"router options for unselected router(s) "
                f"{sorted(unknown)}; selected: {list(selected)}"
            )
        ordered = [n for n in self.names() if n in selected]
        return {
            name: self.create(name, instance, **dict(options.get(name, {})))
            for name in ordered
        }

    # -- cache identity -------------------------------------------------

    def fingerprint(
        self,
        names: Sequence[str] | None = None,
        options: Mapping[str, Mapping] | None = None,
    ) -> str | None:
        """Digest identifying a name selection's factories and options.

        ``None`` when any selected factory has no stable identity —
        such a selection must not be cached (two different lambdas
        would collide under one key).

        The selection is normalised to registry order first — exactly
        as :meth:`build` orders construction — so spelling the same
        names in a different order yields the same key (and the same
        warm cache).
        """
        selected = self.names() if names is None else tuple(names)
        for name in selected:
            self.get(name)  # unknown names get the helpful error
        chosen = set(selected)
        ordered = [n for n in self.names() if n in chosen]
        parts: list[str] = []
        for name in ordered:
            identity = _factory_identity(self.get(name).factory)
            if identity is None:
                return None
            opts = dict((options or {}).get(name, {}))
            try:
                # Strict JSON only: a repr() fallback would let two
                # distinct option objects with coinciding reprs share
                # a key (wrongly cached) or address-bearing reprs
                # never hit; non-JSON options are uncacheable instead.
                encoded = json.dumps(opts, sort_keys=True)
            except (TypeError, ValueError):
                return None
            parts.append(f"{name}={identity}|{encoded}")
        payload = ";".join(parts)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: The process-wide registry every facade consults by default.
default_registry = RouterRegistry()

#: Decorator/function registering into :data:`default_registry`.
register_router = default_registry.register


def router_order() -> tuple[str, ...]:
    """Presentation order of the default registry's schemes.

    Figure legends, table columns and result dictionaries all follow
    this order; newly registered schemes join it by their ``order``.
    """
    return default_registry.names()


class RegistryRouterFactory:
    """A picklable router factory bound to registry entries by name.

    The bridge between the registry and the experiment engine: it
    *is* a ``RouterFactory`` (callable ``instance -> dict[name,
    Router]``), resolves its specs at construction time (so later
    registrations don't silently change an in-flight sweep), ships to
    worker processes by pickling the underlying module-level factory
    functions, and exposes :attr:`cache_fingerprint` so the result
    cache keys on exactly the selected schemes and options.
    """

    def __init__(
        self,
        names: Sequence[str] | None = None,
        options: Mapping[str, Mapping] | None = None,
        registry: RouterRegistry | None = None,
    ) -> None:
        registry = registry if registry is not None else default_registry
        self.names = registry.names() if names is None else tuple(names)
        self.options = {
            name: dict(opts) for name, opts in dict(options or {}).items()
        }
        unknown = set(self.options) - set(self.names)
        if unknown:
            raise KeyError(
                f"router options for unselected router(s) {sorted(unknown)}"
            )
        # Resolve now: carries the factories themselves, so pickling
        # works for any importable module, not just repro's.
        self._specs = tuple(registry.get(name) for name in self.names)
        self._fingerprint = registry.fingerprint(self.names, self.options)

    def __call__(self, instance: RoutableNetwork) -> dict[str, Router]:
        ordered = sorted(self._specs, key=lambda s: s.order)
        return {
            spec.name: spec.build(
                instance, **self.options.get(spec.name, {})
            )
            for spec in ordered
        }

    @property
    def cache_fingerprint(self) -> str | None:
        """Cache identity (see :meth:`RouterRegistry.fingerprint`)."""
        return self._fingerprint

    def as_registry(self) -> RouterRegistry:
        """A standalone registry holding exactly this factory's specs.

        The bridge into Scenario-based evaluation (`repro.api.study`):
        a Study cell resolves router *names*, so a factory that was
        snapshotted from some registry state hands that exact state
        over — later registrations or unregistrations in the source
        registry cannot leak into an in-flight study.
        """
        registry = RouterRegistry()
        for spec in self._specs:
            registry.register(
                spec.name,
                spec.factory,
                order=spec.order,
                description=spec.description,
            )
        return registry

    def __repr__(self) -> str:
        return f"RegistryRouterFactory(names={list(self.names)!r})"


# ---------------------------------------------------------------------------
# The paper's four schemes, registered exactly as Section 5 runs them:
# GF gets BOUNDHOLE boundary information, LGF/SLGF run quadrant-scoped,
# SLGF2 defaults.


@register_router("GF", order=0, description="greedy + BOUNDHOLE recovery")
def build_gf(instance: RoutableNetwork, **kwargs) -> Router:
    kwargs.setdefault("recovery", "boundhole")
    if kwargs["recovery"] == "boundhole":
        kwargs.setdefault("hole_boundaries", instance.boundaries)
    return GreedyRouter(instance.graph, **kwargs)


@register_router("LGF", order=1, description="location-aided greedy (Alg. 1)")
def build_lgf(instance: RoutableNetwork, **kwargs) -> Router:
    kwargs.setdefault("candidate_scope", "quadrant")
    return LgfRouter(instance.graph, **kwargs)


@register_router("SLGF", order=2, description="safety-informed LGF")
def build_slgf(instance: RoutableNetwork, **kwargs) -> Router:
    kwargs.setdefault("candidate_scope", "quadrant")
    return SlgfRouter(instance.model, **kwargs)


@register_router("SLGF2", order=3, description="shape-aware SLGF (Alg. 3)")
def build_slgf2(instance: RoutableNetwork, **kwargs) -> Router:
    return Slgf2Router(instance.model, **kwargs)
