"""Deprecated density-sweep wrappers (superseded by :mod:`repro.api.study`).

``sweeps()``/``sweep()`` predate the declarative Study API: they could
express exactly one grid — deployment model × node count — while every
scenario feature added since (failure schedules, mobility, obstacle
fields, per-scheme router options) was unsweepable.
:class:`~repro.api.study.Study` expresses all of it::

    # before                                    # now
    sweeps(cfg, ("IA", "FA"), routers=names)    Study.from_config(cfg, ("IA", "FA"), routers=names).run()

Both functions survive one release as warning shims delegating to
:class:`Study` (matching the repo's one-release deprecation pattern);
their panels stay bit-identical to the historical output.  See the
migration table in ``docs/API.md``.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Sequence

from repro.api.registry import RegistryRouterFactory, RouterRegistry
from repro.experiments.cache import ResultCache
from repro.experiments.config import QUICK_CONFIG, ExperimentConfig
from repro.experiments.progress import Progress
from repro.experiments.sweep import SweepResult, run_sweeps

__all__ = ["sweep", "sweeps"]


def sweeps(
    config: ExperimentConfig | None = None,
    models: Sequence[str] = ("IA", "FA"),
    routers: Sequence[str] | None = None,
    router_options: Mapping[str, Mapping] | None = None,
    progress: Progress | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    registry: RouterRegistry | None = None,
) -> dict[str, SweepResult]:
    """Deprecated: density sweeps by router name.

    Delegates to a density :class:`~repro.api.study.Study`; build one
    directly (``Study.from_config(config, models, ...)``) for the same
    panels plus streaming, richer axes and scenario-keyed caching.
    """
    warnings.warn(
        "repro.api.sweeps() is deprecated and will be removed next "
        "release; use repro.api.Study.from_config(config, models, "
        "routers=...).run() and its .sweep_result(model) adapter "
        "(see docs/API.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _study_sweeps(
        config if config is not None else QUICK_CONFIG,
        tuple(models),
        routers=routers,
        router_options=router_options,
        progress=progress,
        jobs=jobs,
        cache=cache,
        registry=registry,
    )


def sweep(
    config: ExperimentConfig | None = None,
    model: str = "IA",
    **kwargs,
) -> SweepResult:
    """Deprecated: one deployment model's sweep (see :func:`sweeps`)."""
    warnings.warn(
        "repro.api.sweep() is deprecated and will be removed next "
        "release; use repro.api.Study.from_config(config, (model,), "
        "routers=...).run() and its .sweep_result(model) adapter "
        "(see docs/API.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _study_sweeps(
        config if config is not None else QUICK_CONFIG, (model,), **kwargs
    )[model]


def _study_sweeps(
    config: ExperimentConfig,
    models: tuple[str, ...],
    routers: Sequence[str] | None = None,
    router_options: Mapping[str, Mapping] | None = None,
    progress: Progress | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    registry: RouterRegistry | None = None,
) -> dict[str, SweepResult]:
    # The factory validates the selection eagerly (unknown names,
    # options for unselected routers) and run_sweeps compiles it onto
    # a density Study — one copy of that logic for every caller.
    factory = RegistryRouterFactory(
        names=routers, options=router_options, registry=registry
    )
    return run_sweeps(
        config,
        models,
        router_factory=factory,
        progress=progress,
        jobs=jobs,
        cache=cache,
    )
