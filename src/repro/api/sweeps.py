"""API-level density sweeps: the figure pipeline behind one call.

Thin, registry-aware wrappers over
:func:`repro.experiments.sweep.run_sweeps`: callers pick routers by
registered name (any scheme added via
:func:`~repro.api.registry.register_router` included) and the wrapper
supplies the :class:`~repro.api.registry.RegistryRouterFactory` whose
cache fingerprint keys the result cache on exactly that selection.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.api.registry import RegistryRouterFactory, RouterRegistry
from repro.experiments.cache import ResultCache
from repro.experiments.config import QUICK_CONFIG, ExperimentConfig
from repro.experiments.engine import Progress
from repro.experiments.sweep import SweepResult, run_sweeps

__all__ = ["sweep", "sweeps"]


def sweeps(
    config: ExperimentConfig | None = None,
    models: Sequence[str] = ("IA", "FA"),
    routers: Sequence[str] | None = None,
    router_options: Mapping[str, Mapping] | None = None,
    progress: Progress | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    registry: RouterRegistry | None = None,
) -> dict[str, SweepResult]:
    """Density sweeps for several deployment models, by router name.

    ``routers=None`` evaluates every registered scheme; the default
    config is the quick (laptop-scale) one.
    """
    factory = RegistryRouterFactory(
        names=routers, options=router_options, registry=registry
    )
    return run_sweeps(
        config if config is not None else QUICK_CONFIG,
        models,
        router_factory=factory,
        progress=progress,
        jobs=jobs,
        cache=cache,
    )


def sweep(
    config: ExperimentConfig | None = None,
    model: str = "IA",
    **kwargs,
) -> SweepResult:
    """One deployment model's sweep (see :func:`sweeps`)."""
    return sweeps(config, (model,), **kwargs)[model]
