"""Experiment runner: route workloads over generated networks.

One *point* of a paper figure = one (deployment model, node count)
pair, evaluated over ``networks_per_point`` random networks with
``routes_per_network`` random source-destination pairs each, for every
routing scheme.  This module produces those points; the sweep and
figure layers assemble them into the paper's curves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.stats import Summary, summarize
from repro.experiments.config import ExperimentConfig
from repro.experiments.workload import (
    NetworkInstance,
    build_network,
    sample_pairs,
)
from repro.routing import (
    GreedyRouter,
    LgfRouter,
    Router,
    SlgfRouter,
    Slgf2Router,
)

__all__ = [
    "ROUTER_ORDER",
    "PointResult",
    "RouterPointMetrics",
    "default_routers",
    "evaluate_point",
]

# Presentation order, matching the paper's figure legends.
ROUTER_ORDER = ("GF", "LGF", "SLGF", "SLGF2")

RouterFactory = Callable[[NetworkInstance], dict[str, Router]]


def default_routers(instance: NetworkInstance) -> dict[str, Router]:
    """The four schemes exactly as Section 5 evaluates them.

    GF gets BOUNDHOLE boundary information ("boundary information [5]
    is constructed for GF routings"); LGF/SLGF run quadrant-scoped
    (the prose definition of blocking — DESIGN.md note 1); SLGF2 runs
    with its defaults.
    """
    return {
        "GF": GreedyRouter(
            instance.graph,
            recovery="boundhole",
            hole_boundaries=instance.boundaries,
        ),
        "LGF": LgfRouter(instance.graph, candidate_scope="quadrant"),
        "SLGF": SlgfRouter(instance.model, candidate_scope="quadrant"),
        "SLGF2": Slgf2Router(instance.model),
    }


@dataclass(frozen=True)
class RouterPointMetrics:
    """Aggregated performance of one router at one figure point.

    Hop and length statistics are over *delivered* routes (the paper
    reports path metrics, not delivery failures — failures are
    surfaced separately via ``delivery_rate``).
    """

    router: str
    samples: int
    delivered: int
    hops: Summary
    length: Summary
    max_hops: int
    perimeter_entries_per_route: float
    backup_entries_per_route: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.samples if self.samples else 0.0


@dataclass(frozen=True)
class PointResult:
    """All routers' metrics at one (deployment, node count) point."""

    deployment_model: str
    node_count: int
    networks: int
    per_router: dict[str, RouterPointMetrics] = field(repr=False)

    def metric(self, router: str, name: str) -> float:
        """Scalar projection used by the figure tables."""
        metrics = self.per_router[router]
        if name == "mean_hops":
            return metrics.hops.mean
        if name == "max_hops":
            return float(metrics.max_hops)
        if name == "mean_length":
            return metrics.length.mean
        if name == "delivery_rate":
            return metrics.delivery_rate
        if name == "perimeter_entries":
            return metrics.perimeter_entries_per_route
        raise KeyError(f"unknown metric {name!r}")


def _network_seed(
    config: ExperimentConfig, deployment_model: str, node_count: int, index: int
) -> int:
    """Stable per-network seed: reruns regenerate identical networks."""
    key = f"{config.seed}/{deployment_model}/{node_count}/{index}"
    return random.Random(key).getrandbits(63)


def evaluate_point(
    config: ExperimentConfig,
    deployment_model: str,
    node_count: int,
    router_factory: RouterFactory = default_routers,
) -> PointResult:
    """Evaluate every router at one (deployment, node count) point."""
    per_router_hops: dict[str, list[float]] = {}
    per_router_length: dict[str, list[float]] = {}
    per_router_delivered: dict[str, int] = {}
    per_router_samples: dict[str, int] = {}
    per_router_max: dict[str, int] = {}
    per_router_perimeter: dict[str, int] = {}
    per_router_backup: dict[str, int] = {}

    for index in range(config.networks_per_point):
        seed = _network_seed(config, deployment_model, node_count, index)
        instance = build_network(config, deployment_model, node_count, seed)
        pair_rng = random.Random(seed + 1)
        pairs = sample_pairs(
            instance.graph, config.routes_per_network, pair_rng
        )
        routers = router_factory(instance)
        for name, router in routers.items():
            hops = per_router_hops.setdefault(name, [])
            lengths = per_router_length.setdefault(name, [])
            for s, d in pairs:
                result = router.route(s, d)
                per_router_samples[name] = per_router_samples.get(name, 0) + 1
                per_router_perimeter[name] = (
                    per_router_perimeter.get(name, 0)
                    + result.perimeter_entries
                )
                per_router_backup[name] = (
                    per_router_backup.get(name, 0) + result.backup_entries
                )
                if result.delivered:
                    per_router_delivered[name] = (
                        per_router_delivered.get(name, 0) + 1
                    )
                    hops.append(float(result.hops))
                    lengths.append(result.length)
                    per_router_max[name] = max(
                        per_router_max.get(name, 0), result.hops
                    )

    per_router: dict[str, RouterPointMetrics] = {}
    for name in per_router_samples:
        samples = per_router_samples[name]
        per_router[name] = RouterPointMetrics(
            router=name,
            samples=samples,
            delivered=per_router_delivered.get(name, 0),
            hops=summarize(per_router_hops[name] or [0.0]),
            length=summarize(per_router_length[name] or [0.0]),
            max_hops=per_router_max.get(name, 0),
            perimeter_entries_per_route=(
                per_router_perimeter.get(name, 0) / samples
            ),
            backup_entries_per_route=(
                per_router_backup.get(name, 0) / samples
            ),
        )
    return PointResult(
        deployment_model=deployment_model,
        node_count=node_count,
        networks=config.networks_per_point,
        per_router=per_router,
    )
