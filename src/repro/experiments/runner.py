"""Experiment runner: route workloads over generated networks.

One *point* of a paper figure = one (deployment model, node count)
pair, evaluated over ``networks_per_point`` random networks with
``routes_per_network`` random source-destination pairs each, for every
routing scheme.  This module produces those points; the engine, sweep
and figure layers assemble them into the paper's curves.

Every random stream is derived from ``(config.seed, deployment model,
node count, network index)`` alone — no state is shared between
networks or points — so a point is a pure function of its inputs.
That is what lets the engine dispatch points to worker processes and
cache them on disk while staying bit-identical to a serial run, and
what lets :class:`RouteTally` split a point into per-network shards
that merge back deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.stats import Summary, summarize
from repro.experiments.config import ExperimentConfig
from repro.experiments.workload import (
    NetworkInstance,
    build_network,
    sample_pairs,
)
from repro.routing import RouteResult, Router

__all__ = [
    "PointResult",
    "RouteTally",
    "RouterPointMetrics",
    "evaluate_network",
    "evaluate_point",
    "registry_routers",
]

RouterFactory = Callable[[NetworkInstance], dict[str, Router]]


def registry_routers() -> RouterFactory:
    """The default router factory: every currently registered scheme.

    A freshly constructed
    :class:`~repro.api.registry.RegistryRouterFactory` snapshot —
    resolving the registry at *call* time, so third-party schemes
    registered before an evaluation are included, the snapshot's cache
    fingerprint reflects exactly that selection, and worker processes
    receive the resolved factory functions rather than names to
    re-resolve against a possibly diverged registry.

    The registry import stays local: the api package's own
    ``__init__`` imports this module (Session needs the seed
    derivation), so a module-level import here would be circular on
    first touch of either package.
    """
    from repro.api.registry import RegistryRouterFactory

    return RegistryRouterFactory()


@dataclass(frozen=True)
class RouterPointMetrics:
    """Aggregated performance of one router at one figure point.

    Hop and length statistics are over *delivered* routes (the paper
    reports path metrics, not delivery failures — failures are
    surfaced separately via ``delivery_rate``).
    """

    router: str
    samples: int
    delivered: int
    hops: Summary
    length: Summary
    max_hops: int
    perimeter_entries_per_route: float
    backup_entries_per_route: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.samples if self.samples else 0.0


@dataclass(frozen=True)
class PointResult:
    """All routers' metrics at one (deployment, node count) point."""

    deployment_model: str
    node_count: int
    networks: int
    per_router: dict[str, RouterPointMetrics] = field(repr=False)

    def metric(self, router: str, name: str) -> float:
        """Scalar projection used by the figure tables."""
        metrics = self.per_router[router]
        if name == "mean_hops":
            return metrics.hops.mean
        if name == "max_hops":
            return float(metrics.max_hops)
        if name == "mean_length":
            return metrics.length.mean
        if name == "delivery_rate":
            return metrics.delivery_rate
        if name == "perimeter_entries":
            return metrics.perimeter_entries_per_route
        raise KeyError(f"unknown metric {name!r}")


@dataclass
class RouteTally:
    """Raw, mergeable per-router counters for a batch of routes.

    The mutable intermediate between routing and summary statistics:
    one tally per router per network, merged across a point's networks
    (and mergeable across arbitrary shards — the unit a future
    per-network or multi-host dispatcher would ship around).
    """

    samples: int = 0
    delivered: int = 0
    hops: list[float] = field(default_factory=list)
    lengths: list[float] = field(default_factory=list)
    max_hops: int = 0
    perimeter_entries: int = 0
    backup_entries: int = 0

    def add(self, result: RouteResult) -> None:
        """Fold one routed packet into the tally."""
        self.samples += 1
        self.perimeter_entries += result.perimeter_entries
        self.backup_entries += result.backup_entries
        if result.delivered:
            self.delivered += 1
            self.hops.append(float(result.hops))
            self.lengths.append(result.length)
            self.max_hops = max(self.max_hops, result.hops)

    def merge(self, other: "RouteTally") -> None:
        """Fold another tally in; order of merges is order of routes."""
        self.samples += other.samples
        self.delivered += other.delivered
        self.hops.extend(other.hops)
        self.lengths.extend(other.lengths)
        self.max_hops = max(self.max_hops, other.max_hops)
        self.perimeter_entries += other.perimeter_entries
        self.backup_entries += other.backup_entries

    def finish(self, router: str) -> RouterPointMetrics:
        """Freeze the tally into the summary form the figures consume.

        An empty tally (no routes — e.g. a network too sparse to
        sample pairs from) yields all-zero metrics rather than a
        division error.
        """
        samples = self.samples or 1  # per-route averages of nothing are 0
        return RouterPointMetrics(
            router=router,
            samples=self.samples,
            delivered=self.delivered,
            hops=summarize(self.hops or [0.0]),
            length=summarize(self.lengths or [0.0]),
            max_hops=self.max_hops,
            perimeter_entries_per_route=self.perimeter_entries / samples,
            backup_entries_per_route=self.backup_entries / samples,
        )


def _network_seed(
    config: ExperimentConfig, deployment_model: str, node_count: int, index: int
) -> int:
    """Stable per-network seed: reruns regenerate identical networks."""
    key = f"{config.seed}/{deployment_model}/{node_count}/{index}"
    return random.Random(key).getrandbits(63)


def evaluate_network(
    config: ExperimentConfig,
    deployment_model: str,
    node_count: int,
    index: int,
    router_factory: RouterFactory | None = None,
    backend: str = "auto",
) -> dict[str, RouteTally]:
    """Evaluate every router over one generated network.

    Network ``index`` of a point is self-contained: its seed comes from
    :func:`_network_seed`, so any shard of a point can be recomputed in
    isolation and merged back in index order.  ``router_factory=None``
    evaluates every registered scheme (:func:`registry_routers`).
    ``backend`` selects the batch implementation per
    :meth:`~repro.routing.base.Router.route_batch`; every backend is
    bit-identical, so cached points stay valid whichever ran them.
    """
    if router_factory is None:
        router_factory = registry_routers()
    seed = _network_seed(config, deployment_model, node_count, index)
    instance = build_network(config, deployment_model, node_count, seed)
    pair_rng = random.Random(seed + 1)
    pairs = sample_pairs(instance.graph, config.routes_per_network, pair_rng)
    routers = router_factory(instance)
    tallies = {name: RouteTally() for name in routers}
    for name, router in routers.items():
        tally = tallies[name]
        # Batched execution over the columnar core — bit-identical to
        # the historical per-pair route() loop (pinned by the batch
        # equivalence suite), which is what keeps cached points valid.
        for result in router.route_batch(pairs, backend=backend):
            tally.add(result)
    return tallies


def evaluate_point(
    config: ExperimentConfig,
    deployment_model: str,
    node_count: int,
    router_factory: RouterFactory | None = None,
    backend: str = "auto",
) -> PointResult:
    """Evaluate every router at one (deployment, node count) point.

    ``router_factory=None`` evaluates every registered scheme, with
    one registry snapshot shared across the point's networks.
    """
    if router_factory is None:
        router_factory = registry_routers()
    merged: dict[str, RouteTally] = {}
    for index in range(config.networks_per_point):
        per_router = evaluate_network(
            config,
            deployment_model,
            node_count,
            index,
            router_factory,
            backend=backend,
        )
        for name, tally in per_router.items():
            merged.setdefault(name, RouteTally()).merge(tally)
    return PointResult(
        deployment_model=deployment_model,
        node_count=node_count,
        networks=config.networks_per_point,
        per_router={
            name: tally.finish(name)
            for name, tally in merged.items()
            if tally.samples
        },
    )
