"""Experiment runner: route workloads over generated networks.

One *point* of a paper figure = one (deployment model, node count)
pair, evaluated over ``networks_per_point`` random networks with
``routes_per_network`` random source-destination pairs each, for every
routing scheme.  This module produces those points; the engine, sweep
and figure layers assemble them into the paper's curves.

Every random stream is derived from ``(config.seed, deployment model,
node count, network index)`` alone — no state is shared between
networks or points — so a point is a pure function of its inputs.
That is what lets the engine dispatch points to worker processes and
cache them on disk while staying bit-identical to a serial run, and
what lets :class:`RouteTally` split a point into per-network shards
that merge back deterministically.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.stats import Summary, summarize
from repro.experiments.config import ExperimentConfig
from repro.experiments.workload import (
    NetworkInstance,
    build_network,
    sample_pairs,
)
from repro.routing import RouteResult, Router

# ROUTER_ORDER is deliberately absent from __all__: it resolves through
# the deprecation __getattr__ below, and star-imports must not trip the
# warning for importers that never use the name.
__all__ = [
    "PointResult",
    "RouteTally",
    "RouterPointMetrics",
    "default_routers",
    "evaluate_network",
    "evaluate_point",
]

RouterFactory = Callable[[NetworkInstance], dict[str, Router]]


class _DefaultRouterFactory:
    """The ``default_routers`` shim: every registered scheme.

    A callable instance rather than a function so its cache identity
    can be *live*: the output depends on the registry's current
    contents (a third-party ``@register_router`` adds a scheme), so
    the fingerprint must too — a name-only fingerprint would let a
    warm cache serve four-scheme points after a fifth scheme was
    registered.
    """

    # Registry imports stay local: the api package's own __init__
    # imports this module (Session needs the seed derivation), so a
    # module-level import here would be circular on first touch of
    # either package.

    def __call__(self, instance: NetworkInstance) -> dict[str, Router]:
        from repro.api.registry import default_registry

        return default_registry.build(instance)

    @property
    def cache_fingerprint(self) -> str | None:
        """Digest of the registry's current schemes (see the cache)."""
        from repro.api.registry import default_registry

        return default_registry.fingerprint()

    def __reduce__(self):
        # Ship a *snapshot* of the current selection to worker
        # processes, not this stateless shim: a spawn-started worker
        # re-imports modules, so its registry may miss (or hold
        # different same-name versions of) registrations made in the
        # parent.  The snapshot is a fully constructed
        # RegistryRouterFactory whose resolved specs — the factory
        # functions themselves — pickle by reference, so workers build
        # exactly the parent's schemes or fail loudly on import.
        from repro.api.registry import RegistryRouterFactory

        return (_restore_factory, (RegistryRouterFactory(),))

    def __repr__(self) -> str:
        return "default_routers"


def _restore_factory(factory):
    """Unpickle target for the shim's registry snapshot."""
    return factory


#: Deprecated shim: construction now lives in the router registry
#: (:mod:`repro.api.registry`), where GF gets BOUNDHOLE boundary
#: information, LGF/SLGF run quadrant-scoped, and SLGF2 runs with its
#: defaults — exactly the historical behaviour.  Prefer
#: :class:`repro.api.RegistryRouterFactory` (which also pins a name
#: selection) in new code; this name remains for one release so
#: existing callers keep working.
default_routers = _DefaultRouterFactory()


def __getattr__(name: str):
    # PEP 562 shim: the hard-coded router tuple is gone; the legend
    # order now comes from the registry, where new schemes join it.
    if name == "ROUTER_ORDER":
        from repro.api.registry import default_registry

        warnings.warn(
            "repro.experiments.runner.ROUTER_ORDER is deprecated; use "
            "repro.api.router_order() (the registry's legend order)",
            DeprecationWarning,
            stacklevel=2,
        )
        return default_registry.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class RouterPointMetrics:
    """Aggregated performance of one router at one figure point.

    Hop and length statistics are over *delivered* routes (the paper
    reports path metrics, not delivery failures — failures are
    surfaced separately via ``delivery_rate``).
    """

    router: str
    samples: int
    delivered: int
    hops: Summary
    length: Summary
    max_hops: int
    perimeter_entries_per_route: float
    backup_entries_per_route: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.samples if self.samples else 0.0


@dataclass(frozen=True)
class PointResult:
    """All routers' metrics at one (deployment, node count) point."""

    deployment_model: str
    node_count: int
    networks: int
    per_router: dict[str, RouterPointMetrics] = field(repr=False)

    def metric(self, router: str, name: str) -> float:
        """Scalar projection used by the figure tables."""
        metrics = self.per_router[router]
        if name == "mean_hops":
            return metrics.hops.mean
        if name == "max_hops":
            return float(metrics.max_hops)
        if name == "mean_length":
            return metrics.length.mean
        if name == "delivery_rate":
            return metrics.delivery_rate
        if name == "perimeter_entries":
            return metrics.perimeter_entries_per_route
        raise KeyError(f"unknown metric {name!r}")


@dataclass
class RouteTally:
    """Raw, mergeable per-router counters for a batch of routes.

    The mutable intermediate between routing and summary statistics:
    one tally per router per network, merged across a point's networks
    (and mergeable across arbitrary shards — the unit a future
    per-network or multi-host dispatcher would ship around).
    """

    samples: int = 0
    delivered: int = 0
    hops: list[float] = field(default_factory=list)
    lengths: list[float] = field(default_factory=list)
    max_hops: int = 0
    perimeter_entries: int = 0
    backup_entries: int = 0

    def add(self, result: RouteResult) -> None:
        """Fold one routed packet into the tally."""
        self.samples += 1
        self.perimeter_entries += result.perimeter_entries
        self.backup_entries += result.backup_entries
        if result.delivered:
            self.delivered += 1
            self.hops.append(float(result.hops))
            self.lengths.append(result.length)
            self.max_hops = max(self.max_hops, result.hops)

    def merge(self, other: "RouteTally") -> None:
        """Fold another tally in; order of merges is order of routes."""
        self.samples += other.samples
        self.delivered += other.delivered
        self.hops.extend(other.hops)
        self.lengths.extend(other.lengths)
        self.max_hops = max(self.max_hops, other.max_hops)
        self.perimeter_entries += other.perimeter_entries
        self.backup_entries += other.backup_entries

    def finish(self, router: str) -> RouterPointMetrics:
        """Freeze the tally into the summary form the figures consume.

        An empty tally (no routes — e.g. a network too sparse to
        sample pairs from) yields all-zero metrics rather than a
        division error.
        """
        samples = self.samples or 1  # per-route averages of nothing are 0
        return RouterPointMetrics(
            router=router,
            samples=self.samples,
            delivered=self.delivered,
            hops=summarize(self.hops or [0.0]),
            length=summarize(self.lengths or [0.0]),
            max_hops=self.max_hops,
            perimeter_entries_per_route=self.perimeter_entries / samples,
            backup_entries_per_route=self.backup_entries / samples,
        )


def _network_seed(
    config: ExperimentConfig, deployment_model: str, node_count: int, index: int
) -> int:
    """Stable per-network seed: reruns regenerate identical networks."""
    key = f"{config.seed}/{deployment_model}/{node_count}/{index}"
    return random.Random(key).getrandbits(63)


def evaluate_network(
    config: ExperimentConfig,
    deployment_model: str,
    node_count: int,
    index: int,
    router_factory: RouterFactory = default_routers,
) -> dict[str, RouteTally]:
    """Evaluate every router over one generated network.

    Network ``index`` of a point is self-contained: its seed comes from
    :func:`_network_seed`, so any shard of a point can be recomputed in
    isolation and merged back in index order.
    """
    seed = _network_seed(config, deployment_model, node_count, index)
    instance = build_network(config, deployment_model, node_count, seed)
    pair_rng = random.Random(seed + 1)
    pairs = sample_pairs(instance.graph, config.routes_per_network, pair_rng)
    routers = router_factory(instance)
    tallies = {name: RouteTally() for name in routers}
    for name, router in routers.items():
        tally = tallies[name]
        for s, d in pairs:
            tally.add(router.route(s, d))
    return tallies


def evaluate_point(
    config: ExperimentConfig,
    deployment_model: str,
    node_count: int,
    router_factory: RouterFactory = default_routers,
) -> PointResult:
    """Evaluate every router at one (deployment, node count) point."""
    merged: dict[str, RouteTally] = {}
    for index in range(config.networks_per_point):
        per_router = evaluate_network(
            config, deployment_model, node_count, index, router_factory
        )
        for name, tally in per_router.items():
            merged.setdefault(name, RouteTally()).merge(tally)
    return PointResult(
        deployment_model=deployment_model,
        node_count=node_count,
        networks=config.networks_per_point,
        per_router={
            name: tally.finish(name)
            for name, tally in merged.items()
            if tally.samples
        },
    )
