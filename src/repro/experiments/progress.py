"""One progress protocol for every experiment surface.

Historically the engine reported progress as bare strings (a line
callback) while the CLI layered its own ad-hoc prints on top; the two
could not share counters, and nothing downstream could compute an ETA
without re-parsing text.  :class:`ProgressEvent` unifies them: it *is*
a ``str`` (so every existing line sink — ``print``, ``lines.append``,
``lambda s: ...`` — keeps working untouched) that additionally carries
the structured fields a richer consumer wants: what happened
(``kind``), to which work unit (``description``), how far along the
run is (``completed``/``total``), and the wall-clock picture
(``elapsed_s``/``eta_s``).

The engine emits one event per finished work unit (cached or
computed); :meth:`repro.api.study.Study.stream` and the CLI both
consume exactly these events.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["Progress", "ProgressEvent"]


class ProgressEvent(str):
    """A rendered progress line that is also structured data.

    Attributes
    ----------
    kind:
        ``"start"`` (a unit is about to compute inline — emitted by
        serial runs so long cells stay visibly alive), ``"cached"``
        (served from the result cache), ``"computed"`` (evaluated
        this run) or ``"note"`` (an engine-level remark, e.g. the
        serial-fallback warning — not tied to one unit).  Exactly one
        *completion* event (``cached``/``computed``) fires per unit.
    description:
        The work unit's human-readable identity, without the
        status/ETA decoration.
    completed / total:
        Units finished so far (cached + computed) out of the run's
        plan.  ``note`` events carry the counters of the moment they
        were emitted.
    cached / computed:
        The split behind ``completed``: units served from the result
        cache vs. units evaluated this run.  ``completed == cached +
        computed`` on every completion event, which is what lets a
        consumer that aggregates *several* streams (the CLI's summary
        line, the distributed driver's per-host merge) report an
        honest hit rate instead of double-counting cells that were
        cache hits before dispatch.
    elapsed_s / eta_s:
        Seconds since the run started, and the remaining-time estimate
        extrapolated from the *computed* units' pace (``None`` while
        there is no basis for one — e.g. everything so far was
        cached, or the run just started).
    """

    kind: str
    description: str
    completed: int
    total: int
    cached: int
    computed: int
    elapsed_s: float
    eta_s: float | None

    def __new__(
        cls,
        text: str,
        *,
        kind: str,
        description: str,
        completed: int,
        total: int,
        cached: int = 0,
        computed: int = 0,
        elapsed_s: float = 0.0,
        eta_s: float | None = None,
    ) -> "ProgressEvent":
        self = super().__new__(cls, text)
        self.kind = kind
        self.description = description
        self.completed = completed
        self.total = total
        self.cached = cached
        self.computed = computed
        self.elapsed_s = elapsed_s
        self.eta_s = eta_s
        return self

    @classmethod
    def unit(
        cls,
        kind: str,
        description: str,
        completed: int,
        total: int,
        elapsed_s: float,
        eta_s: float | None = None,
        cached: int = 0,
        computed: int = 0,
    ) -> "ProgressEvent":
        """Event for one finished unit, rendered in the classic style.

        ``"[IA] n=400 (...) [done 3/18, eta 42s]"`` — the bracketed
        status suffix is what a plain line sink prints; structured
        consumers read the fields instead.
        """
        status = f"[{'cached' if kind == 'cached' else 'done'} "
        status += f"{completed}/{total}"
        if eta_s is not None:
            status += f", eta {_fmt_seconds(eta_s)}"
        status += "]"
        return cls(
            f"{description} {status}",
            kind=kind,
            description=description,
            completed=completed,
            total=total,
            cached=cached,
            computed=computed,
            elapsed_s=elapsed_s,
            eta_s=eta_s,
        )

    @classmethod
    def note(
        cls, text: str, completed: int = 0, total: int = 0,
        elapsed_s: float = 0.0, cached: int = 0, computed: int = 0,
    ) -> "ProgressEvent":
        """A free-form engine remark (serial fallback, cache stats)."""
        return cls(
            text,
            kind="note",
            description=text,
            completed=completed,
            total=total,
            cached=cached,
            computed=computed,
            elapsed_s=elapsed_s,
        )


def _fmt_seconds(seconds: float) -> str:
    """Compact duration: ``42s``, ``3m10s``, ``2h05m``."""
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, seconds = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{seconds:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


#: A progress sink.  Accepts every :class:`ProgressEvent`; because the
#: event subclasses ``str``, any legacy line sink satisfies this type.
Progress = Callable[[ProgressEvent], None]
