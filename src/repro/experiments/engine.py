"""Work-unit execution engine: parallel dispatch with result caching.

The evaluation of Section 5 is embarrassingly parallel: a figure point
is a pure function of ``(config, deployment model, node count, router
factory)`` (see :mod:`~repro.experiments.runner`).  This module turns
that purity into throughput:

* :class:`WorkUnit` names one point; :func:`plan_units` expands a
  config × deployment-model product into the unit list;
* :class:`ExperimentEngine` executes unit lists — looking each unit up
  in a :class:`~repro.experiments.cache.ResultCache` first, then
  dispatching the missing ones over a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``.

Because per-unit RNG streams are derived from the unit identity alone,
parallel results are bit-identical to serial ones regardless of worker
count or completion order; a determinism test in
``tests/experiments/test_parallel.py`` pins this.

Worker count resolution: explicit ``jobs`` argument, else the
``REPRO_JOBS`` environment variable (via
:func:`~repro.experiments.config.default_jobs`), else 1 (serial).
Unpicklable inputs (e.g. a closure router factory) silently degrade to
serial execution rather than failing — parallelism is an optimisation,
never a requirement.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.experiments.cache import (
    ResultCache,
    default_cache,
    factory_fingerprint,
    point_key,
)
from repro.experiments.config import ExperimentConfig, default_jobs
from repro.experiments.runner import (
    PointResult,
    RouterFactory,
    evaluate_point,
    registry_routers,
)

__all__ = ["ExperimentEngine", "WorkUnit", "plan_units", "resolve_jobs"]

Progress = Callable[[str], None]


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One independently computable figure point."""

    deployment_model: str
    node_count: int

    def describe(self, config: ExperimentConfig) -> str:
        return (
            f"[{self.deployment_model}] n={self.node_count} "
            f"({config.networks_per_point} networks x "
            f"{config.routes_per_network} routes)"
        )


def plan_units(
    config: ExperimentConfig, deployment_models: Sequence[str]
) -> tuple[WorkUnit, ...]:
    """Expand a sweep into its unit list, in presentation order."""
    return tuple(
        WorkUnit(deployment_model=model, node_count=n)
        for model in deployment_models
        for n in config.node_counts
    )


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalise a worker count: arg > ``REPRO_JOBS`` > 1 (serial)."""
    if jobs is None:
        return default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _picklable(*objects) -> bool:
    """Whether the pool can ship these objects to worker processes."""
    try:
        pickle.dumps(objects)
    except Exception:
        return False
    return True


class ExperimentEngine:
    """Executes work units: cache lookups, then (parallel) compute.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` defers to ``REPRO_JOBS``, ``0``
        means one per CPU, ``1`` runs inline.
    cache:
        A :class:`ResultCache`; ``None`` selects the default cache
        (honouring ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``).  Pass
        ``ResultCache.disabled()`` to force recomputation.
    progress:
        Optional line sink (e.g. ``print`` to stderr) for per-unit
        status.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = default_cache() if cache is None else cache
        self.progress = progress
        self.computed_units = 0
        self.cached_units = 0

    def _report(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def run(
        self,
        config: ExperimentConfig,
        units: Iterable[WorkUnit],
        router_factory: RouterFactory | None = None,
    ) -> dict[WorkUnit, PointResult]:
        """Produce every unit's point, from cache or by computing.

        ``router_factory=None`` resolves to a snapshot of every
        registered scheme *here*, before fingerprinting and dispatch —
        workers must receive the parent's resolved selection, never
        re-resolve names against their own (possibly diverged)
        registries.
        """
        if router_factory is None:
            router_factory = registry_routers()
        units = list(units)
        # Caching needs an enabled cache AND a factory with a stable
        # identity — anonymous factories would collide under a shared
        # key, so their units are computed every time.
        caching = (
            self.cache is not None
            and self.cache.enabled
            and factory_fingerprint(router_factory) is not None
        )
        results: dict[WorkUnit, PointResult] = {}
        missing: list[tuple[WorkUnit, str | None]] = []
        for unit in units:
            key = None
            if caching:
                key = point_key(
                    config, unit.deployment_model, unit.node_count,
                    router_factory,
                )
                point = self.cache.load(key)
                if point is not None:
                    results[unit] = point
                    self.cached_units += 1
                    self._report(f"{unit.describe(config)} [cached]")
                    continue
            missing.append((unit, key))

        if missing:
            computed = self._compute(
                config, dict(missing), router_factory
            )
            for unit, _ in missing:
                results[unit] = computed[unit]
                self.computed_units += 1
        return results

    def _store(self, key: str | None, point: PointResult) -> None:
        if self.cache is not None and key is not None:
            self.cache.store(key, point)

    def _compute(
        self,
        config: ExperimentConfig,
        units: dict[WorkUnit, str | None],
        router_factory: RouterFactory,
    ) -> dict[WorkUnit, PointResult]:
        """Compute units, persisting each the moment it completes.

        Storing per completion (not after the batch) is what makes an
        interrupted run resumable: whatever finished before the
        Ctrl-C is served from cache next time.
        """
        jobs = min(self.jobs, len(units))
        if jobs > 1 and not _picklable(config, router_factory):
            self._report("[engine] inputs not picklable; running serially")
            jobs = 1
        if jobs <= 1:
            results = {}
            for unit, key in units.items():
                self._report(unit.describe(config))
                point = evaluate_point(
                    config, unit.deployment_model, unit.node_count,
                    router_factory,
                )
                self._store(key, point)
                results[unit] = point
            return results

        results = {}
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    evaluate_point,
                    config,
                    unit.deployment_model,
                    unit.node_count,
                    router_factory,
                ): unit
                for unit in units
            }
            for future in as_completed(futures):
                unit = futures[future]
                point = future.result()
                self._store(units[unit], point)
                results[unit] = point
                self._report(f"{unit.describe(config)} [done]")
        return results
