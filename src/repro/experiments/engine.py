"""Work-unit execution engine: streaming parallel dispatch with caching.

The evaluation of Section 5 is embarrassingly parallel: a figure point
is a pure function of ``(config, deployment model, node count, router
factory)`` (see :mod:`~repro.experiments.runner`), and a Study cell is
a pure function of its :class:`~repro.api.scenario.Scenario`.  This
module turns that purity into throughput behind one generic core:

* :class:`EngineTask` names one independently computable unit of any
  kind — an opaque ``key``, a picklable ``fn(*args)``, an optional
  cache key and a progress description;
* :meth:`ExperimentEngine.stream` executes a task list *as a stream*:
  cached tasks are yielded immediately, the rest are dispatched over a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``
  and yielded in completion order, each persisted to the cache the
  moment it finishes (so an interrupted run is resumable);
* :class:`WorkUnit` / :func:`plan_units` /
  :meth:`ExperimentEngine.run` keep the classic figure-point surface:
  a config × deployment-model product evaluated through
  :func:`~repro.experiments.runner.evaluate_point`.

:meth:`repro.api.study.Study.stream` compiles Scenario grids onto the
same :class:`EngineTask` stream, so both pipelines share dispatch,
caching, serial fallback and progress reporting.

Because per-unit RNG streams are derived from the unit identity alone,
parallel results are bit-identical to serial ones regardless of worker
count or completion order; a determinism test in
``tests/experiments/test_parallel.py`` pins this.

Progress is reported as one :class:`~repro.experiments.progress.ProgressEvent`
per finished task (cached or computed) — a ``str`` subclass, so plain
line sinks keep working — carrying completed/total counters and an
ETA extrapolated from the computed tasks' pace.

Worker count resolution: explicit ``jobs`` argument, else the
``REPRO_JOBS`` environment variable (via
:func:`~repro.experiments.config.default_jobs`), else 1 (serial).
Unpicklable inputs (e.g. a closure router factory) silently degrade to
serial execution rather than failing — parallelism is an optimisation,
never a requirement.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.experiments.cache import (
    ResultCache,
    default_cache,
    factory_fingerprint,
    point_key,
)
from repro.experiments.config import ExperimentConfig, default_jobs
from repro.experiments.progress import Progress, ProgressEvent
from repro.experiments.runner import (
    PointResult,
    RouterFactory,
    evaluate_point,
    registry_routers,
)

__all__ = [
    "EngineTask",
    "ExperimentEngine",
    "Progress",
    "ProgressEvent",
    "WorkUnit",
    "plan_units",
    "resolve_jobs",
]


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One independently computable figure point."""

    deployment_model: str
    node_count: int

    def describe(self, config: ExperimentConfig) -> str:
        return (
            f"[{self.deployment_model}] n={self.node_count} "
            f"({config.networks_per_point} networks x "
            f"{config.routes_per_network} routes)"
        )


@dataclass(frozen=True)
class EngineTask:
    """One unit of the engine's generic stream.

    ``fn(*args)`` must be a pure function of ``args`` returning a
    :class:`~repro.experiments.runner.PointResult`, and picklable
    (module-level) for parallel dispatch — unpicklable tasks degrade
    the whole batch to serial.  ``cache_key=None`` marks the task
    uncacheable: it is computed every run and never stored.  ``key``
    is an opaque caller identity returned with the result.
    """

    key: object = field(compare=False)
    fn: Callable[..., PointResult] = field(compare=False)
    args: tuple = field(compare=False)
    cache_key: str | None
    description: str


def plan_units(
    config: ExperimentConfig, deployment_models: Sequence[str]
) -> tuple[WorkUnit, ...]:
    """Expand a sweep into its unit list, in presentation order."""
    return tuple(
        WorkUnit(deployment_model=model, node_count=n)
        for model in deployment_models
        for n in config.node_counts
    )


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalise a worker count: arg > ``REPRO_JOBS`` > 1 (serial)."""
    if jobs is None:
        return default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _picklable(*objects) -> bool:
    """Whether the pool can ship these objects to worker processes."""
    try:
        pickle.dumps(objects)
    except Exception:
        return False
    return True


class ExperimentEngine:
    """Executes task streams: cache lookups, then (parallel) compute.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` defers to ``REPRO_JOBS``, ``0``
        means one per CPU, ``1`` runs inline.
    cache:
        A :class:`ResultCache`; ``None`` selects the default cache
        (honouring ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``).  Pass
        ``ResultCache.disabled()`` to force recomputation.
    progress:
        Optional :class:`ProgressEvent` sink (any line sink works —
        events are strings).  One event fires per finished task.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = default_cache() if cache is None else cache
        self.progress = progress
        self.computed_units = 0
        self.cached_units = 0

    @property
    def caching(self) -> bool:
        """Whether this engine can serve/persist cacheable tasks."""
        return self.cache is not None and self.cache.enabled

    def _emit(self, event: ProgressEvent) -> None:
        if self.progress is not None:
            self.progress(event)

    # -- the generic stream ---------------------------------------------

    def stream(
        self, tasks: Iterable[EngineTask]
    ) -> Iterator[tuple[EngineTask, PointResult]]:
        """Yield ``(task, result)`` as tasks complete, cache-first.

        Cached tasks are yielded immediately (in task order); missing
        ones are then computed — serially at ``jobs=1``, else over a
        process pool in completion order.  Every computed result is
        persisted *before* it is yielded, so whatever a consumer has
        seen is already on disk: abandoning the stream mid-way (e.g.
        ``close()`` on the generator, or Ctrl-C) leaves a cache from
        which the next run resumes.
        """
        tasks = list(tasks)
        total = len(tasks)
        started = time.monotonic()
        done = 0
        cached = 0
        computed = 0
        missing: list[EngineTask] = []

        def emit(kind: str, description: str) -> None:
            if self.progress is None:  # skip event construction too
                return
            elapsed = time.monotonic() - started
            eta = None
            if kind == "computed" and computed and done < total:
                # Pace of the *computed* tasks only: cached loads are
                # near-free and would wreck the extrapolation.
                eta = (elapsed / computed) * (total - done)
            # Every completion event carries the cached/computed split
            # (completed == cached + computed), so consumers summing
            # several streams never double-count pre-dispatch hits.
            self._emit(
                ProgressEvent.unit(
                    kind, description, done, total, elapsed, eta,
                    cached=cached, computed=computed,
                )
            )

        for task in tasks:
            if self.caching and task.cache_key is not None:
                point = self.cache.load(task.cache_key)
                if point is not None:
                    self.cached_units += 1
                    cached += 1
                    done += 1
                    emit("cached", task.description)
                    yield task, point
                    continue
            missing.append(task)

        if not missing:
            return
        jobs = min(self.jobs, len(missing))
        if jobs > 1 and not _picklable(
            tuple((task.fn, task.args) for task in missing)
        ):
            self._emit(
                ProgressEvent.note(
                    "[engine] inputs not picklable; running serially",
                    done,
                    total,
                    time.monotonic() - started,
                )
            )
            jobs = 1

        if jobs <= 1:
            for task in missing:
                # Announce the unit before the (possibly minutes-long)
                # inline compute, so a serial run is visibly alive —
                # the classic behaviour of the pre-streaming engine.
                if self.progress is not None:
                    self._emit(
                        ProgressEvent(
                            task.description,
                            kind="start",
                            description=task.description,
                            completed=done,
                            total=total,
                            cached=cached,
                            computed=computed,
                            elapsed_s=time.monotonic() - started,
                        )
                    )
                point = task.fn(*task.args)
                self._store(task.cache_key, point)
                self.computed_units += 1
                computed += 1
                done += 1
                emit("computed", task.description)
                yield task, point
            return

        pool = ProcessPoolExecutor(max_workers=jobs)
        try:
            futures = {
                pool.submit(task.fn, *task.args): task for task in missing
            }
            for future in as_completed(futures):
                task = futures[future]
                point = future.result()
                self._store(task.cache_key, point)
                self.computed_units += 1
                computed += 1
                done += 1
                emit("computed", task.description)
                yield task, point
        finally:
            # Reached on normal exhaustion AND on generator close()
            # (stream cancellation): queued tasks are dropped, in-flight
            # ones finish but are not stored — everything already
            # yielded is on disk, so the run resumes cell by cell.
            pool.shutdown(wait=True, cancel_futures=True)

    def _store(self, key: str | None, point: PointResult) -> None:
        if self.cache is not None and key is not None:
            self.cache.store(key, point)

    # -- the classic figure-point surface -------------------------------

    def run(
        self,
        config: ExperimentConfig,
        units: Iterable[WorkUnit],
        router_factory: RouterFactory | None = None,
    ) -> dict[WorkUnit, PointResult]:
        """Produce every unit's point, from cache or by computing.

        ``router_factory=None`` resolves to a snapshot of every
        registered scheme *here*, before fingerprinting and dispatch —
        workers must receive the parent's resolved selection, never
        re-resolve names against their own (possibly diverged)
        registries.
        """
        if router_factory is None:
            router_factory = registry_routers()
        # Caching needs an enabled cache AND a factory with a stable
        # identity — anonymous factories would collide under a shared
        # key, so their units are computed every time.
        keyable = (
            self.caching
            and factory_fingerprint(router_factory) is not None
        )
        tasks = [
            EngineTask(
                key=unit,
                fn=evaluate_point,
                args=(
                    config,
                    unit.deployment_model,
                    unit.node_count,
                    router_factory,
                ),
                cache_key=(
                    point_key(
                        config,
                        unit.deployment_model,
                        unit.node_count,
                        router_factory,
                    )
                    if keyable
                    else None
                ),
                description=unit.describe(config),
            )
            for unit in units
        ]
        return {task.key: point for task, point in self.stream(tasks)}
