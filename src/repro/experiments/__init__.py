"""Evaluation harness: regenerate every figure of Section 5.

Pipeline: :mod:`~repro.experiments.config` fixes the parameters,
:mod:`~repro.experiments.workload` generates networks and s-d pairs,
:mod:`~repro.experiments.runner` routes and aggregates one figure
point, :mod:`~repro.experiments.engine` streams parallel work units
through the :mod:`~repro.experiments.cache` result cache (reporting
:mod:`~repro.experiments.progress` events), and
:mod:`~repro.experiments.figures` / :mod:`~repro.experiments.report`
project and render the paper's Figs. 5-7.

The primary experiment surface is :class:`repro.api.study.Study` —
declarative Scenario grids with streaming results, riding the same
engine; ``Study.from_config(...).run().sweep_result(model)`` produces
the :class:`~repro.experiments.sweep.SweepResult` panels the figure
layer consumes.  (The one-release ``run_sweeps`` compatibility
wrapper was removed on schedule.)
"""

from repro.experiments.cache import (
    BundleError,
    BundleStats,
    CacheCorruptionWarning,
    ResultCache,
    default_cache,
    export_bundle,
    factory_fingerprint,
    import_bundle,
    point_from_dict,
    point_key,
    point_to_dict,
    verify_bundle,
)
from repro.experiments.config import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    ExperimentConfig,
    active_config,
    default_jobs,
)
from repro.experiments.engine import (
    EngineTask,
    ExperimentEngine,
    WorkUnit,
    plan_units,
    resolve_jobs,
)
from repro.experiments.progress import Progress, ProgressEvent
from repro.experiments.figures import (
    FIGURES,
    FigureTable,
    all_figures,
    fig5,
    fig6,
    fig7,
    figure_table,
)
from repro.experiments.report import format_table, to_chart, to_csv, to_json
from repro.experiments.runner import (
    PointResult,
    RouteTally,
    RouterPointMetrics,
    evaluate_network,
    evaluate_point,
    registry_routers,
)
from repro.experiments.sweep import SweepResult
from repro.experiments.workload import (
    NetworkInstance,
    build_network,
    sample_pairs,
)

__all__ = [
    "FIGURES",
    "BundleError",
    "BundleStats",
    "CacheCorruptionWarning",
    "EngineTask",
    "ExperimentConfig",
    "ExperimentEngine",
    "FigureTable",
    "NetworkInstance",
    "PAPER_CONFIG",
    "PointResult",
    "Progress",
    "ProgressEvent",
    "QUICK_CONFIG",
    "ResultCache",
    "RouteTally",
    "RouterPointMetrics",
    "SweepResult",
    "WorkUnit",
    "active_config",
    "all_figures",
    "build_network",
    "default_cache",
    "default_jobs",
    "export_bundle",
    "import_bundle",
    "evaluate_network",
    "evaluate_point",
    "factory_fingerprint",
    "fig5",
    "fig6",
    "fig7",
    "figure_table",
    "format_table",
    "plan_units",
    "point_from_dict",
    "point_key",
    "point_to_dict",
    "registry_routers",
    "resolve_jobs",
    "sample_pairs",
    "to_chart",
    "to_csv",
    "to_json",
    "verify_bundle",
]
