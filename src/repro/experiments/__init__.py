"""Evaluation harness: regenerate every figure of Section 5.

Pipeline: :mod:`~repro.experiments.config` fixes the parameters,
:mod:`~repro.experiments.workload` generates networks and s-d pairs,
:mod:`~repro.experiments.runner` routes and aggregates one figure
point, :mod:`~repro.experiments.sweep` runs the density sweep, and
:mod:`~repro.experiments.figures` / :mod:`~repro.experiments.report`
project and render the paper's Figs. 5-7.
"""

from repro.experiments.config import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    ExperimentConfig,
    active_config,
)
from repro.experiments.figures import (
    FIGURES,
    FigureTable,
    fig5,
    fig6,
    fig7,
    figure_table,
)
from repro.experiments.report import format_table, to_chart, to_csv
from repro.experiments.runner import (
    ROUTER_ORDER,
    PointResult,
    RouterPointMetrics,
    default_routers,
    evaluate_point,
)
from repro.experiments.sweep import SweepResult, run_sweep
from repro.experiments.workload import (
    NetworkInstance,
    build_network,
    sample_pairs,
)

__all__ = [
    "FIGURES",
    "ExperimentConfig",
    "FigureTable",
    "NetworkInstance",
    "PAPER_CONFIG",
    "PointResult",
    "QUICK_CONFIG",
    "ROUTER_ORDER",
    "RouterPointMetrics",
    "SweepResult",
    "active_config",
    "build_network",
    "default_routers",
    "evaluate_point",
    "fig5",
    "fig6",
    "fig7",
    "figure_table",
    "format_table",
    "run_sweep",
    "sample_pairs",
    "to_chart",
    "to_csv",
]
