"""Content-addressed on-disk cache for figure points.

A figure point — one :class:`~repro.experiments.runner.PointResult` —
is fully determined by the experiment configuration, the deployment
model, the node count and the router factory: every RNG stream inside
:func:`~repro.experiments.runner.evaluate_point` is derived from those
values alone.  That makes points safe to memoise on disk: the cache
key is a SHA-256 digest over a canonical JSON encoding of exactly the
inputs that influence the computation, and the value is the point
serialised as JSON.

Layout: ``<root>/<key[:2]>/<key>.json`` (sharded by digest prefix so a
paper-scale run does not pile thousands of files into one directory).
The root defaults to ``.repro_cache/`` under the current directory and
can be moved with ``REPRO_CACHE_DIR``; setting ``REPRO_CACHE=0``
disables caching entirely.

The digest deliberately *excludes* ``node_counts``: a point cached
while sweeping 400..600 is reused verbatim when a later sweep covers
400..800.  It *includes* a digest of the package's own source code,
so editing any routing/model module invalidates every point computed
by the old code — the cache can never serve stale figures.

Router factories are identified by qualified name plus — for
factories defined outside this package — a digest of their defining
module's source.  Lambdas, closures and partials have no reliable
identity (two different lambdas share the name ``<lambda>``), so
:func:`factory_fingerprint` returns ``None`` for them and the engine
computes such units without caching.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import __version__
from repro.analysis.stats import Summary
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import PointResult, RouterPointMetrics

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "default_cache",
    "default_cache_root",
    "factory_fingerprint",
    "point_from_dict",
    "point_key",
    "point_to_dict",
]

# Bump when the serialised form or the semantics of a cached point
# change; old entries then simply stop matching.
CACHE_SCHEMA = 1


def default_cache_root() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    custom = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(custom) if custom else Path(".repro_cache")


def default_cache() -> "ResultCache | None":
    """The cache sweeps use unless told otherwise.

    ``REPRO_CACHE=0`` turns caching off globally; anything else yields
    a cache rooted at :func:`default_cache_root`.
    """
    if os.environ.get("REPRO_CACHE", "") == "0":
        return None
    return ResultCache(default_cache_root())


def _config_fingerprint(config: ExperimentConfig) -> dict:
    """The config fields that influence a single point's value.

    ``node_counts`` is intentionally absent — the point's own node
    count is keyed separately, so sweeps with different x-axes share
    cached points.
    """
    return {
        "area": [
            config.area.x_min,
            config.area.y_min,
            config.area.x_max,
            config.area.y_max,
        ],
        "radius": config.radius,
        "networks_per_point": config.networks_per_point,
        "routes_per_network": config.routes_per_network,
        "seed": config.seed,
        "obstacle_count": config.obstacle_count,
        "min_obstacle_size": config.min_obstacle_size,
        "max_obstacle_size": config.max_obstacle_size,
    }


_code_digest_cache: str | None = None


def _code_digest() -> str:
    """Digest of every source file in the ``repro`` package.

    Computed once per process.  Any edit to routing, model or
    experiment code changes the digest and therefore every cache key
    — cached figures always come from exactly the code that is
    running.  Falls back to the bare package version if the source
    tree is unreadable (e.g. a zipped install).
    """
    global _code_digest_cache
    if _code_digest_cache is None:
        hasher = hashlib.sha256(__version__.encode("utf-8"))
        try:
            package_root = _package_root()
            for source in sorted(package_root.rglob("*.py")):
                relative = source.relative_to(package_root).as_posix()
                hasher.update(relative.encode("utf-8"))
                hasher.update(source.read_bytes())
        except OSError:
            # A partial digest would be nondeterministic across
            # processes; reset to the version-only fallback instead.
            hasher = hashlib.sha256(__version__.encode("utf-8"))
        _code_digest_cache = hasher.hexdigest()
    return _code_digest_cache


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


# Sentinel distinguishing "no cache_fingerprint attribute" from an
# explicit cache_fingerprint of None (= declared uncacheable).
_NO_FINGERPRINT = object()


def factory_fingerprint(router_factory: Callable) -> str | None:
    """Stable identity of a router factory, or ``None`` if it has none.

    Only module-level functions are nameable across runs; lambdas,
    closures (qualnames containing ``<lambda>``/``<locals>``) and
    callables without a qualified name (e.g. ``functools.partial``)
    would collide under a shared name, so they are not cacheable.

    Factories defined *outside* the ``repro`` package additionally get
    a digest of their defining module's source folded in — editing a
    user-supplied factory (or the routers it builds in that module)
    invalidates its cached points just like editing package code does.
    An external factory whose source cannot be read is not cacheable.

    A factory may also speak for itself through a ``cache_fingerprint``
    attribute (``str`` for a stable identity, ``None`` for "do not
    cache me"), which takes precedence over introspection.  That is
    how :class:`repro.api.RegistryRouterFactory` folds the registry's
    identity — selected scheme names, their factories' sources and
    per-scheme options — into the cache key, so third-party routers
    cache correctly.
    """
    declared = getattr(router_factory, "cache_fingerprint", _NO_FINGERPRINT)
    if declared is not _NO_FINGERPRINT:
        return declared
    # One set of identity rules for the whole system: the registry owns
    # the introspection (module:qualname, lambda/closure rejection,
    # external-source digest) and this layer reuses it, so a factory is
    # judged cacheable the same way however it reaches the engine.
    from repro.api.registry import _factory_identity

    return _factory_identity(router_factory)


def point_key(
    config: ExperimentConfig,
    deployment_model: str,
    node_count: int,
    router_factory: Callable,
) -> str:
    """Content hash identifying one figure point's inputs.

    Raises :class:`ValueError` for factories without a stable
    identity — the engine checks :func:`factory_fingerprint` first
    and simply skips caching for those.
    """
    factory = factory_fingerprint(router_factory)
    if factory is None:
        raise ValueError(
            f"router factory {router_factory!r} has no stable identity "
            "(lambda/closure/partial); its results cannot be cached"
        )
    payload = {
        "schema": CACHE_SCHEMA,
        "code": _code_digest(),
        "config": _config_fingerprint(config),
        "model": deployment_model,
        "nodes": node_count,
        "factory": factory,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _summary_to_dict(summary: Summary) -> dict:
    return {
        "count": summary.count,
        "mean": summary.mean,
        "std": summary.std,
        "minimum": summary.minimum,
        "maximum": summary.maximum,
        "ci95_half_width": summary.ci95_half_width,
    }


def point_to_dict(point: PointResult) -> dict:
    """JSON-serialisable form of a point (inverse of ``point_from_dict``)."""
    return {
        "deployment_model": point.deployment_model,
        "node_count": point.node_count,
        "networks": point.networks,
        "per_router": {
            name: {
                "router": metrics.router,
                "samples": metrics.samples,
                "delivered": metrics.delivered,
                "hops": _summary_to_dict(metrics.hops),
                "length": _summary_to_dict(metrics.length),
                "max_hops": metrics.max_hops,
                "perimeter_entries_per_route": (
                    metrics.perimeter_entries_per_route
                ),
                "backup_entries_per_route": metrics.backup_entries_per_route,
            }
            for name, metrics in point.per_router.items()
        },
    }


def point_from_dict(data: dict) -> PointResult:
    """Rebuild a point from its serialised form."""
    per_router = {
        name: RouterPointMetrics(
            router=raw["router"],
            samples=raw["samples"],
            delivered=raw["delivered"],
            hops=Summary(**raw["hops"]),
            length=Summary(**raw["length"]),
            max_hops=raw["max_hops"],
            perimeter_entries_per_route=raw["perimeter_entries_per_route"],
            backup_entries_per_route=raw["backup_entries_per_route"],
        )
        for name, raw in data["per_router"].items()
    }
    return PointResult(
        deployment_model=data["deployment_model"],
        node_count=data["node_count"],
        networks=data["networks"],
        per_router=per_router,
    )


@dataclass
class ResultCache:
    """Sharded JSON store of figure points, keyed by content hash.

    A corrupt or unreadable entry is treated as a miss (and recomputed
    over), never as an error — the cache must always be safe to delete
    or to share between concurrent runs.
    """

    root: Path = field(default_factory=default_cache_root)
    enabled: bool = True
    hits: int = 0
    misses: int = 0
    stores: int = 0

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @classmethod
    def disabled(cls) -> "ResultCache":
        """A cache that never loads nor stores (explicit opt-out)."""
        return cls(enabled=False)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> PointResult | None:
        """Return the cached point for ``key``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            point = point_from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return point

    def store(self, key: str, point: PointResult) -> Path | None:
        """Persist ``point`` under ``key``; returns the written path.

        Caching is an optimisation, never a requirement: a full disk
        or read-only cache directory must not abort a sweep that has
        already paid for its points, so write failures are swallowed
        (the store just doesn't count).
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so a concurrent reader never sees a
            # half-written entry (renames within a directory are
            # atomic).
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps(point_to_dict(point), sort_keys=True),
                encoding="utf-8",
            )
            tmp.replace(path)
        except OSError:
            return None
        self.stores += 1
        return path

    def stats(self) -> str:
        """One-line hit/miss/store summary for progress output."""
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} stored"
        )
