"""Content-addressed on-disk cache for figure points.

A figure point — one :class:`~repro.experiments.runner.PointResult` —
is fully determined by the experiment configuration, the deployment
model, the node count and the router factory: every RNG stream inside
:func:`~repro.experiments.runner.evaluate_point` is derived from those
values alone.  That makes points safe to memoise on disk: the cache
key is a SHA-256 digest over a canonical JSON encoding of exactly the
inputs that influence the computation, and the value is the point
serialised as JSON.

Layout: ``<root>/<key[:2]>/<key>.json`` (sharded by digest prefix so a
paper-scale run does not pile thousands of files into one directory).
The root defaults to ``.repro_cache/`` under the current directory and
can be moved with ``REPRO_CACHE_DIR``; setting ``REPRO_CACHE=0``
disables caching entirely.

The digest deliberately *excludes* ``node_counts``: a point cached
while sweeping 400..600 is reused verbatim when a later sweep covers
400..800.  It *includes* a digest of the package's own source code,
so editing any routing/model module invalidates every point computed
by the old code — the cache can never serve stale figures.

Router factories are identified by qualified name plus — for
factories defined outside this package — a digest of their defining
module's source.  Lambdas, closures and partials have no reliable
identity (two different lambdas share the name ``<lambda>``), so
:func:`factory_fingerprint` returns ``None`` for them and the engine
computes such units without caching.

Entries are written atomically (temp file + ``os.replace``), so a
concurrent reader — another local run, or a bundle merge — never
observes a partial write.  A corrupt or truncated entry found on the
*read* side (e.g. a worker killed mid-write on a filesystem without
atomic rename) is detected, reported as a
:class:`CacheCorruptionWarning`, discarded, and recomputed.

**Portable cache bundles** make the cache a merge point for
distributed execution (:mod:`repro.dist`): :func:`export_bundle`
packs keyed entries plus a manifest (code digest, registry identity)
into a tarball or directory; :func:`import_bundle` merges a bundle —
including a partial one from an interrupted host — back into a cache,
refusing mismatched code digests or registry identities with an error
that names the offending bundle; :func:`verify_bundle` inspects one
without merging.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
import tarfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro import __version__
from repro.analysis.stats import Summary
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import PointResult, RouterPointMetrics

__all__ = [
    "BUNDLE_SCHEMA",
    "BundleError",
    "BundleStats",
    "CACHE_SCHEMA",
    "CacheCorruptionWarning",
    "ResultCache",
    "bundle_add_entry",
    "bundle_has_entry",
    "decode_point",
    "default_cache",
    "default_cache_root",
    "encode_point",
    "export_bundle",
    "factory_fingerprint",
    "import_bundle",
    "point_from_dict",
    "point_key",
    "point_to_dict",
    "read_bundle",
    "start_bundle",
    "verify_bundle",
]

# Bump when the serialised form or the semantics of a cached point
# change; old entries then simply stop matching.
CACHE_SCHEMA = 1


class CacheCorruptionWarning(UserWarning):
    """A cache or bundle entry was unreadable and has been discarded.

    Corruption is recoverable by construction — the entry is deleted
    (or skipped, for bundles) and the cell recomputed — but silent
    recovery would hide a failing disk or a worker being killed
    mid-write, so every discarded entry is reported."""


def default_cache_root() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    custom = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(custom) if custom else Path(".repro_cache")


def default_cache() -> "ResultCache | None":
    """The cache sweeps use unless told otherwise.

    ``REPRO_CACHE=0`` turns caching off globally; anything else yields
    a cache rooted at :func:`default_cache_root`.
    """
    if os.environ.get("REPRO_CACHE", "") == "0":
        return None
    return ResultCache(default_cache_root())


def _config_fingerprint(config: ExperimentConfig) -> dict:
    """The config fields that influence a single point's value.

    ``node_counts`` is intentionally absent — the point's own node
    count is keyed separately, so sweeps with different x-axes share
    cached points.
    """
    return {
        "area": [
            config.area.x_min,
            config.area.y_min,
            config.area.x_max,
            config.area.y_max,
        ],
        "radius": config.radius,
        "networks_per_point": config.networks_per_point,
        "routes_per_network": config.routes_per_network,
        "seed": config.seed,
        "obstacle_count": config.obstacle_count,
        "min_obstacle_size": config.min_obstacle_size,
        "max_obstacle_size": config.max_obstacle_size,
    }


_code_digest_cache: str | None = None


def _code_digest() -> str:
    """Digest of every source file in the ``repro`` package.

    Computed once per process.  Any edit to routing, model or
    experiment code changes the digest and therefore every cache key
    — cached figures always come from exactly the code that is
    running.  Falls back to the bare package version if the source
    tree is unreadable (e.g. a zipped install).
    """
    global _code_digest_cache
    if _code_digest_cache is None:
        hasher = hashlib.sha256(__version__.encode("utf-8"))
        try:
            package_root = _package_root()
            for source in sorted(package_root.rglob("*.py")):
                relative = source.relative_to(package_root).as_posix()
                hasher.update(relative.encode("utf-8"))
                hasher.update(source.read_bytes())
        except OSError:
            # A partial digest would be nondeterministic across
            # processes; reset to the version-only fallback instead.
            hasher = hashlib.sha256(__version__.encode("utf-8"))
        _code_digest_cache = hasher.hexdigest()
    return _code_digest_cache


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


# Sentinel distinguishing "no cache_fingerprint attribute" from an
# explicit cache_fingerprint of None (= declared uncacheable).
_NO_FINGERPRINT = object()


def factory_fingerprint(router_factory: Callable) -> str | None:
    """Stable identity of a router factory, or ``None`` if it has none.

    Only module-level functions are nameable across runs; lambdas,
    closures (qualnames containing ``<lambda>``/``<locals>``) and
    callables without a qualified name (e.g. ``functools.partial``)
    would collide under a shared name, so they are not cacheable.

    Factories defined *outside* the ``repro`` package additionally get
    a digest of their defining module's source folded in — editing a
    user-supplied factory (or the routers it builds in that module)
    invalidates its cached points just like editing package code does.
    An external factory whose source cannot be read is not cacheable.

    A factory may also speak for itself through a ``cache_fingerprint``
    attribute (``str`` for a stable identity, ``None`` for "do not
    cache me"), which takes precedence over introspection.  That is
    how :class:`repro.api.RegistryRouterFactory` folds the registry's
    identity — selected scheme names, their factories' sources and
    per-scheme options — into the cache key, so third-party routers
    cache correctly.
    """
    declared = getattr(router_factory, "cache_fingerprint", _NO_FINGERPRINT)
    if declared is not _NO_FINGERPRINT:
        return declared
    # One set of identity rules for the whole system: the registry owns
    # the introspection (module:qualname, lambda/closure rejection,
    # external-source digest) and this layer reuses it, so a factory is
    # judged cacheable the same way however it reaches the engine.
    from repro.api.registry import _factory_identity

    return _factory_identity(router_factory)


def point_key(
    config: ExperimentConfig,
    deployment_model: str,
    node_count: int,
    router_factory: Callable,
) -> str:
    """Content hash identifying one figure point's inputs.

    Raises :class:`ValueError` for factories without a stable
    identity — the engine checks :func:`factory_fingerprint` first
    and simply skips caching for those.
    """
    factory = factory_fingerprint(router_factory)
    if factory is None:
        raise ValueError(
            f"router factory {router_factory!r} has no stable identity "
            "(lambda/closure/partial); its results cannot be cached"
        )
    payload = {
        "schema": CACHE_SCHEMA,
        "code": _code_digest(),
        "config": _config_fingerprint(config),
        "model": deployment_model,
        "nodes": node_count,
        "factory": factory,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _summary_to_dict(summary: Summary) -> dict:
    return {
        "count": summary.count,
        "mean": summary.mean,
        "std": summary.std,
        "minimum": summary.minimum,
        "maximum": summary.maximum,
        "ci95_half_width": summary.ci95_half_width,
    }


def point_to_dict(point: PointResult) -> dict:
    """JSON-serialisable form of a point (inverse of ``point_from_dict``)."""
    return {
        "deployment_model": point.deployment_model,
        "node_count": point.node_count,
        "networks": point.networks,
        "per_router": {
            name: {
                "router": metrics.router,
                "samples": metrics.samples,
                "delivered": metrics.delivered,
                "hops": _summary_to_dict(metrics.hops),
                "length": _summary_to_dict(metrics.length),
                "max_hops": metrics.max_hops,
                "perimeter_entries_per_route": (
                    metrics.perimeter_entries_per_route
                ),
                "backup_entries_per_route": metrics.backup_entries_per_route,
            }
            for name, metrics in point.per_router.items()
        },
    }


def point_from_dict(data: dict) -> PointResult:
    """Rebuild a point from its serialised form."""
    per_router = {
        name: RouterPointMetrics(
            router=raw["router"],
            samples=raw["samples"],
            delivered=raw["delivered"],
            hops=Summary(**raw["hops"]),
            length=Summary(**raw["length"]),
            max_hops=raw["max_hops"],
            perimeter_entries_per_route=raw["perimeter_entries_per_route"],
            backup_entries_per_route=raw["backup_entries_per_route"],
        )
        for name, raw in data["per_router"].items()
    }
    return PointResult(
        deployment_model=data["deployment_model"],
        node_count=data["node_count"],
        networks=data["networks"],
        per_router=per_router,
    )


def encode_point(point: PointResult) -> str:
    """The canonical on-disk text of one cached point.

    Everything that persists a point — :meth:`ResultCache.store`, the
    distributed worker's bundle entries — goes through this one
    encoder, so a merged bundle entry is byte-identical to the entry a
    local run would have written.
    """
    return json.dumps(point_to_dict(point), sort_keys=True)


def decode_point(text: str) -> PointResult:
    """Parse one entry's text; :class:`ValueError` on anything broken.

    Collapses the JSON/shape failure zoo (``json.JSONDecodeError``,
    ``KeyError``, ``TypeError`` from a truncated or tampered entry)
    into one exception type so readers never surface a raw decode
    traceback for what is simply a corrupt entry.
    """
    try:
        return point_from_dict(json.loads(text))
    except (ValueError, KeyError, TypeError) as error:
        raise ValueError(f"corrupt cache entry: {error}") from error


# Unique-per-writer temp names: pid guards against other processes,
# the counter against threads sharing this process.
_tmp_names = itertools.count()


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + ``os.replace``.

    Renames within a directory are atomic, so a concurrent reader —
    another run, a bundle merge, the distributed worker's resume scan
    — sees either the complete entry or none at all, never a partial
    write."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.{next(_tmp_names)}.tmp"
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


@dataclass
class ResultCache:
    """Sharded JSON store of figure points, keyed by content hash.

    A corrupt or unreadable entry is treated as a miss (warned about,
    discarded and recomputed over), never as an error — the cache must
    always be safe to delete or to share between concurrent runs.
    """

    root: Path = field(default_factory=default_cache_root)
    enabled: bool = True
    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @classmethod
    def disabled(cls) -> "ResultCache":
        """A cache that never loads nor stores (explicit opt-out)."""
        return cls(enabled=False)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _read_valid(self, key: str) -> str | None:
        """The entry's text if present and well-formed, else ``None``.

        A present-but-broken entry (truncated write from a killed
        worker, bit rot) is warned about and deleted so it can never
        shadow a recomputation — detect, warn, discard, recompute.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            decode_point(text)
        except ValueError as error:
            self.corrupt += 1
            warnings.warn(
                f"discarding corrupt result-cache entry {path} "
                f"({error}); the cell will be recomputed",
                CacheCorruptionWarning,
                stacklevel=3,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return text

    def load(self, key: str) -> PointResult | None:
        """Return the cached point for ``key``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        text = self._read_valid(key)
        if text is None:
            self.misses += 1
            return None
        self.hits += 1
        return decode_point(text)

    def has(self, key: str) -> bool:
        """Whether a valid entry exists, without counting a hit or miss.

        The distributed driver prunes already-cached cells from its
        shards through this — a peek must not skew the hit-rate
        accounting of the run that follows.
        """
        return self.enabled and self._read_valid(key) is not None

    def load_text(self, key: str) -> str | None:
        """The raw validated entry text (bundle export), or ``None``."""
        if not self.enabled:
            return None
        return self._read_valid(key)

    def store(self, key: str, point: PointResult) -> Path | None:
        """Persist ``point`` under ``key``; returns the written path.

        Caching is an optimisation, never a requirement: a full disk
        or read-only cache directory must not abort a sweep that has
        already paid for its points, so write failures are swallowed
        (the store just doesn't count).
        """
        return self.store_text(key, encode_point(point))

    def store_text(self, key: str, text: str) -> Path | None:
        """Persist one already-encoded entry (the bundle-merge path).

        Callers own validation (``decode_point`` first); this layer
        owns atomicity and the store-failures-are-soft contract.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            _write_atomic(path, text)
        except OSError:
            return None
        self.stores += 1
        return path

    def stats(self) -> str:
        """One-line hit/miss/store summary for progress output."""
        line = (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} stored"
        )
        if self.corrupt:
            line += f", {self.corrupt} corrupt entr(ies) discarded"
        return line


# -- portable cache bundles ---------------------------------------------------
#
# A bundle is the unit of result transport between hosts: the keyed
# entries one worker computed, plus a manifest binding them to the
# exact code and router registry that computed them.  Two forms share
# one layout — a directory (what a worker grows incrementally, so a
# killed host leaves a valid partial bundle) and a tarball of the same
# files (what travels over ssh / a shared filesystem):
#
#     manifest.json          {"schema", "kind", "code", "registry", ...}
#     entries/<key>.json     one cache entry, exactly ResultCache's text
#     done.json              completion marker + counts (workers only)

BUNDLE_SCHEMA = 1

_BUNDLE_KIND = "repro-cache-bundle"
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")
_TAR_SUFFIXES = (".tar", ".tar.gz", ".tgz")


class BundleError(ValueError):
    """A bundle that cannot be used, with the bundle located.

    Every message leads with the offending bundle's path, so a merge
    over dozens of per-host bundles fails naming the one that is
    stale, foreign or damaged."""

    def __init__(self, source, detail: str) -> None:
        super().__init__(f"{source}: {detail}")
        self.source = str(source)
        self.detail = detail


@dataclass
class BundleStats:
    """What one :func:`import_bundle` call did."""

    total: int = 0  # entries found in the bundle
    merged: int = 0  # newly stored into the cache
    skipped: int = 0  # already present locally (idempotent re-merge)
    corrupt: int = 0  # discarded: truncated/invalid entry text

    def __iadd__(self, other: "BundleStats") -> "BundleStats":
        self.total += other.total
        self.merged += other.merged
        self.skipped += other.skipped
        self.corrupt += other.corrupt
        return self

    def describe(self) -> str:
        line = f"{self.merged} merged, {self.skipped} already present"
        if self.corrupt:
            line += f", {self.corrupt} corrupt entr(ies) skipped"
        return line


def _manifest_dict(
    registry: str | None, meta: Mapping | None = None,
    entries: Mapping[str, str] | None = None,
) -> dict:
    manifest: dict = {
        "schema": BUNDLE_SCHEMA,
        "kind": _BUNDLE_KIND,
        "code": _code_digest(),
        "registry": registry,
    }
    if meta:
        manifest["meta"] = dict(meta)
    if entries is not None:
        # One-shot exports know their full entry set, so they carry
        # per-entry content digests; incremental worker bundles cannot
        # (the manifest is written first) and rely on JSON validation.
        manifest["entries"] = dict(entries)
    return manifest


def start_bundle(
    root, registry: str | None, meta: Mapping | None = None
) -> Path:
    """Create (or resume) an incremental bundle directory.

    Writes the manifest before any entry, so a worker killed at any
    point leaves an importable partial bundle.  Resuming an existing
    bundle verifies its manifest still matches this code and registry
    — stale leftovers from an older checkout must not be silently
    extended."""
    root = Path(root)
    (root / "entries").mkdir(parents=True, exist_ok=True)
    manifest_path = root / "manifest.json"
    if manifest_path.exists():
        manifest = _read_manifest_text(
            root, manifest_path.read_text(encoding="utf-8")
        )
        _check_manifest(root, manifest, registry=registry)
        return root
    _write_atomic(
        manifest_path,
        json.dumps(_manifest_dict(registry, meta), sort_keys=True),
    )
    return root


def bundle_add_entry(root, key: str, text: str) -> Path:
    """Atomically add one entry to an incremental bundle."""
    if not _KEY_RE.match(key):
        raise BundleError(root, f"invalid entry key {key!r}")
    path = Path(root) / "entries" / f"{key}.json"
    _write_atomic(path, text)
    return path


def bundle_has_entry(root, key: str) -> bool:
    """Whether a *valid* entry for ``key`` is already in the bundle.

    The worker's resume path: a truncated entry from a previous
    killed run reads as absent (and is removed), so the cell is
    recomputed rather than shipped broken."""
    path = Path(root) / "entries" / f"{key}.json"
    try:
        decode_point(path.read_text(encoding="utf-8"))
    except OSError:
        return False
    except ValueError:
        try:
            path.unlink()
        except OSError:
            pass
        return False
    return True


def export_bundle(
    cache: ResultCache,
    keys: Iterable[str],
    dest,
    registry: str | None,
    meta: Mapping | None = None,
) -> Path:
    """Pack the cache entries for ``keys`` into a bundle at ``dest``.

    ``dest`` ending in ``.tar`` / ``.tar.gz`` / ``.tgz`` produces a
    tarball; anything else a bundle directory.  Keys without a valid
    local entry are simply absent from the bundle (the importer's
    pruning decides what to do about them); the manifest carries a
    sha256 per included entry, so transport truncation is caught at
    import time."""
    dest = Path(dest)
    entries: dict[str, str] = {}
    digests: dict[str, str] = {}
    for key in keys:
        if not _KEY_RE.match(key):
            raise BundleError(dest, f"invalid entry key {key!r}")
        text = cache.load_text(key)
        if text is None:
            continue
        entries[key] = text
        digests[key] = hashlib.sha256(text.encode("utf-8")).hexdigest()
    manifest = json.dumps(
        _manifest_dict(registry, meta, entries=digests), sort_keys=True
    )
    if dest.name.endswith(_TAR_SUFFIXES):
        mode = "w" if dest.name.endswith(".tar") else "w:gz"
        dest.parent.mkdir(parents=True, exist_ok=True)
        with tarfile.open(dest, mode) as tar:
            _tar_add_text(tar, "manifest.json", manifest)
            for key, text in sorted(entries.items()):
                _tar_add_text(tar, f"entries/{key}.json", text)
        return dest
    (dest / "entries").mkdir(parents=True, exist_ok=True)
    _write_atomic(dest / "manifest.json", manifest)
    for key, text in entries.items():
        _write_atomic(dest / "entries" / f"{key}.json", text)
    return dest


def _tar_add_text(tar: tarfile.TarFile, name: str, text: str) -> None:
    import io
    import time as _time

    data = text.encode("utf-8")
    info = tarfile.TarInfo(name)
    info.size = len(data)
    info.mtime = int(_time.time())
    tar.addfile(info, io.BytesIO(data))


def _read_manifest_text(source, text: str) -> dict:
    try:
        manifest = json.loads(text)
    except ValueError as error:
        raise BundleError(source, f"unreadable manifest.json: {error}")
    if not isinstance(manifest, dict):
        raise BundleError(source, "manifest.json is not an object")
    return manifest


def _check_manifest(
    source,
    manifest: dict,
    registry: str | None = None,
    force: bool = False,
) -> None:
    """Refuse bundles this installation must not merge.

    The checks are the bit-identity guarantee of distributed runs: an
    entry computed by different code, or by a host resolving router
    names against a different registry, would poison the cache with
    values a local run could never produce."""
    kind = manifest.get("kind")
    if kind != _BUNDLE_KIND:
        raise BundleError(source, f"not a cache bundle (kind={kind!r})")
    schema = manifest.get("schema")
    if schema != BUNDLE_SCHEMA:
        raise BundleError(
            source,
            f"bundle schema {schema!r} does not match this "
            f"installation's {BUNDLE_SCHEMA}",
        )
    if force:
        return
    code = manifest.get("code")
    local = _code_digest()
    if code != local:
        raise BundleError(
            source,
            f"code digest mismatch: bundle {str(code)[:12]}… vs local "
            f"{local[:12]}… — the bundle was computed by different "
            "repro code; recompute it (or pass force=True to merge "
            "anyway, at your own risk)",
        )
    if registry is not None and manifest.get("registry") != registry:
        raise BundleError(
            source,
            f"registry identity mismatch: bundle "
            f"{str(manifest.get('registry'))[:12]}… vs expected "
            f"{registry[:12]}… — the producing host resolved router "
            "names against a different registry",
        )


def read_bundle(source) -> tuple[dict, dict[str, str]]:
    """Load a bundle's manifest and raw entry texts (dir or tarball).

    Tar members are read selectively by safe, expected names — never
    extracted to disk — so a hostile archive cannot escape the
    bundle's namespace."""
    source = Path(source)
    if source.is_dir():
        manifest_path = source / "manifest.json"
        if not manifest_path.exists():
            raise BundleError(source, "no manifest.json — not a bundle")
        manifest = _read_manifest_text(
            source, manifest_path.read_text(encoding="utf-8")
        )
        entries: dict[str, str] = {}
        entries_dir = source / "entries"
        if entries_dir.is_dir():
            for path in sorted(entries_dir.glob("*.json")):
                if _KEY_RE.match(path.stem):
                    entries[path.stem] = path.read_text(encoding="utf-8")
        return manifest, entries
    if not source.exists():
        raise BundleError(source, "bundle does not exist")
    manifest = None
    entries = {}
    try:
        with tarfile.open(source, "r:*") as tar:
            for member in tar:
                if not member.isfile():
                    continue
                name = member.name.lstrip("./")
                handle = tar.extractfile(member)
                if handle is None:
                    continue
                text = handle.read().decode("utf-8")
                if name == "manifest.json":
                    manifest = _read_manifest_text(source, text)
                elif name.startswith("entries/"):
                    key = name[len("entries/"):-len(".json")]
                    if name.endswith(".json") and _KEY_RE.match(key):
                        entries[key] = text
    except tarfile.TarError as error:
        raise BundleError(source, f"unreadable tarball: {error}")
    if manifest is None:
        raise BundleError(source, "no manifest.json — not a bundle")
    return manifest, entries


def verify_bundle(
    source, registry: str | None = None, force: bool = False
) -> tuple[dict, list[str], list[str]]:
    """Inspect a bundle without merging it.

    Returns ``(manifest, good keys, problems)`` where ``problems``
    lists human-readable findings for every invalid entry (truncated
    text, content-digest mismatch).  Raises :class:`BundleError` for
    manifest-level refusals (wrong kind/schema/code/registry)."""
    manifest, entries = read_bundle(source)
    _check_manifest(source, manifest, registry=registry, force=force)
    digests = manifest.get("entries")
    good: list[str] = []
    problems: list[str] = []
    for key, text in sorted(entries.items()):
        if isinstance(digests, dict) and key in digests:
            actual = hashlib.sha256(text.encode("utf-8")).hexdigest()
            if actual != digests[key]:
                problems.append(
                    f"entry {key[:12]}…: content digest mismatch "
                    "(truncated or tampered in transport)"
                )
                continue
        try:
            decode_point(text)
        except ValueError as error:
            problems.append(f"entry {key[:12]}…: {error}")
            continue
        good.append(key)
    return manifest, good, problems


def import_bundle(
    cache: ResultCache,
    source,
    registry: str | None = None,
    force: bool = False,
) -> BundleStats:
    """Merge a bundle's entries into ``cache``; returns the stats.

    Safe by construction for the distributed protocol's failure
    modes: merging is **idempotent** (an entry already present locally
    is skipped, so overlapping or re-sent bundles converge), partial
    bundles from interrupted hosts merge cleanly (whatever entries
    exist and validate are taken), and each invalid entry is warned
    about and skipped — never stored.  Mismatched code digests or
    registry identities refuse the whole bundle with a located
    :class:`BundleError` (override with ``force=True``)."""
    manifest, good, problems = verify_bundle(
        source, registry=registry, force=force
    )
    stats = BundleStats(total=len(good) + len(problems))
    for problem in problems:
        stats.corrupt += 1
        warnings.warn(
            f"{source}: skipping {problem}",
            CacheCorruptionWarning,
            stacklevel=2,
        )
    _, entries = read_bundle(source)
    for key in good:
        if cache.has(key):
            stats.skipped += 1
            continue
        if cache.store_text(key, entries[key]) is not None:
            stats.merged += 1
    return stats
