"""Workload generation: networks and source-destination pairs.

"We assume that the destination and the source are randomly selected
in the interest area, including both safe sources and unsafe sources."
(Section 5.)  Pairs are drawn uniformly from the largest connected
component — a disconnected pair is undeliverable for *every* scheme and
would only add identical noise to all curves (the paper's densities
make disconnection rare to begin with).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.model import InformationModel
from repro.experiments.config import ExperimentConfig
from repro.network.deployment import (
    deploy_forbidden_area_model,
    deploy_uniform_model,
)
from repro.network.edges import EdgeDetector
from repro.network.graph import WasnGraph, build_unit_disk_graph
from repro.network.node import NodeId
from repro.protocols.boundhole import HoleBoundarySet, build_hole_boundaries

__all__ = ["NetworkInstance", "build_network", "sample_pairs"]

DEPLOYMENT_MODELS = ("IA", "FA")


@dataclass(frozen=True)
class NetworkInstance:
    """One generated network with all per-network information built.

    Mirrors the paper's procedure: "Before we test the routing
    performance ..., boundary information [5] is constructed for GF
    routings, and safety information and estimated shape information
    are constructed for our SLGF and SLGF2 routing."
    """

    graph: WasnGraph
    model: InformationModel
    boundaries: HoleBoundarySet
    deployment_model: str
    seed: int


def build_network(
    config: ExperimentConfig,
    deployment_model: str,
    node_count: int,
    seed: int,
) -> NetworkInstance:
    """Generate one network under the IA or FA model."""
    if deployment_model not in DEPLOYMENT_MODELS:
        raise ValueError(
            f"unknown deployment model {deployment_model!r}; "
            f"expected one of {DEPLOYMENT_MODELS}"
        )
    rng = random.Random(seed)
    if deployment_model == "IA":
        result = deploy_uniform_model(node_count, config.area, rng)
    else:
        result = deploy_forbidden_area_model(
            node_count,
            config.area,
            rng,
            obstacle_count=config.obstacle_count,
            min_obstacle_size=config.min_obstacle_size,
            max_obstacle_size=config.max_obstacle_size,
        )
    graph = build_unit_disk_graph(list(result.positions), config.radius)
    graph = EdgeDetector(strategy="convex").apply(graph)
    return NetworkInstance(
        graph=graph,
        model=InformationModel.build(graph),
        boundaries=build_hole_boundaries(graph),
        deployment_model=deployment_model,
        seed=seed,
    )


def sample_pairs(
    graph: WasnGraph, count: int, rng: random.Random
) -> list[tuple[NodeId, NodeId]]:
    """Random source-destination pairs within the largest component."""
    components = graph.connected_components()
    if not components or len(components[0]) < 2:
        return []
    pool = sorted(components[0])
    pairs = []
    for _ in range(count):
        s, d = rng.sample(pool, 2)
        pairs.append((s, d))
    return pairs
