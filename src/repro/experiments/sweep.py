"""Density sweeps: the x-axis of every figure in Section 5.

"We test the networks when the number of nodes in the interest area is
varied from 400 to 800 in increments of 50."  A sweep evaluates every
configured node count under one deployment model and keeps the full
:class:`~repro.experiments.runner.PointResult` per point, so all three
figures (and the phase/ablation benches) project from a single run.

Execution is delegated to the
:class:`~repro.experiments.engine.ExperimentEngine`: points already in
the result cache are loaded, the rest are computed — in parallel when
``jobs > 1`` (or ``REPRO_JOBS`` is set).  :func:`run_sweeps` evaluates
several deployment models through *one* engine so all their points
share a single worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    ExperimentEngine,
    Progress,
    WorkUnit,
    plan_units,
)
from repro.experiments.runner import PointResult, RouterFactory

__all__ = ["SweepResult", "run_sweep", "run_sweeps"]


@dataclass(frozen=True)
class SweepResult:
    """One deployment model's full density sweep."""

    deployment_model: str
    config: ExperimentConfig
    points: tuple[PointResult, ...]

    @property
    def node_counts(self) -> tuple[int, ...]:
        return tuple(p.node_count for p in self.points)

    def routers(self) -> tuple[str, ...]:
        """Router names present (stable order across points)."""
        if not self.points:
            return ()
        seen = self.points[0].per_router
        return tuple(seen)

    def series(self, router: str, metric: str) -> list[float]:
        """One curve: ``metric`` for ``router`` across node counts."""
        return [p.metric(router, metric) for p in self.points]


def _assemble(
    config: ExperimentConfig,
    deployment_model: str,
    results: dict[WorkUnit, PointResult],
) -> SweepResult:
    """Order one model's points by node count, as the figures expect."""
    points = tuple(
        results[WorkUnit(deployment_model=deployment_model, node_count=n)]
        for n in config.node_counts
    )
    return SweepResult(
        deployment_model=deployment_model,
        config=config,
        points=points,
    )


def run_sweep(
    config: ExperimentConfig,
    deployment_model: str,
    router_factory: RouterFactory | None = None,
    progress: Progress | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> SweepResult:
    """Evaluate every node count of ``config`` under one deployment."""
    return run_sweeps(
        config,
        (deployment_model,),
        router_factory=router_factory,
        progress=progress,
        jobs=jobs,
        cache=cache,
    )[deployment_model]


def run_sweeps(
    config: ExperimentConfig,
    deployment_models: Sequence[str] = ("IA", "FA"),
    router_factory: RouterFactory | None = None,
    progress: Progress | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> dict[str, SweepResult]:
    """Evaluate several deployment models over one shared worker pool.

    All models' figure points form a single unit list, so ``--jobs N``
    keeps N workers busy across panel boundaries instead of draining
    per model.
    """
    engine = ExperimentEngine(jobs=jobs, cache=cache, progress=progress)
    units = plan_units(config, deployment_models)
    results = engine.run(config, units, router_factory)
    return {
        model: _assemble(config, model, results)
        for model in deployment_models
    }
