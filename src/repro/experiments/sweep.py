"""Density-sweep result container: the x-axis of every figure in Section 5.

"We test the networks when the number of nodes in the interest area is
varied from 400 to 800 in increments of 50."  A :class:`SweepResult`
holds one deployment model's full density sweep — every configured
node count with its complete
:class:`~repro.experiments.runner.PointResult` — so all three figures
(and the phase/ablation benches) project from a single run.

Sweeps are *produced* by the declarative Study API:
``Study.from_config(config, models).run().sweep_result(model)``
compiles the classic config × deployment-model grid, evaluates it
through the engine's cached task stream, and adapts the result into
this container bit-identically to the historical ``run_sweeps``
pipeline (golden-tested).  The one-release ``run_sweeps``/``run_sweep``
compatibility wrappers that used to live here were removed on
schedule; callers holding an anonymous router factory (a closure or
partial, inexpressible as registry names) drive
:class:`~repro.experiments.engine.ExperimentEngine` directly over
:func:`~repro.experiments.engine.plan_units`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import PointResult

__all__ = ["SweepResult"]


@dataclass(frozen=True)
class SweepResult:
    """One deployment model's full density sweep."""

    deployment_model: str
    config: ExperimentConfig
    points: tuple[PointResult, ...]

    @property
    def node_counts(self) -> tuple[int, ...]:
        return tuple(p.node_count for p in self.points)

    def routers(self) -> tuple[str, ...]:
        """Router names present (stable order across points)."""
        if not self.points:
            return ()
        seen = self.points[0].per_router
        return tuple(seen)

    def series(self, router: str, metric: str) -> list[float]:
        """One curve: ``metric`` for ``router`` across node counts."""
        return [p.metric(router, metric) for p in self.points]
