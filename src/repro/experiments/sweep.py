"""Density sweeps: the x-axis of every figure in Section 5.

"We test the networks when the number of nodes in the interest area is
varied from 400 to 800 in increments of 50."  A sweep evaluates every
configured node count under one deployment model and keeps the full
:class:`~repro.experiments.runner.PointResult` per point, so all three
figures (and the phase/ablation benches) project from a single run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    PointResult,
    RouterFactory,
    default_routers,
    evaluate_point,
)

__all__ = ["SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """One deployment model's full density sweep."""

    deployment_model: str
    config: ExperimentConfig
    points: tuple[PointResult, ...]

    @property
    def node_counts(self) -> tuple[int, ...]:
        return tuple(p.node_count for p in self.points)

    def routers(self) -> tuple[str, ...]:
        """Router names present (stable order across points)."""
        if not self.points:
            return ()
        seen = self.points[0].per_router
        return tuple(seen)

    def series(self, router: str, metric: str) -> list[float]:
        """One curve: ``metric`` for ``router`` across node counts."""
        return [p.metric(router, metric) for p in self.points]


def run_sweep(
    config: ExperimentConfig,
    deployment_model: str,
    router_factory: RouterFactory = default_routers,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Evaluate every node count of ``config`` under one deployment."""
    points = []
    for node_count in config.node_counts:
        if progress is not None:
            progress(
                f"[{deployment_model}] n={node_count} "
                f"({config.networks_per_point} networks x "
                f"{config.routes_per_network} routes)"
            )
        points.append(
            evaluate_point(config, deployment_model, node_count, router_factory)
        )
    return SweepResult(
        deployment_model=deployment_model,
        config=config,
        points=tuple(points),
    )
