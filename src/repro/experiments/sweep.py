"""Density sweeps: the x-axis of every figure in Section 5.

"We test the networks when the number of nodes in the interest area is
varied from 400 to 800 in increments of 50."  A sweep evaluates every
configured node count under one deployment model and keeps the full
:class:`~repro.experiments.runner.PointResult` per point, so all three
figures (and the phase/ablation benches) project from a single run.

This module is now a *compatibility wrapper*: the primary experiment
surface is :class:`repro.api.study.Study`, which expresses the same
grid (and every richer one — failure schedules, obstacle fields,
router options as axes) declaratively.  :func:`run_sweeps` keeps its
historical signature for one more release by compiling the config ×
deployment-model product into a density Study and adapting the result
— bit-identically, as the golden tests pin.  Callers holding an
*anonymous* router factory (a closure or partial, inexpressible as
registry names) keep the classic
:class:`~repro.experiments.engine.ExperimentEngine` unit path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    ExperimentEngine,
    Progress,
    WorkUnit,
    plan_units,
)
from repro.experiments.runner import PointResult, RouterFactory

__all__ = ["SweepResult", "run_sweep", "run_sweeps"]


@dataclass(frozen=True)
class SweepResult:
    """One deployment model's full density sweep."""

    deployment_model: str
    config: ExperimentConfig
    points: tuple[PointResult, ...]

    @property
    def node_counts(self) -> tuple[int, ...]:
        return tuple(p.node_count for p in self.points)

    def routers(self) -> tuple[str, ...]:
        """Router names present (stable order across points)."""
        if not self.points:
            return ()
        seen = self.points[0].per_router
        return tuple(seen)

    def series(self, router: str, metric: str) -> list[float]:
        """One curve: ``metric`` for ``router`` across node counts."""
        return [p.metric(router, metric) for p in self.points]


def _assemble(
    config: ExperimentConfig,
    deployment_model: str,
    results: dict[WorkUnit, PointResult],
) -> SweepResult:
    """Order one model's points by node count, as the figures expect."""
    points = tuple(
        results[WorkUnit(deployment_model=deployment_model, node_count=n)]
        for n in config.node_counts
    )
    return SweepResult(
        deployment_model=deployment_model,
        config=config,
        points=points,
    )


def run_sweep(
    config: ExperimentConfig,
    deployment_model: str,
    router_factory: RouterFactory | None = None,
    progress: Progress | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> SweepResult:
    """Evaluate every node count of ``config`` under one deployment."""
    return run_sweeps(
        config,
        (deployment_model,),
        router_factory=router_factory,
        progress=progress,
        jobs=jobs,
        cache=cache,
    )[deployment_model]


def run_sweeps(
    config: ExperimentConfig,
    deployment_models: Sequence[str] = ("IA", "FA"),
    router_factory: RouterFactory | None = None,
    progress: Progress | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> dict[str, SweepResult]:
    """Evaluate several deployment models over one shared worker pool.

    Compatibility wrapper over :class:`repro.api.study.Study`: the
    default (and any registry-backed) router selection compiles to a
    density Study whose cells are cached under full scenario
    fingerprints; an anonymous factory — not expressible as registry
    names — runs through the classic work-unit engine instead (and,
    exactly as before, without caching unless it declares an
    identity).  Either way all models' points form a single task
    stream, so ``--jobs N`` keeps N workers busy across panel
    boundaries instead of draining per model.
    """
    # Imported here, not at module top: repro.api sits *above* the
    # experiments layer (its package __init__ imports this module).
    from repro.api.registry import RegistryRouterFactory
    from repro.api.study import Study

    from repro.experiments.runner import registry_routers

    deployment_models = tuple(deployment_models)
    if router_factory is None:
        router_factory = registry_routers()
    if isinstance(router_factory, RegistryRouterFactory):
        # Historical tolerance: duplicates collapse (the result is a
        # dict) and an empty selection is an empty result, while a
        # Study axis requires distinct, non-empty values.
        models = tuple(dict.fromkeys(deployment_models))
        if not models:
            return {}
        study = Study.from_config(
            config,
            models,
            routers=router_factory.names,
            router_options=router_factory.options,
            registry=router_factory.as_registry(),
        )
        result = study.run(jobs=jobs, cache=cache, progress=progress)
        return {model: result.sweep_result(model) for model in models}
    engine = ExperimentEngine(jobs=jobs, cache=cache, progress=progress)
    units = plan_units(config, deployment_models)
    results = engine.run(config, units, router_factory)
    return {
        model: _assemble(config, model, results)
        for model in deployment_models
    }
