"""Figure regeneration: the tables behind Figs. 5, 6 and 7.

Each paper figure is two panels (IA and FA) of four curves (GF, LGF,
SLGF, SLGF2) against node count:

* **Fig. 5** — "the upper bound of the number of hops of routing path"
  (maximum hops observed at each point);
* **Fig. 6** — "the average number of hops of routing path";
* **Fig. 7** — "the corresponding length of entire routing path on
  average".

A :class:`FigureTable` is the numeric content of one panel; the report
module renders it as an aligned table, a CSV file, or an ASCII chart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import router_order
from repro.experiments.sweep import SweepResult

__all__ = [
    "FIGURES",
    "FigureTable",
    "all_figures",
    "figure_table",
    "fig5",
    "fig6",
    "fig7",
]

# figure id -> (metric key, human description)
FIGURES: dict[str, tuple[str, str]] = {
    "fig5": ("max_hops", "Maximum number of hops of a routing path"),
    "fig6": ("mean_hops", "Average number of hops of a routing path"),
    "fig7": ("mean_length", "Average length (m) of a routing path"),
}


@dataclass(frozen=True)
class FigureTable:
    """One figure panel: rows = node counts, columns = routers."""

    figure_id: str
    title: str
    deployment_model: str
    metric: str
    node_counts: tuple[int, ...]
    routers: tuple[str, ...]
    values: dict[str, list[float]]  # router -> series over node_counts

    def row(self, node_count: int) -> list[float]:
        index = self.node_counts.index(node_count)
        return [self.values[r][index] for r in self.routers]

    def winner_per_point(self) -> list[str]:
        """Router with the lowest metric at each node count.

        All three paper metrics are lower-is-better, so this is the
        "who wins" series that EXPERIMENTS.md compares to the paper.
        """
        winners = []
        for i in range(len(self.node_counts)):
            winners.append(
                min(self.routers, key=lambda r: self.values[r][i])
            )
        return winners


def figure_table(sweep: SweepResult, figure_id: str) -> FigureTable:
    """Project one figure's metric out of a finished sweep."""
    if figure_id not in FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; expected one of {sorted(FIGURES)}"
        )
    metric, title = FIGURES[figure_id]
    # Legend order comes from the router registry, so a scheme
    # registered via repro.api slots into every figure automatically.
    routers = tuple(r for r in router_order() if r in sweep.routers())
    extras = tuple(r for r in sweep.routers() if r not in routers)
    routers += extras
    return FigureTable(
        figure_id=figure_id,
        title=f"{title} ({sweep.deployment_model} model)",
        deployment_model=sweep.deployment_model,
        metric=metric,
        node_counts=sweep.node_counts,
        routers=routers,
        values={r: sweep.series(r, metric) for r in routers},
    )


def all_figures(sweep: SweepResult) -> dict[str, FigureTable]:
    """Every paper figure's panel for one sweep, keyed by figure id.

    A sweep holds the full per-point results, so projecting all three
    figures costs nothing beyond the sweep itself.
    """
    return {figure_id: figure_table(sweep, figure_id) for figure_id in FIGURES}


def fig5(sweep: SweepResult) -> FigureTable:
    """Fig. 5 panel for the sweep's deployment model (max hops)."""
    return figure_table(sweep, "fig5")


def fig6(sweep: SweepResult) -> FigureTable:
    """Fig. 6 panel (average hops)."""
    return figure_table(sweep, "fig6")


def fig7(sweep: SweepResult) -> FigureTable:
    """Fig. 7 panel (average path length)."""
    return figure_table(sweep, "fig7")
