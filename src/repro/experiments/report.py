"""Rendering and persisting figure tables.

Three output forms per figure panel:

* an aligned text table (what the benches print, and what
  EXPERIMENTS.md quotes);
* a CSV file (for anyone who wants to re-plot with real tooling);
* an ASCII line chart (curve-shape comparison at a glance);
* a JSON document (for downstream tooling and archival — the same
  shape the result cache stores, one level up).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.figures import FigureTable
from repro.viz.ascii_chart import line_chart

__all__ = ["format_table", "to_csv", "to_chart", "to_json"]


def format_table(table: FigureTable, digits: int = 2) -> str:
    """Aligned text table: one row per node count, one column per router."""
    header = ["nodes"] + list(table.routers)
    rows = [header]
    for i, n in enumerate(table.node_counts):
        rows.append(
            [str(n)]
            + [
                f"{table.values[r][i]:.{digits}f}"
                for r in table.routers
            ]
        )
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header))
    ]
    lines = [f"{table.figure_id.upper()}: {table.title}"]
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    winners = table.winner_per_point()
    lines.append(f"best per point: {', '.join(winners)}")
    return "\n".join(lines)


def to_csv(table: FigureTable, path: str | Path) -> Path:
    """Write the panel as CSV; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["figure", "deployment", "metric", "nodes"] + list(table.routers)
        )
        for i, n in enumerate(table.node_counts):
            writer.writerow(
                [
                    table.figure_id,
                    table.deployment_model,
                    table.metric,
                    n,
                ]
                + [table.values[r][i] for r in table.routers]
            )
    return path


def to_json(table: FigureTable, path: str | Path) -> Path:
    """Write the panel as a JSON document; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "figure": table.figure_id,
        "title": table.title,
        "deployment_model": table.deployment_model,
        "metric": table.metric,
        "node_counts": list(table.node_counts),
        "routers": list(table.routers),
        "values": {r: table.values[r] for r in table.routers},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def to_chart(table: FigureTable, width: int = 64, height: int = 14) -> str:
    """ASCII chart of the panel's curves."""
    return line_chart(
        {r: table.values[r] for r in table.routers},
        x_values=list(table.node_counts),
        width=width,
        height=height,
        title=f"{table.figure_id.upper()} ({table.deployment_model}): "
        f"{table.metric} vs node count",
    )
