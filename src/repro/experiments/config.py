"""Experiment configuration — the knobs of Section 5.

The paper's setting:

    "nodes with a transmission radius of 20 meters are deployed to
    cover an interest area of 200m x 200m ... the number of nodes in
    the interest area is varied from 400 to 800 in increments of 50.
    For each case, 100 networks are randomly generated, and the average
    routing performance over all of these randomly sampled networks is
    reported."

:data:`PAPER_CONFIG` encodes exactly that; :data:`QUICK_CONFIG` is a
laptop-scale reduction (same shape, fewer networks/points) used by the
pytest benches so the suite stays fast.  The full-scale run is opted
into by setting the environment variable ``REPRO_FULL=1`` or calling
the figure functions with ``PAPER_CONFIG``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.geometry import Rect

__all__ = [
    "ExperimentConfig",
    "PAPER_CONFIG",
    "QUICK_CONFIG",
    "active_config",
    "default_jobs",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters for one evaluation sweep."""

    area: Rect = field(default_factory=lambda: Rect(0, 0, 200, 200))
    radius: float = 20.0
    node_counts: tuple[int, ...] = tuple(range(400, 801, 50))
    networks_per_point: int = 100
    routes_per_network: int = 20
    seed: int = 2009  # the paper's publication year, for flavour
    # FA model obstacle field parameters (see DESIGN.md substitutions).
    obstacle_count: int = 3
    min_obstacle_size: float = 20.0
    max_obstacle_size: float = 60.0

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if not self.node_counts:
            raise ValueError("node_counts must not be empty")
        if any(n <= 1 for n in self.node_counts):
            raise ValueError("node counts must be >= 2")
        if self.networks_per_point < 1 or self.routes_per_network < 1:
            raise ValueError("networks and routes per point must be >= 1")


PAPER_CONFIG = ExperimentConfig()

QUICK_CONFIG = ExperimentConfig(
    node_counts=(400, 500, 600, 700, 800),
    networks_per_point=10,
    routes_per_network=10,
)


def active_config() -> ExperimentConfig:
    """The config the benches should use.

    ``REPRO_FULL=1`` selects the paper-scale sweep; anything else the
    quick one.
    """
    if os.environ.get("REPRO_FULL", "") == "1":
        return PAPER_CONFIG
    return QUICK_CONFIG


def default_jobs() -> int:
    """Worker-process count from ``REPRO_JOBS``.

    Unset or empty means 1 (serial — parallelism is opt-in so small
    runs never pay process start-up for nothing); ``0`` or ``auto``
    means one worker per CPU; any other value must be a positive
    integer.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    if raw.lower() == "auto":
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a non-negative integer or 'auto', "
            f"got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"REPRO_JOBS must be >= 0, got {value}")
    if value == 0:
        return os.cpu_count() or 1
    return value
