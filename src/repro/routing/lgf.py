"""LGF: limited geographic greedy forwarding (Algorithm 1).

    "1. If d ∈ N(u), v = d.
     2. Determine the request zone Z_k(u, d) according to L(u), L(d).
     3. Select v ∈ Z_k(u, d) ∩ N(u).
     4. If such a v does not exist, send the packet in the perimeter
        routing by the 'right-hand rule' policy [rotating] the ray
        ``ud`` counter-clockwise until the first *untried* node
        v ∈ N(u) is hit by the ray."

Step 3 is greedy within the request zone: among zone candidates the one
closest to the destination is chosen (LGF is a "limited geographic
*greedy* routing").  Because every point of ``Z_k(u, d)`` other than
``u`` is strictly closer to ``d`` than ``u`` is, zone hops are strictly
distance-decreasing and the greedy phase can never loop.

The perimeter phase keeps the paper's "untried" memory: a tried-set is
carried with the packet, the CCW ray sweep only considers untried
neighbours, and a node with no untried neighbour backtracks — so the
phase degenerates to an angle-ordered depth-first search, whose cost is
exactly the "more blocking cases" behaviour the evaluation attributes
to LGF.  The phase ends at any node closer to the destination than the
stuck node that started it.

``candidate_scope`` selects step-3's candidate set: ``"zone"`` (the
request zone, Algorithm 1 as printed) or ``"quadrant"`` (the full
forwarding zone ``Q_k(u)``, matching the prose definition of the local
minimum and the safety model's semantics — see DESIGN.md note 1).
"""

from __future__ import annotations

from repro.core.zones import (
    forwarding_zone_contains,
    request_zone,
    zone_type_of,
)
from repro.geometry import Point
from repro.geometry.angles import angle_of, first_hit_ccw
from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.routing.base import PacketTrace, Phase, Router

__all__ = ["LgfRouter"]

_EPS = 1e-9


class LgfRouter(Router):
    """LGF routing (Algorithm 1)."""

    name = "LGF"

    def __init__(
        self,
        graph: WasnGraph,
        ttl: int | None = None,
        candidate_scope: str = "zone",
    ):
        super().__init__(graph, ttl)
        if candidate_scope not in ("zone", "quadrant"):
            raise ValueError(
                f"unknown candidate_scope {candidate_scope!r}; "
                "expected 'zone' or 'quadrant'"
            )
        self._scope = candidate_scope

    # -- candidate selection (steps 2-3) --------------------------------

    def _zone_candidates(
        self, u: NodeId, pu: Point, pd: Point
    ) -> list[NodeId]:
        """``Z_k(u, d) ∩ N(u)`` (or ``Q_k(u) ∩ N(u)`` in quadrant scope).

        Quadrant scope additionally requires candidates to be strictly
        closer to the destination: the quadrant extends beyond ``d``,
        and without the improvement requirement a packet could
        overshoot and oscillate (the request zone needs no such guard —
        every point of it is strictly closer than ``u``).
        """
        graph = self.graph
        if self._scope == "zone":
            zone = request_zone(pu, pd)
            return [
                v
                for v in graph.neighbors(u)
                if zone.contains(graph.position(v))
            ]
        k = zone_type_of(pu, pd)
        du = pu.distance_to(pd)
        return [
            v
            for v in graph.neighbors(u)
            if forwarding_zone_contains(pu, k, graph.position(v))
            and graph.position(v).distance_to(pd) < du - _EPS
        ]

    def _select_forward(
        self, u: NodeId, pu: Point, pd: Point
    ) -> NodeId | None:
        """Greedy pick among zone candidates, ``None`` at a local minimum."""
        candidates = self._zone_candidates(u, pu, pd)
        if not candidates:
            return None
        graph = self.graph
        return min(
            candidates,
            key=lambda v: (graph.position(v).distance_to(pd), v),
        )

    # -- main loop -------------------------------------------------------

    def _run(self, trace: PacketTrace, destination: NodeId) -> str | None:
        graph = self.graph
        pd = graph.position(destination)
        while not trace.exhausted():
            u = trace.current
            if u == destination:
                return None
            if graph.has_edge(u, destination):
                trace.advance(destination, Phase.GREEDY)
                return None
            pu = graph.position(u)
            pick = self._select_forward(u, pu, pd)
            if pick is not None:
                trace.advance(pick, Phase.GREEDY)
                continue
            trace.perimeter_entries += 1
            failure = self._tried_set_perimeter(trace, destination)
            if failure is not None:
                return failure
            if trace.current == destination:
                return None
        return "ttl_exceeded"

    # -- perimeter phase (step 4) ----------------------------------------

    def _tried_set_perimeter(
        self, trace: PacketTrace, destination: NodeId
    ) -> str | None:
        """Right-hand-rule sweep over untried neighbours, with backtracking.

        Exits (returning ``None``) at the first node strictly closer to
        the destination than the stuck node; reports ``"unreachable"``
        after exhausting every reachable untried node.
        """
        graph = self.graph
        pd = graph.position(destination)
        stuck_dist = graph.position(trace.current).distance_to(pd)
        tried: set[NodeId] = {trace.current}
        stack: list[NodeId] = [trace.current]
        while not trace.exhausted():
            u = trace.current
            pu = graph.position(u)
            if pu.distance_to(pd) < stuck_dist - _EPS:
                return None  # resume greedy phase
            if graph.has_edge(u, destination):
                trace.advance(destination, Phase.PERIMETER)
                return None
            untried = [v for v in graph.neighbors(u) if v not in tried]
            if untried:
                pick = first_hit_ccw(
                    pu, angle_of(pu, pd), untried, graph.position
                )
                tried.add(pick)
                stack.append(pick)
                trace.advance(pick, Phase.PERIMETER)
                continue
            # Dead end: backtrack along the phase's own path.
            stack.pop()
            if not stack:
                return "unreachable"
            trace.advance(stack[-1], Phase.PERIMETER)
        return "ttl_exceeded"
