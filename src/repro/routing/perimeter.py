"""Face-routing perimeter recovery (Bose-Morin-Stojmenovic / GPSR).

The paper's perimeter phases cite "the 'right-hand rule' policy [2]" —
reference [2] being the face-routing paper (Routing with Guaranteed
Delivery in Ad Hoc Wireless Networks).  This module implements that
traversal once, parameterised by the rotation hand so that:

* GF uses it with the right hand (classic GPSR perimeter mode);
* SLGF2 uses it with the hand chosen by the either-hand rule and
  sticks with it for the phase (Algorithm 3 step 5).

Mechanics (mirrored exactly for the left hand):

* the walk runs on a planarized subgraph (Gabriel/RNG adjacency);
* the first edge is the first one swept from the ray toward the
  destination; afterwards the sweep starts from the edge back to the
  previous node (exclusive, so the packet never u-turns needlessly);
* an edge crossing the stuck-node-to-destination segment closer to the
  destination than any previous crossing triggers a face change (the
  sweep rotates past it);
* traversing the first edge of the current face a second time means
  the destination is unreachable (the GPSR drop rule);
* the phase exits at the first node strictly closer to the destination
  than the stuck node.
"""

from __future__ import annotations

from repro.core.regions import Hand
from repro.geometry.angles import angle_of
from repro.geometry.segment import proper_intersection_point
from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.network.planar import (
    gabriel_graph,
    relative_neighborhood_graph,
)
from repro.routing.base import PacketTrace, Phase
from repro.routing.handrule import hand_sweep

__all__ = ["PlanarizationCache", "face_recovery"]

_EPS = 1e-9

_PLANARIZATIONS = {
    "gabriel": gabriel_graph,
    "rng": relative_neighborhood_graph,
}


class PlanarizationCache:
    """Lazily computed planar adjacency, invalidated on topology deltas.

    The planarized subgraph the face walks run on is a pure function
    of the network graph, but an O(E * k) one — too expensive to
    recompute per delta under churn, and wasted entirely on routes
    that never leave greedy mode.  This cache computes it on first
    use, serves ``cache[u]`` lookups to :func:`face_recovery`
    unchanged (it quacks like the plain adjacency dict), and
    :meth:`rebind` drops it when the owning router learns of a
    topology change — the next perimeter entry rebuilds against the
    current graph.

    The computation itself lives on the graph's columnar core
    (:meth:`~repro.network.core.TopologyCore.planar_adjacency`), so
    every cache over the same core — GF's and SLGF2's, say — shares
    one CSR-mask construction instead of planarizing separately.
    Graphs without a core (hand-built, unsorted adjacency rows) fall
    back to the dict-based reference construction.
    """

    def __init__(self, graph: WasnGraph, kind: str = "gabriel"):
        if kind not in _PLANARIZATIONS:
            raise ValueError(
                f"unknown planarization {kind!r}; "
                f"expected one of {sorted(_PLANARIZATIONS)}"
            )
        self._graph = graph
        self._kind = kind
        self._adjacency: dict[NodeId, tuple[NodeId, ...]] | None = None

    @property
    def kind(self) -> str:
        """Which planar construction this cache computes."""
        return self._kind

    @property
    def adjacency(self) -> dict[NodeId, tuple[NodeId, ...]]:
        """The planar adjacency, computed on first access."""
        if self._adjacency is None:
            try:
                self._adjacency = self._graph.core.planar_adjacency(
                    self._kind
                )
            except ValueError:
                # No columnar core for this graph: reference path.
                self._adjacency = _PLANARIZATIONS[self._kind](self._graph)
        return self._adjacency

    def __getitem__(self, node: NodeId) -> tuple[NodeId, ...]:
        return self.adjacency[node]

    def rebind(self, graph: WasnGraph) -> None:
        """Point at an updated graph, discarding the cached adjacency."""
        self._graph = graph
        self._adjacency = None


def face_recovery(
    trace: PacketTrace,
    graph: WasnGraph,
    planar: "dict[NodeId, tuple[NodeId, ...]] | PlanarizationCache",
    destination: NodeId,
    hand: Hand = Hand.RIGHT,
) -> str | None:
    """Walk faces of the planar subgraph until closer than the stuck node.

    Returns ``None`` when greedy forwarding may resume (or the packet
    arrived); otherwise a failure reason (``"unreachable"``,
    ``"ttl_exceeded"``, ``"isolated_in_planar_graph"``).
    """
    pd = graph.position(destination)
    stuck = trace.current
    stuck_pos = graph.position(stuck)
    exit_dist = stuck_pos.distance_to(pd)

    first_edge: tuple[NodeId, NodeId] | None = None
    best_cross = exit_dist
    while not trace.exhausted():
        u = trace.current
        pu = graph.position(u)
        if u != stuck and pu.distance_to(pd) < exit_dist - _EPS:
            return None  # resume forwarding
        if graph.has_edge(u, destination):
            trace.advance(destination, Phase.PERIMETER)
            return None
        candidates = planar[u]
        if not candidates:
            return "isolated_in_planar_graph"
        prev = trace.previous
        if first_edge is None or prev is None:
            reference = angle_of(pu, pd)
            exclusive = False
        else:
            reference = angle_of(pu, graph.position(prev))
            exclusive = True
        nxt = hand_sweep(
            hand, pu, reference, candidates, graph.position, exclusive
        )
        if nxt is None:
            return "isolated_in_planar_graph"
        # Face-change test: rotate past edges crossing the
        # stuck->destination segment closer to the destination.
        changed_face = False
        for _ in range(len(candidates)):
            crossing = proper_intersection_point(
                pu, graph.position(nxt), stuck_pos, pd
            )
            if crossing is None:
                break
            cross_dist = crossing.distance_to(pd)
            if cross_dist >= best_cross - _EPS:
                break
            best_cross = cross_dist
            changed_face = True
            rotated = hand_sweep(
                hand,
                pu,
                angle_of(pu, graph.position(nxt)),
                candidates,
                graph.position,
                exclusive=True,
            )
            if rotated is None:
                break
            nxt = rotated
        edge = (u, nxt)
        if changed_face or first_edge is None:
            first_edge = edge
        elif edge == first_edge:
            # Traversing the first edge of the face a second time: the
            # destination is unreachable (GPSR drop rule).
            return "unreachable"
        trace.advance(nxt, Phase.PERIMETER)
    return "ttl_exceeded"
