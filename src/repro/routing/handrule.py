"""Hand-rule sweeps shared by every perimeter/backup phase.

The paper describes all recovery traversals as ray rotations: the
right-hand rule "rotat[es] the ray ud counter-clockwise until the first
untried node v ∈ N(u) is hit" (Algorithm 1), and SLGF2 generalises to
the **either-hand rule** — pick the rotation direction that matches the
destination's side of an unsafe area and then *stick with it*
(Algorithm 3).  This module is the single place that maps a
:class:`~repro.core.regions.Hand` onto the geometric sweep.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.regions import Hand
from repro.geometry import Point
from repro.geometry.angles import first_hit_ccw, first_hit_cw

__all__ = ["hand_sweep"]


def hand_sweep(
    hand: Hand,
    origin: Point,
    reference_angle: float,
    candidates: Iterable[int],
    position_of: Callable[[int], Point],
    exclusive: bool = False,
) -> int | None:
    """First candidate hit when rotating a ray in ``hand``'s direction.

    ``Hand.RIGHT`` rotates counter-clockwise (the classic right-hand
    rule), ``Hand.LEFT`` clockwise.  ``exclusive`` skips candidates
    exactly on the reference ray — used when sweeping away from the
    previous hop so a packet never bounces straight back unless no
    other option exists.
    """
    sweep = first_hit_ccw if hand is Hand.RIGHT else first_hit_cw
    return sweep(origin, reference_angle, candidates, position_of, exclusive)
