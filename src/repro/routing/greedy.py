"""GF: geographic greedy forwarding with perimeter recovery.

The baseline of Section 5.  Greedy mode forwards to the neighbour
closest to the destination; at a local minimum the packet enters a
perimeter phase.  Two recovery strategies are provided:

* ``"face"`` — GPSR/GFG right-hand-rule face routing on a planarized
  subgraph (Gabriel graph by default), with the standard face-change
  test on the stuck-node-to-destination line and the traversed-first-
  edge-twice drop rule (destination unreachable);
* ``"boundhole"`` — follow a precomputed hole boundary (the paper's
  Section 5 gives GF routings "boundary information [5]", i.e.
  BOUNDHOLE, Fang et al.).  The boundary object is produced by
  :mod:`repro.protocols.boundhole`; nodes not on any boundary fall back
  to face routing.

Both exit recovery as soon as the packet reaches a node closer to the
destination than the point where it got stuck.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.geometry import Point
from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.routing.base import PacketTrace, Phase, Router
from repro.routing.perimeter import PlanarizationCache, face_recovery

__all__ = ["GreedyRouter", "HoleBoundaries"]

_EPS = 1e-9


class HoleBoundaries(Protocol):
    """Boundary information in the BOUNDHOLE sense (paper ref [5])."""

    def boundary_of(self, node: NodeId) -> tuple[NodeId, ...] | None:
        """The boundary cycle through ``node``, or ``None``."""
        ...


class GreedyRouter(Router):
    """GF routing: greedy forwarding + perimeter recovery."""

    name = "GF"

    def __init__(
        self,
        graph: WasnGraph,
        ttl: int | None = None,
        planarization: str = "gabriel",
        recovery: str = "face",
        hole_boundaries: HoleBoundaries | None = None,
    ):
        super().__init__(graph, ttl)
        try:
            self._planar = PlanarizationCache(graph, planarization)
        except ValueError:
            raise ValueError(
                f"unknown planarization {planarization!r}; "
                "expected 'gabriel' or 'rng'"
            ) from None
        if recovery not in ("face", "boundhole"):
            raise ValueError(
                f"unknown recovery {recovery!r}; expected 'face' or 'boundhole'"
            )
        if recovery == "boundhole" and hole_boundaries is None:
            raise ValueError("boundhole recovery needs hole_boundaries")
        self._recovery = recovery
        self._boundaries = hole_boundaries

    def _on_topology_change(self, delta) -> None:
        """Drop the planarization; re-derive boundaries on demand.

        Both are pure functions of the graph, so lazily rebuilding
        them on the next perimeter entry restores exactly the state a
        fresh router would compute — nothing survives a rebind.
        """
        self._planar.rebind(self.graph)
        if self._recovery == "boundhole":
            self._boundaries = None

    def _hole_boundaries(self) -> HoleBoundaries:
        """Current boundary information, rebuilt after a rebind.

        Construction-time boundaries are typically the prepared
        network's (BOUNDHOLE already ran); after a topology change the
        router re-runs the protocol on its own, first time the packet
        actually needs a boundary walk.
        """
        if self._boundaries is None:
            # Local import: the protocols layer sits beside routing and
            # importing it at module scope would tangle the two.
            from repro.protocols.boundhole import build_hole_boundaries

            self._boundaries = build_hole_boundaries(self.graph)
        return self._boundaries

    # ------------------------------------------------------------------

    def _run(self, trace: PacketTrace, destination: NodeId) -> str | None:
        graph = self.graph
        pd = graph.position(destination)
        while not trace.exhausted():
            u = trace.current
            if u == destination:
                return None
            if graph.has_edge(u, destination):
                trace.advance(destination, Phase.GREEDY)
                return None
            pu = graph.position(u)
            best = self._greedy_step(u, pu, pd)
            if best is not None:
                trace.advance(best, Phase.GREEDY)
                continue
            # Local minimum: recover.
            trace.perimeter_entries += 1
            if self._recovery == "boundhole":
                failure = self._boundhole_recovery(trace, destination)
            else:
                failure = face_recovery(
                    trace, graph, self._planar, destination
                )
            if failure is not None:
                return failure
            if trace.current == destination:
                return None
        return "ttl_exceeded"

    def _greedy_step(self, u: NodeId, pu: Point, pd: Point) -> NodeId | None:
        """The neighbour strictly closest to the destination, if any."""
        graph = self.graph
        du = pu.distance_to(pd)
        best: NodeId | None = None
        best_dist = du - _EPS
        for v in graph.neighbors(u):
            dv = graph.position(v).distance_to(pd)
            if dv < best_dist:
                best = v
                best_dist = dv
        return best

    # ------------------------------------------------------------------
    # BOUNDHOLE boundary recovery
    # ------------------------------------------------------------------

    def _boundhole_recovery(
        self, trace: PacketTrace, destination: NodeId
    ) -> str | None:
        """Walk the precomputed hole boundary until closer than stuck.

        The boundary is a cycle of nodes enclosing the hole that caused
        the local minimum (BOUNDHOLE's output).  The packet walks it in
        the direction whose first step loses less distance, and exits
        on the first node closer to the destination than the stuck
        node.  If the stuck node is on no boundary (e.g. it only got
        stuck because of the interest-area edge), face recovery is used
        instead.
        """
        graph = self.graph
        pd = graph.position(destination)
        stuck = trace.current
        exit_dist = graph.position(stuck).distance_to(pd)
        cycle = self._hole_boundaries().boundary_of(stuck)
        if cycle is None or len(cycle) < 2:
            return face_recovery(trace, graph, self._planar, destination)

        index = cycle.index(stuck)
        forward = cycle[index + 1 :] + cycle[:index]
        backward = tuple(reversed(cycle[:index])) + tuple(
            reversed(cycle[index + 1 :])
        )
        # Pick the direction that gets closer to the destination sooner.
        def first_gain(order: tuple[NodeId, ...]) -> float:
            return (
                graph.position(order[0]).distance_to(pd)
                if order
                else math.inf
            )

        walk = forward if first_gain(forward) <= first_gain(backward) else backward
        for node in walk:
            if trace.exhausted():
                return "ttl_exceeded"
            if not graph.has_edge(trace.current, node):
                # Boundary edges are graph edges by construction; a gap
                # means the boundary is stale (e.g. node failures).
                return face_recovery(trace, graph, self._planar, destination)
            trace.advance(node, Phase.PERIMETER)
            if graph.has_edge(node, destination):
                trace.advance(destination, Phase.PERIMETER)
                return None
            if graph.position(node).distance_to(pd) < exit_dist - _EPS:
                return None  # resume greedy
        # Walked the whole boundary without getting closer.
        return "unreachable"
