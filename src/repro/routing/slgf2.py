"""SLGF2: the paper's routing algorithm (Algorithm 3, Section 4).

The phase ladder, "in the following order":

1. **Safe forwarding** — forward to a request-zone candidate that is
   safe for its own request zone toward ``d`` (step 2).
2. **Either-hand superseding rule** (step 3) — among candidates,
   prefer ones *not* in the forbidden region of any known unsafe area
   while the destination sits in the critical region.
3. **Backup path forwarding** (step 4) — when safe forwarding is
   unavailable and the unsafe area ahead is *large*, forward along
   other-type safe nodes chosen by the either-hand rule, sticking with
   the chosen hand, until safe forwarding resumes.  This routes
   *around* the unsafe area instead of entering it and triggering a
   perimeter phase.
4. **Perimeter routing** (step 5) — last resort, sticking with one
   hand.  Three mechanics are provided via ``perimeter_mode``:

   * ``"face"`` (default) — either-hand face routing on the Gabriel
     subgraph (the paper's perimeter policy cites the face-routing
     paper, its ref [2]); this is what realises contribution (c)'s
     promise of "avoid[ing] many unnecessary trials";
   * ``"dfs"`` — the untried-node ray sweep with backtracking that LGF
     and SLGF use (Algorithm 1 step 4), for like-for-like ablations;
   * ``"dfs-bounded"`` — the DFS confined to the union of estimated
     unsafe rectangles (the literal reading of contribution (c)).
     Measured effect is *negative* under DFS mechanics — the bound
     overrides the hand sweep's angular order (see the ablation bench
     and EXPERIMENTS.md) — which is why it is not the default.
     ``bound_escapes`` counts fallbacks when the bound starves the
     sweep.

Engineering decisions layered on the paper's text (all documented in
DESIGN.md, all surfaced as constructor flags for the ablation benches):

* **Safe-arrival gate.**  "When the destination d is type-k' safe
  (k' = (k+2) Mod 4), a straightforward path is achieved" — and when
  ``d`` is *not* type-k' safe no safe-forwarding path can complete the
  route, so the router behaves like SLGF with an unsafe destination
  (greedy + perimeter, "without the safety information"), still
  steering with the superseding filter.
* **Size-aware entry.**  Contribution (b) avoids "enter[ing] an unsafe
  area, which will directly lead to a perimeter routing phase" — but
  when the estimated rectangle ahead is tiny, entering and recovering
  is cheaper than orbiting.  The router enters when the predicted
  block's rectangle diagonal is below ``enter_threshold_factor`` radii
  (or contains the destination), and detours otherwise.  The rectangle
  is exactly the paper's own size estimate: "the number of detours is
  in proportion[] [to] the perimeter of the unsafe area".
* **Backup episode cap.**  For the same reason, one backup episode is
  capped at a multiple of (estimated area perimeter / radius) hops;
  beyond that the packet stops orbiting and enters (or falls to the
  perimeter phase).
* **Per-packet backup memory.**  Safety statuses are quadrant-based
  while forwarding is zone-limited, so "safe forwarding resumed" can
  be a false escape leading straight back into the same dead end; the
  backup visited-set persists for the packet's lifetime to force
  progress.
"""

from __future__ import annotations

import math

from repro.core.model import InformationModel
from repro.core.regions import Hand, RegionSplit
from repro.core.zones import (
    ZONE_TYPES,
    forwarding_zone_contains,
    opposite_zone_type,
    request_zone,
    zone_type_of,
)
from repro.geometry import Point, Rect
from repro.geometry.angles import angle_of
from repro.network.node import NodeId
from repro.routing.base import PacketTrace, Phase, Router
from repro.routing.handrule import hand_sweep
from repro.routing.perimeter import PlanarizationCache, face_recovery

__all__ = ["Slgf2Router"]

_EPS = 1e-9


class Slgf2Router(Router):
    """SLGF2 routing (Algorithm 3)."""

    name = "SLGF2"

    def __init__(
        self,
        model: InformationModel,
        ttl: int | None = None,
        use_superseding: bool = True,
        use_backup: bool = True,
        perimeter_mode: str = "face",
        bound_margin_factor: float = 1.0,
        enter_threshold_factor: float = 3.0,
        backup_cap_factor: float = 2.0,
        candidate_scope: str = "quadrant",
        perimeter_hand: str = "right",
        adaptive_greedy: bool = False,
    ):
        super().__init__(model.graph, ttl)
        if candidate_scope not in ("zone", "quadrant"):
            raise ValueError(
                f"unknown candidate_scope {candidate_scope!r}; "
                "expected 'zone' or 'quadrant'"
            )
        if perimeter_mode not in ("face", "dfs", "dfs-bounded"):
            raise ValueError(
                f"unknown perimeter_mode {perimeter_mode!r}; "
                "expected 'face', 'dfs' or 'dfs-bounded'"
            )
        if perimeter_hand not in ("right", "either"):
            raise ValueError(
                f"unknown perimeter_hand {perimeter_hand!r}; "
                "expected 'right' or 'either'"
            )
        self._perimeter_hand = perimeter_hand
        self._adaptive_greedy = adaptive_greedy
        self._scope = candidate_scope
        if bound_margin_factor < 0:
            raise ValueError("bound_margin_factor must be non-negative")
        if enter_threshold_factor < 0:
            raise ValueError("enter_threshold_factor must be non-negative")
        if backup_cap_factor <= 0:
            raise ValueError("backup_cap_factor must be positive")
        self._model = model
        self._model_stale = False
        self._use_superseding = use_superseding
        self._use_backup = use_backup
        self._perimeter_mode = perimeter_mode
        self._bound_margin_factor = bound_margin_factor
        self._enter_threshold_factor = enter_threshold_factor
        self._bound_margin = bound_margin_factor * model.graph.radius
        self._enter_threshold = enter_threshold_factor * model.graph.radius
        self._backup_cap_factor = backup_cap_factor
        self._planar = (
            PlanarizationCache(model.graph, "gabriel")
            if perimeter_mode == "face"
            else None
        )

    @property
    def model(self) -> InformationModel:
        """The information model this router consults.

        Rebuilt lazily after a :meth:`~repro.routing.base.Router.rebind`
        (the periodic-beaconing re-construction), preserving the
        original model's construction options
        (:meth:`InformationModel.rebuild`) so the rebound router is
        indistinguishable from a freshly built one.
        """
        if self._model_stale:
            self._model = self._model.rebuild(self.graph)
            self._model_stale = False
        return self._model

    def _on_topology_change(self, delta) -> None:
        """Safety/shape information and the planarization go stale.

        The radius-derived thresholds are re-derived too — a rebind
        normally keeps the radius (a network's communication range is
        a hardware constant), but the contract is rebind == fresh
        router, whatever graph arrives.
        """
        self._model_stale = True
        radius = self.graph.radius
        self._bound_margin = self._bound_margin_factor * radius
        self._enter_threshold = self._enter_threshold_factor * radius
        if self._planar is not None:
            self._planar.rebind(self.graph)

    # ------------------------------------------------------------------
    # Candidate machinery
    # ------------------------------------------------------------------

    def _plain_zone_candidates(
        self, u: NodeId, pu: Point, pd: Point
    ) -> list[NodeId]:
        """All forwarding candidates at ``u``.

        ``"zone"`` scope: ``Z_k(u, d) ∩ N(u)`` (Algorithm 1 as
        printed); ``"quadrant"`` scope: strictly-closer neighbours in
        ``Q_k(u)`` (the prose definition of blocking, and the scope
        under which the safety labels are exact — see DESIGN.md).
        """
        graph = self.graph
        if self._scope == "zone":
            zone = request_zone(pu, pd)
            return [
                v
                for v in graph.neighbors(u)
                if zone.contains(graph.position(v))
            ]
        k = zone_type_of(pu, pd)
        du = pu.distance_to(pd)
        candidates = [
            v
            for v in graph.neighbors(u)
            if forwarding_zone_contains(pu, k, graph.position(v))
            and graph.position(v).distance_to(pd) < du - _EPS
        ]
        if not candidates and self._adaptive_greedy:
            # Future-work extension ("increase the routing adaptivity
            # so that fewer perimeter routing phases are needed"):
            # when the forwarding zone is empty, accept *any* strictly
            # closer neighbour before resorting to detour phases.
            candidates = [
                v
                for v in graph.neighbors(u)
                if graph.position(v).distance_to(pd) < du - _EPS
            ]
        return candidates

    def _safe_zone_candidates(
        self, candidates: list[NodeId], pd: Point
    ) -> list[NodeId]:
        """Step 2: candidates safe w.r.t. their own zone toward ``d``."""
        graph = self.graph
        out: list[NodeId] = []
        for v in candidates:
            pv = graph.position(v)
            if pv == pd or self.model.is_safe(v, zone_type_of(pv, pd)):
                out.append(v)
        return out

    def _region_splits_at(self, u: NodeId, pd: Point) -> list[RegionSplit]:
        """Critical/forbidden splits visible from ``u``.

        One split per (unsafe node, type) among ``u`` and its
        neighbours, kept only when the destination lies inside the
        split's forwarding zone (otherwise "the destination is in the
        critical region" cannot hold) and off the divider.
        """
        graph = self.graph
        splits: list[RegionSplit] = []
        for w in (u, *graph.neighbors(u)):
            pw = graph.position(w)
            for zone_type in ZONE_TYPES:
                if self.model.is_safe(w, zone_type):
                    continue
                if not forwarding_zone_contains(pw, zone_type, pd):
                    continue
                split = self.model.region_split(w, zone_type, pd)
                if split is not None and split.destination_side != 0:
                    splits.append(split)
        return splits

    def _prefer_non_forbidden(
        self, candidates: list[NodeId], splits: list[RegionSplit]
    ) -> list[NodeId]:
        """Step 3, the superseding rule: drop forbidden-region candidates.

        A *preference*, not a hard constraint: when every candidate is
        forbidden the original list is returned (a detour beats a
        stall).
        """
        if not self._use_superseding or not splits:
            return candidates
        graph = self.graph
        filtered = [
            v
            for v in candidates
            if not any(
                split.in_forbidden_region(graph.position(v))
                for split in splits
            )
        ]
        return filtered or candidates

    def _greedy_pick(
        self, candidates: list[NodeId], pd: Point
    ) -> NodeId:
        """Deterministic greedy choice: closest to ``d``, ties by id."""
        graph = self.graph
        return min(
            candidates,
            key=lambda v: (graph.position(v).distance_to(pd), v),
        )

    def _is_backup_candidate(self, u: NodeId, pu: Point, v: NodeId) -> bool:
        """Is hopping to ``v`` a safe type-``i`` forwarding for some ``i``?

        True when ``v`` is safe for a quadrant type it occupies
        relative to ``u`` (a node on a quadrant boundary occupies two
        types; being safe in either qualifies).  "The routing from u
        can use the type-i forwarding to approach the edge of that
        type-k unsafe area and then leave away from such an area."
        """
        pv = self.graph.position(v)
        return any(
            forwarding_zone_contains(pu, zone_type, pv)
            and self.model.is_safe(v, zone_type)
            for zone_type in ZONE_TYPES
        )

    def _choose_hand(
        self, splits: list[RegionSplit]
    ) -> Hand:
        """Pick the hand that walks around the unsafe area on d's side.

        Uses the first visible split (deterministic: splits are
        gathered in node-id order); defaults to the right hand when no
        shape information is visible — the paper's base rule.
        """
        for split in splits:
            return split.preferred_hand()
        return Hand.RIGHT

    # ------------------------------------------------------------------
    # Size-aware entry decision
    # ------------------------------------------------------------------

    def _entering_is_cheap(self, v: NodeId, pd: Point) -> bool:
        """Should the packet enter the unsafe area through ``v``?

        ``v`` is an unsafe zone candidate; its estimated rectangle
        ``E_k̄(v)`` measures the blocking area ahead.  Entering is
        cheap when the rectangle is small (recovery after the predicted
        block costs less than orbiting), and *necessary* when the
        destination lies inside the rectangle (no safe path can end
        there anyway).
        """
        pv = self.graph.position(v)
        if pv == pd:
            return True
        rect = self.model.estimated_area(v, zone_type_of(pv, pd))
        if rect is None:
            return True  # no prediction of a block at all
        if rect.contains(pd, tol=_EPS):
            return True
        if rect.is_degenerate(tol=_EPS):
            # The candidate is itself a stuck node with an empty
            # quadrant: its point-rectangle says nothing about the size
            # of the blocking area (it could be the bottom of a deep
            # pocket).  Never treat that as cheap.
            return False
        return rect.diagonal() <= self._enter_threshold

    def _backup_cap(self, u: NodeId) -> int:
        """Episode hop budget: proportional to the estimated perimeter.

        "The number of detours is in proportion[] [to] the perimeter of
        the unsafe area.  Due to the limited size of each unsafe area,
        the length of the routing path can be controlled."
        """
        rects = self.model.known_unsafe_rects(u)
        if not rects:
            return 8
        bound = rects[0]
        for rect in rects[1:]:
            bound = bound.union_bounds(rect)
        hops_around = bound.perimeter / self.graph.radius
        return max(8, math.ceil(self._backup_cap_factor * hops_around))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _run(self, trace: PacketTrace, destination: NodeId) -> str | None:
        graph = self.graph
        pd = graph.position(destination)
        hand: Hand | None = None  # committed hand while in backup mode
        in_backup = False
        backup_budget = 0
        backup_visited: set[NodeId] = set()  # per-packet, see module doc

        while not trace.exhausted():
            u = trace.current
            if u == destination:
                return None
            if graph.has_edge(u, destination):
                trace.advance(
                    destination, Phase.BACKUP if in_backup else Phase.SAFE
                )
                return None
            pu = graph.position(u)
            k = zone_type_of(pu, pd)
            plain = self._plain_zone_candidates(u, pu, pd)
            safe = self._safe_zone_candidates(plain, pd)

            # Steps 2+3: safe forwarding under the superseding rule.
            if safe:
                if in_backup:
                    # "until the forwarding from v to d is safe": leave
                    # backup mode, release the hand commitment.
                    in_backup = False
                    hand = None
                splits = self._region_splits_at(u, pd)
                preferred = self._prefer_non_forbidden(safe, splits)
                trace.advance(self._greedy_pick(preferred, pd), Phase.SAFE)
                continue

            # Safe-arrival gate (see module docstring): an unsafe
            # destination voids the safe-forwarding guarantee, so run
            # SLGF-style greedy + perimeter, superseding filter intact.
            arrival_safe = self.model.is_safe(
                destination, opposite_zone_type(k)
            )

            # Backup triggers on u's own status, as in Section 4:
            # "When u is safe in one of four types but not in the type
            # of its request zone (S_k(u) = 0 ∧ S_i(u) > 0, i ≠ k), the
            # routing from u can use the type-i forwarding."  When
            # S_k(u) = 1 the label promises a continuable forwarding
            # ahead, so a plain greedy hop is the right move even
            # though no *zone-safe* candidate showed up (quadrant-based
            # labels vs zone-limited candidates).  The size heuristic
            # (`_entering_is_cheap`) can additionally allow entering a
            # provably tiny area; it is conservative and never fires on
            # degenerate point-rectangles.
            detour_justified = (
                self._use_backup
                and arrival_safe
                and not self.model.is_safe(u, k)
                and self.model.is_safe_any(u)
                and not (
                    plain
                    and self._entering_is_cheap(
                        self._greedy_pick(plain, pd), pd
                    )
                )
            )
            if plain and not detour_justified:
                splits = self._region_splits_at(u, pd)
                preferred = self._prefer_non_forbidden(plain, splits)
                trace.advance(self._greedy_pick(preferred, pd), Phase.GREEDY)
                continue

            # Step 4: backup path forwarding around a large unsafe area.
            backup: list[NodeId] = []
            if self._use_backup and arrival_safe:
                if in_backup and backup_budget <= 0:
                    # Episode over budget: stop orbiting.  Enter the
                    # area if possible, else fall to perimeter.
                    if plain:
                        splits = self._region_splits_at(u, pd)
                        preferred = self._prefer_non_forbidden(plain, splits)
                        trace.advance(
                            self._greedy_pick(preferred, pd), Phase.GREEDY
                        )
                        in_backup = False
                        hand = None
                        continue
                else:
                    backup = [
                        v
                        for v in graph.neighbors(u)
                        if v not in backup_visited
                        and self._is_backup_candidate(u, pu, v)
                    ]
            if backup:
                if not in_backup:
                    in_backup = True
                    trace.backup_entries += 1
                    backup_budget = self._backup_cap(u)
                    backup_visited.add(u)
                    if hand is None:
                        # In the detour phases the superseding rule *is*
                        # the hand choice: route around the area on the
                        # destination's side (Section 4's "either-hand
                        # rule"), then stick with that hand.
                        hand = self._choose_hand(
                            self._region_splits_at(u, pd)
                        )
                # Sweep anchored on the ray ud (like Algorithm 1's
                # perimeter rule): backup hops hug the destination
                # direction — "approach the edge of the unsafe area" —
                # while the visited-set prevents ping-pong.
                pick = hand_sweep(
                    hand,
                    pu,
                    angle_of(pu, pd),
                    backup,
                    graph.position,
                    exclusive=False,
                )
                if pick is not None:
                    backup_visited.add(pick)
                    backup_budget -= 1
                    trace.advance(pick, Phase.BACKUP)
                    continue
                # All sweep candidates degenerate (coincident points):
                # fall through to the perimeter phase.

            # Step 5: perimeter routing.  The hand: the paper prescribes
            # the either-hand rule here too, but the E-rectangle
            # estimates that drive the hand choice systematically
            # underestimate *large* unsafe areas (the chains only see
            # the near rim), and a mis-chosen hand walks a face the
            # long way around — measured: either-hand costs ~50% extra
            # hops under FA.  Default is therefore the plain right-hand
            # rule; ``perimeter_hand="either"`` restores the paper's
            # letter for the ablation bench.
            in_backup = False
            trace.perimeter_entries += 1
            if self._perimeter_hand == "right":
                peri_hand = Hand.RIGHT
            elif hand is not None:
                peri_hand = hand
            else:
                peri_hand = self._choose_hand(self._region_splits_at(u, pd))
            failure = self._perimeter_phase(trace, destination, peri_hand)
            if failure is not None:
                return failure
            hand = None
            if trace.current == destination:
                return None
        return "ttl_exceeded"

    def _perimeter_phase(
        self, trace: PacketTrace, destination: NodeId, hand: Hand
    ) -> str | None:
        """Dispatch on the configured perimeter mechanics."""
        if self._perimeter_mode == "face":
            assert self._planar is not None
            return face_recovery(
                trace, self.graph, self._planar, destination, hand
            )
        return self._bounded_perimeter_phase(trace, destination, hand)

    # ------------------------------------------------------------------
    # Step 5: bounded perimeter phase
    # ------------------------------------------------------------------

    def _perimeter_bound(self, u: NodeId) -> Rect | None:
        """The rectangle that "covers all four E areas" known at ``u``.

        Union of the estimated unsafe-area rectangles of ``u`` and its
        neighbours, fattened by one bound margin (default: one
        communication radius) so the detour path *around* the area
        stays inside the bound.
        """
        if self._perimeter_mode != "dfs-bounded":
            return None
        rects = self.model.known_unsafe_rects(u)
        if not rects:
            return None
        bound = rects[0]
        for rect in rects[1:]:
            bound = bound.union_bounds(rect)
        return bound.expanded(self._bound_margin)

    def _bounded_perimeter_phase(
        self, trace: PacketTrace, destination: NodeId, hand: Hand
    ) -> str | None:
        """Hand-rule sweep over untried neighbours with backtracking.

        Candidates are confined to the estimated-unsafe-area bound when
        one is known; the phase exits at the first node strictly closer
        to the destination than the entry point (the same recovery exit
        every other router uses, which keeps perimeter entries strictly
        monotone in distance-to-destination and hence terminating).
        """
        graph = self.graph
        pd = graph.position(destination)
        entry = trace.current
        entry_dist = graph.position(entry).distance_to(pd)
        bound = self._perimeter_bound(entry)
        tried: set[NodeId] = {entry}
        stack: list[NodeId] = [entry]
        while not trace.exhausted():
            u = trace.current
            pu = graph.position(u)
            if graph.has_edge(u, destination):
                trace.advance(destination, Phase.PERIMETER)
                return None
            if u != entry and pu.distance_to(pd) < entry_dist - _EPS:
                return None  # recovery complete, resume the ladder
            untried = [v for v in graph.neighbors(u) if v not in tried]
            candidates = untried
            if bound is not None and untried:
                inside = [
                    v for v in untried if bound.contains(graph.position(v))
                ]
                if inside:
                    candidates = inside
                else:
                    trace.bound_escapes += 1
            if candidates:
                # ud-anchored sweep, as in Algorithm 1's perimeter rule;
                # the tried-set provides the "untried" memory.  The
                # superseding rule acts here through the committed hand
                # only — per-candidate forbidden-region filtering would
                # fight the hand discipline and measurably lengthens
                # detours (see the ablation bench).
                pick = hand_sweep(
                    hand,
                    pu,
                    angle_of(pu, pd),
                    candidates,
                    graph.position,
                    exclusive=False,
                )
                if pick is not None:
                    tried.add(pick)
                    stack.append(pick)
                    trace.advance(pick, Phase.PERIMETER)
                    continue
            # Dead end inside the bound: backtrack.
            stack.pop()
            if not stack:
                return "unreachable"
            trace.advance(stack[-1], Phase.PERIMETER)
        return "ttl_exceeded"
