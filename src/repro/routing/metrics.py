"""Routing path metrics.

Section 5 evaluates "the hops and length of routing path"; Section 1
motivates both through energy ("avoids wasting energy in detours") and
interference ("less interference occurs in other transmissions when
fewer nodes are involved").  This module turns a
:class:`~repro.routing.base.RouteResult` into those numbers:

* hop count and Euclidean length come straight off the result;
* transmission energy uses the standard first-order radio model
  (Heinzelman et al.): ``E_tx = E_elec + eps_amp * d^alpha`` per bit
  and hop, ``E_rx = E_elec`` at the receiver;
* the interference footprint counts the distinct nodes that overhear
  at least one transmission — every node within communication range of
  any forwarding node on the path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.routing.base import RouteResult

__all__ = [
    "RadioEnergyModel",
    "interference_footprint",
    "nodes_involved",
    "path_energy",
    "path_is_valid",
]


@dataclass(frozen=True)
class RadioEnergyModel:
    """First-order radio energy model.

    Defaults are the classic WSN literature constants: 50 nJ/bit for
    the electronics, 100 pJ/bit/m^2 for the amplifier, free-space path
    loss exponent 2.  Units are joules per bit and metres.
    """

    electronics_j_per_bit: float = 50e-9
    amplifier_j_per_bit_m: float = 100e-12
    path_loss_exponent: float = 2.0

    def transmit(self, distance: float, bits: int = 1) -> float:
        """Energy to transmit ``bits`` over ``distance`` metres."""
        if distance < 0:
            raise ValueError("distance must be non-negative")
        return bits * (
            self.electronics_j_per_bit
            + self.amplifier_j_per_bit_m * distance**self.path_loss_exponent
        )

    def receive(self, bits: int = 1) -> float:
        """Energy to receive ``bits``."""
        return bits * self.electronics_j_per_bit


def path_energy(
    result: RouteResult,
    graph: WasnGraph,
    bits: int = 1,
    model: RadioEnergyModel | None = None,
) -> float:
    """Total transmit+receive energy of the route, in joules.

    Every hop is one transmission and one reception; detour hops cost
    exactly as much as useful ones, which is why "straightforward"
    paths conserve energy.
    """
    model = model or RadioEnergyModel()
    total = 0.0
    for a, b in zip(result.path, result.path[1:]):
        total += model.transmit(graph.distance(a, b), bits)
        total += model.receive(bits)
    return total


def nodes_involved(result: RouteResult) -> int:
    """Distinct nodes that handled the packet (forwarders + endpoints)."""
    return len(set(result.path))


def interference_footprint(result: RouteResult, graph: WasnGraph) -> int:
    """Distinct nodes that overhear at least one transmission.

    Transmitters are every node of the path except the final receiver;
    each transmission is overheard by every neighbour of the
    transmitter.  The count includes the path nodes themselves.
    """
    affected: set[NodeId] = set(result.path)
    for transmitter in result.path[:-1]:
        affected.update(graph.neighbors(transmitter))
    return len(affected)


def path_is_valid(result: RouteResult, graph: WasnGraph) -> bool:
    """Structural sanity: consecutive path nodes are graph edges and a
    delivered path ends at the destination (used by tests and the
    harness's self-checks)."""
    for a, b in zip(result.path, result.path[1:]):
        if not graph.has_edge(a, b):
            return False
    if result.delivered and (
        not result.path or result.path[-1] != result.destination
    ):
        return False
    if result.path and result.path[0] != result.source:
        return False
    return True
