"""Routing path metrics.

Section 5 evaluates "the hops and length of routing path"; Section 1
motivates both through energy ("avoids wasting energy in detours") and
interference ("less interference occurs in other transmissions when
fewer nodes are involved").  This module turns a
:class:`~repro.routing.base.RouteResult` into those numbers:

* hop count and Euclidean length come straight off the result;
* transmission energy uses the standard first-order radio model
  (Heinzelman et al.): ``E_tx = E_elec + eps_amp * d^alpha`` per bit
  and hop, ``E_rx = E_elec`` at the receiver;
* the interference footprint counts the distinct nodes that overhear
  at least one transmission — every node within communication range of
  any forwarding node on the path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.channel import Transmission
from repro.network.graph import WasnGraph
from repro.network.node import NodeId
from repro.routing.base import RouteResult

__all__ = [
    "RadioEnergyModel",
    "effective_path_length",
    "interference_footprint",
    "nodes_involved",
    "path_energy",
    "path_is_valid",
    "retransmission_energy",
]


@dataclass(frozen=True)
class RadioEnergyModel:
    """First-order radio energy model.

    Defaults are the classic WSN literature constants: 50 nJ/bit for
    the electronics, 100 pJ/bit/m^2 for the amplifier, free-space path
    loss exponent 2.  Units are joules per bit and metres.
    """

    electronics_j_per_bit: float = 50e-9
    amplifier_j_per_bit_m: float = 100e-12
    path_loss_exponent: float = 2.0

    def transmit(self, distance: float, bits: int = 1) -> float:
        """Energy to transmit ``bits`` over ``distance`` metres."""
        if distance < 0:
            raise ValueError("distance must be non-negative")
        return bits * (
            self.electronics_j_per_bit
            + self.amplifier_j_per_bit_m * distance**self.path_loss_exponent
        )

    def receive(self, bits: int = 1) -> float:
        """Energy to receive ``bits``."""
        return bits * self.electronics_j_per_bit


def path_energy(
    result: RouteResult,
    graph: WasnGraph,
    bits: int = 1,
    model: RadioEnergyModel | None = None,
) -> float:
    """Total transmit+receive energy of the route, in joules.

    Every hop is one transmission and one reception; detour hops cost
    exactly as much as useful ones, which is why "straightforward"
    paths conserve energy.
    """
    model = model or RadioEnergyModel()
    total = 0.0
    for a, b in zip(result.path, result.path[1:]):
        total += model.transmit(graph.distance(a, b), bits)
        total += model.receive(bits)
    return total


def retransmission_energy(
    result: RouteResult,
    graph: WasnGraph,
    transmission: Transmission,
    bits: int = 1,
    model: RadioEnergyModel | None = None,
    ack_bits: int = 1,
) -> float:
    """Radio energy of a lossy exchange, retransmissions and acks in.

    Stop-and-wait ARQ accounting over the hops the packet actually
    attempted (``transmission.attempts_per_hop``): every attempt —
    acknowledged or lost — costs one payload transmission at the
    sender and one reception at the listening receiver; every *crossed*
    hop additionally costs one ``ack_bits`` acknowledgement back.
    Hops beyond the drop point were never attempted and cost nothing.

    Over a perfect channel (one attempt per hop) this exceeds
    :func:`path_energy` by exactly the ack overhead, which is why the
    two are separate aggregates rather than one flag.
    """
    if transmission.hops_attempted > result.hops:
        raise ValueError(
            f"transmission attempted {transmission.hops_attempted} hops "
            f"but the route only has {result.hops}"
        )
    model = model or RadioEnergyModel()
    total = 0.0
    crossed = transmission.effective_hops
    for index, tries in enumerate(transmission.attempts_per_hop):
        distance = graph.distance(
            result.path[index], result.path[index + 1]
        )
        total += tries * (model.transmit(distance, bits) + model.receive(bits))
        if index < crossed and ack_bits:
            # The acknowledgement travels the reverse link once per
            # successful crossing (lost acks are out of model scope).
            total += model.transmit(distance, ack_bits)
            total += model.receive(ack_bits)
    return total


def effective_path_length(
    result: RouteResult,
    graph: WasnGraph,
    transmission: Transmission,
) -> float:
    """Euclidean length of the hops the packet actually crossed.

    Equals ``result.length`` for a fully crossed route; a packet
    dropped mid-path only counts the distance it covered before dying.
    """
    if transmission.hops_attempted > result.hops:
        raise ValueError(
            f"transmission attempted {transmission.hops_attempted} hops "
            f"but the route only has {result.hops}"
        )
    crossed = transmission.effective_hops
    if transmission.dropped_at is None and crossed == result.hops:
        return result.length
    total = 0.0
    for index in range(crossed):
        total += graph.distance(result.path[index], result.path[index + 1])
    return total


def nodes_involved(result: RouteResult) -> int:
    """Distinct nodes that handled the packet (forwarders + endpoints)."""
    return len(set(result.path))


def interference_footprint(result: RouteResult, graph: WasnGraph) -> int:
    """Distinct nodes that overhear at least one transmission.

    Transmitters are every node of the path except the final receiver;
    each transmission is overheard by every neighbour of the
    transmitter.  The count includes the path nodes themselves.
    """
    affected: set[NodeId] = set(result.path)
    for transmitter in result.path[:-1]:
        affected.update(graph.neighbors(transmitter))
    return len(affected)


def path_is_valid(result: RouteResult, graph: WasnGraph) -> bool:
    """Structural sanity: consecutive path nodes are graph edges and a
    delivered path ends at the destination (used by tests and the
    harness's self-checks)."""
    for a, b in zip(result.path, result.path[1:]):
        if not graph.has_edge(a, b):
            return False
    if result.delivered and (
        not result.path or result.path[-1] != result.destination
    ):
        return False
    if result.path and result.path[0] != result.source:
        return False
    return True
