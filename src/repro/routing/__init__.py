"""The four evaluated routing schemes and their shared machinery.

* :class:`~repro.routing.greedy.GreedyRouter` — GF, greedy forwarding
  with GPSR-style face recovery or BOUNDHOLE boundary recovery;
* :class:`~repro.routing.lgf.LgfRouter` — LGF, Algorithm 1;
* :class:`~repro.routing.slgf.SlgfRouter` — SLGF, the safety-informed
  predecessor (paper ref [7]);
* :class:`~repro.routing.slgf2.Slgf2Router` — SLGF2, Algorithm 3 (the
  paper's contribution).

All share the :class:`~repro.routing.base.Router` interface: construct
once per network, then ``route(source, destination)`` per packet,
yielding a :class:`~repro.routing.base.RouteResult`.
"""

from repro.routing.base import (
    MIN_TTL,
    HopEvent,
    PacketTrace,
    Phase,
    RouteResult,
    Router,
    RoutingError,
)
from repro.routing.greedy import GreedyRouter, HoleBoundaries
from repro.routing.handrule import hand_sweep
from repro.routing.lgf import LgfRouter
from repro.routing.metrics import (
    RadioEnergyModel,
    effective_path_length,
    interference_footprint,
    nodes_involved,
    path_energy,
    path_is_valid,
    retransmission_energy,
)
from repro.routing.slgf import SlgfRouter
from repro.routing.slgf2 import Slgf2Router

__all__ = [
    "GreedyRouter",
    "HoleBoundaries",
    "HopEvent",
    "LgfRouter",
    "MIN_TTL",
    "PacketTrace",
    "Phase",
    "RadioEnergyModel",
    "RouteResult",
    "Router",
    "RoutingError",
    "SlgfRouter",
    "Slgf2Router",
    "effective_path_length",
    "hand_sweep",
    "interference_footprint",
    "nodes_involved",
    "path_energy",
    "path_is_valid",
    "retransmission_energy",
]
