"""SLGF: safety-information-based LGF routing (the paper's ref [7]).

The immediate predecessor of SLGF2 and one of the four evaluated
schemes.  This paper summarises it as: LGF where "a straightforward
path can be achieved if and only if safe nodes are used" — the router
prefers request-zone successors that are *safe with respect to their
own request zone toward the destination*, predicting holes before
walking into them.  When no safe candidate exists it degrades exactly
to LGF: plain greedy within the zone, then the tried-set perimeter
phase ("when a routing is initiated at an unsafe source or has an
unsafe destination, the perimeter routing without the safety
information is adopted", Section 2).

The full SLGF paper (INFOCOM 2008) is not reprinted here; this
reconstruction follows the description in Sections 2-4 and is the
behaviour the evaluation curves need: fewer perimeter entries than
LGF/GF, but more detours than SLGF2 because it lacks shape information
(no either-hand rule, no backup paths, no bounded perimeter).
"""

from __future__ import annotations

from repro.core.model import InformationModel
from repro.core.zones import zone_type_of
from repro.geometry import Point
from repro.network.node import NodeId
from repro.routing.base import PacketTrace, Phase
from repro.routing.lgf import LgfRouter

__all__ = ["SlgfRouter"]


class SlgfRouter(LgfRouter):
    """SLGF routing: LGF + safety-status successor preference."""

    name = "SLGF"

    def __init__(
        self,
        model: InformationModel,
        ttl: int | None = None,
        candidate_scope: str = "zone",
    ):
        super().__init__(model.graph, ttl, candidate_scope)
        self._model = model
        self._model_stale = False

    @property
    def model(self) -> InformationModel:
        """The information model this router consults.

        Rebuilt lazily after a :meth:`~repro.routing.base.Router.rebind`
        — the paper's periodic beaconing re-runs the information
        construction whenever the topology drifts.  The rebuild keeps
        the original model's construction options
        (:meth:`InformationModel.rebuild`), so it restores exactly
        what a fresh construction with the same options would hold.
        """
        if self._model_stale:
            self._model = self._model.rebuild(self.graph)
            self._model_stale = False
        return self._model

    def _on_topology_change(self, delta) -> None:
        """Safety labels go stale with the topology; rebuild on demand."""
        self._model_stale = True

    def _safe_candidates(
        self, candidates: list[NodeId], pd: Point
    ) -> list[NodeId]:
        """Candidates that are safe for *their own* request zone to d.

        The zone type is re-evaluated at the candidate ("k and k-bar
        are not necessarily the same", Section 4): what matters is
        whether the forwarding *from v onward* stays safe.
        """
        graph = self.graph
        model = self.model
        out: list[NodeId] = []
        for v in candidates:
            pv = graph.position(v)
            if pv == pd:
                # Zone type undefined; can only happen for a node at
                # exactly the destination's position — trivially "safe".
                out.append(v)
                continue
            if model.is_safe(v, zone_type_of(pv, pd)):
                out.append(v)
        return out

    def _run(self, trace: PacketTrace, destination: NodeId) -> str | None:
        graph = self.graph
        pd = graph.position(destination)
        while not trace.exhausted():
            u = trace.current
            if u == destination:
                return None
            if graph.has_edge(u, destination):
                trace.advance(destination, Phase.SAFE)
                return None
            pu = graph.position(u)
            candidates = self._zone_candidates(u, pu, pd)
            safe = self._safe_candidates(candidates, pd)
            if safe:
                pick = min(
                    safe,
                    key=lambda v: (graph.position(v).distance_to(pd), v),
                )
                trace.advance(pick, Phase.SAFE)
                continue
            if candidates:
                # No safe successor: advance greedily anyway (this is
                # what walks into the hole and triggers perimeter
                # routing — exactly the weakness SLGF2 fixes).
                pick = min(
                    candidates,
                    key=lambda v: (graph.position(v).distance_to(pd), v),
                )
                trace.advance(pick, Phase.GREEDY)
                continue
            trace.perimeter_entries += 1
            failure = self._tried_set_perimeter(trace, destination)
            if failure is not None:
                return failure
            if trace.current == destination:
                return None
        return "ttl_exceeded"
