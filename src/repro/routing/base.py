"""Router interface, packet bookkeeping and route results.

Every routing scheme in the paper is "presented via [its] forwarding
node selection at an intermediate node" (Section 3): a packet moves hop
by hop, each hop chosen from local state only.  This module owns the
shared mechanics — TTL enforcement, path/phase recording, and the
result record the experiment harness aggregates — so the four routers
contain nothing but their successor-selection logic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = [
    "DEFAULT_TTL_FACTOR",
    "Phase",
    "RouteResult",
    "Router",
    "RoutingError",
]

# TTL defaults: generous enough that no legitimate detour is clipped
# (the paper's worst curves stay well under 2 hops/node), tight enough
# to cut off pathological oscillation.
DEFAULT_TTL_FACTOR = 4.0
_MIN_TTL = 64


class RoutingError(Exception):
    """Misuse of a router (unknown node, source == destination, ...)."""


class Phase:
    """Phase labels attached to every hop of a route.

    String constants instead of an Enum so that results serialise to
    CSV trivially and routers can introduce sub-phases without a
    central registry edit.
    """

    GREEDY = "greedy"  # plain/zone-limited greedy advance
    SAFE = "safe"  # safety-informed greedy advance (SLGF/SLGF2)
    BACKUP = "backup"  # SLGF2 backup-path forwarding
    PERIMETER = "perimeter"  # any recovery/perimeter phase


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one packet.

    ``path`` always starts at the source and records every node the
    packet touched in order (including backtracking re-visits, which
    cost real transmissions and are therefore real hops for every
    metric in the paper).  ``phases`` labels each hop, so
    ``phases[i]`` explains the hop ``path[i] -> path[i+1]``.
    """

    router: str
    source: NodeId
    destination: NodeId
    delivered: bool
    path: tuple[NodeId, ...]
    phases: tuple[str, ...]
    length: float
    perimeter_entries: int = 0
    backup_entries: int = 0
    bound_escapes: int = 0
    failure_reason: str | None = None

    @property
    def hops(self) -> int:
        """Number of transmissions (path edges)."""
        return len(self.path) - 1

    def phase_hops(self) -> dict[str, int]:
        """Hop count per phase label."""
        counts: dict[str, int] = {}
        for phase in self.phases:
            counts[phase] = counts.get(phase, 0) + 1
        return counts

    def __post_init__(self) -> None:
        if len(self.phases) != max(len(self.path) - 1, 0):
            raise ValueError(
                "phases must label exactly the hops of the path"
            )
        if self.delivered and (
            not self.path or self.path[-1] != self.destination
        ):
            raise ValueError("delivered route must end at the destination")


class _PacketTrace:
    """Mutable accumulator used while a packet is in flight."""

    def __init__(self, graph: WasnGraph, source: NodeId, ttl: int):
        self.graph = graph
        self.path: list[NodeId] = [source]
        self.phases: list[str] = []
        self.length = 0.0
        self.ttl = ttl
        self.perimeter_entries = 0
        self.backup_entries = 0
        self.bound_escapes = 0

    @property
    def current(self) -> NodeId:
        return self.path[-1]

    @property
    def previous(self) -> NodeId | None:
        return self.path[-2] if len(self.path) >= 2 else None

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def exhausted(self) -> bool:
        return self.hops >= self.ttl

    def advance(self, node: NodeId, phase: str) -> None:
        """Record one transmission to ``node``."""
        if not self.graph.has_edge(self.current, node):
            raise RoutingError(
                f"illegal hop {self.current} -> {node}: not an edge"
            )
        self.length += self.graph.distance(self.current, node)
        self.path.append(node)
        self.phases.append(phase)


class Router(ABC):
    """Base class for the four routing schemes.

    Subclasses implement :meth:`_run`, advancing the packet trace until
    delivery or failure and returning an optional failure reason.
    """

    #: Short name used in result tables ("GF", "LGF", "SLGF", "SLGF2").
    name: str = "?"

    def __init__(self, graph: WasnGraph, ttl: int | None = None):
        self._graph = graph
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self._ttl = ttl if ttl is not None else max(
            _MIN_TTL, int(DEFAULT_TTL_FACTOR * len(graph))
        )

    @property
    def graph(self) -> WasnGraph:
        """The network this router was built for."""
        return self._graph

    @property
    def ttl(self) -> int:
        """Hop budget per packet."""
        return self._ttl

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        """Route one packet from ``source`` to ``destination``."""
        if source not in self._graph or destination not in self._graph:
            raise RoutingError("source or destination not in graph")
        if source == destination:
            raise RoutingError("source equals destination")
        trace = _PacketTrace(self._graph, source, self._ttl)
        failure = self._run(trace, destination)
        delivered = trace.current == destination and failure is None
        return RouteResult(
            router=self.name,
            source=source,
            destination=destination,
            delivered=delivered,
            path=tuple(trace.path),
            phases=tuple(trace.phases),
            length=trace.length,
            perimeter_entries=trace.perimeter_entries,
            backup_entries=trace.backup_entries,
            bound_escapes=trace.bound_escapes,
            failure_reason=failure,
        )

    @abstractmethod
    def _run(self, trace: _PacketTrace, destination: NodeId) -> str | None:
        """Advance ``trace`` until delivery or failure.

        Returns ``None`` on delivery, otherwise a short failure-reason
        string (e.g. ``"ttl_exceeded"``, ``"perimeter_loop"``).
        """
