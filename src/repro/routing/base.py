"""Router interface, packet bookkeeping and route results.

Every routing scheme in the paper is "presented via [its] forwarding
node selection at an intermediate node" (Section 3): a packet moves hop
by hop, each hop chosen from local state only.  This module owns the
shared mechanics — TTL enforcement, path/phase recording, hop-level
instrumentation and the result record the experiment harness
aggregates — so the four routers contain nothing but their
successor-selection logic.

Instrumentation: :meth:`Router.route` accepts ``on_hop`` and
``on_phase_change`` observers, invoked synchronously from inside the
forwarding loop.  Tracing, energy accounting and path animation attach
through these hooks instead of subclassing a router (see
:mod:`repro.api` for ready-made observers).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.network.graph import WasnGraph
from repro.network.node import NodeId

if TYPE_CHECKING:  # import only for annotations; no runtime dependency
    from repro.network.dynamic import TopologyDelta

__all__ = [
    "DEFAULT_TTL_FACTOR",
    "MIN_TTL",
    "HopEvent",
    "OnHop",
    "OnPhaseChange",
    "PacketTrace",
    "Phase",
    "RouteResult",
    "Router",
    "RoutingError",
]

# TTL defaults: generous enough that no legitimate detour is clipped
# (the paper's worst curves stay well under 2 hops/node), tight enough
# to cut off pathological oscillation.
DEFAULT_TTL_FACTOR = 4.0

#: Floor applied to the *derived* TTL only.  The rule (enforced by
#: :class:`Router`): an explicit ``ttl`` is an exact contract — any
#: positive integer is honoured verbatim, even below this floor; the
#: floor protects only the ``DEFAULT_TTL_FACTOR * len(graph)`` default
#: from being uselessly tight on small graphs.
MIN_TTL = 64


class RoutingError(Exception):
    """Misuse of a router (unknown node, source == destination, ...)."""


class Phase:
    """Phase labels attached to every hop of a route.

    String constants instead of an Enum so that results serialise to
    CSV trivially and routers can introduce sub-phases without a
    central registry edit.
    """

    GREEDY = "greedy"  # plain/zone-limited greedy advance
    SAFE = "safe"  # safety-informed greedy advance (SLGF/SLGF2)
    BACKUP = "backup"  # SLGF2 backup-path forwarding
    PERIMETER = "perimeter"  # any recovery/perimeter phase


@dataclass(frozen=True)
class HopEvent:
    """One transmission, as seen by an ``on_hop`` observer.

    ``index`` is the 0-based hop number: the event for hop ``i``
    describes the transmission ``path[i] -> path[i+1]``.
    """

    index: int
    sender: NodeId
    receiver: NodeId
    phase: str
    distance: float


#: Hop observer: called once per transmission, after it is recorded.
OnHop = Callable[[HopEvent], None]

#: Phase observer: ``(hop_index, previous_phase, new_phase)``, called
#: before the first hop of every new phase (``previous_phase`` is
#: ``None`` on the route's very first hop).
OnPhaseChange = Callable[[int, "str | None", str], None]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one packet.

    ``path`` always starts at the source and records every node the
    packet touched in order (including backtracking re-visits, which
    cost real transmissions and are therefore real hops for every
    metric in the paper).  ``phases`` labels each hop, so
    ``phases[i]`` explains the hop ``path[i] -> path[i+1]``.
    """

    router: str
    source: NodeId
    destination: NodeId
    delivered: bool
    path: tuple[NodeId, ...]
    phases: tuple[str, ...]
    length: float
    perimeter_entries: int = 0
    backup_entries: int = 0
    bound_escapes: int = 0
    failure_reason: str | None = None

    @property
    def hops(self) -> int:
        """Number of transmissions (path edges)."""
        return len(self.path) - 1

    def phase_hops(self) -> dict[str, int]:
        """Hop count per phase label."""
        counts: dict[str, int] = {}
        for phase in self.phases:
            counts[phase] = counts.get(phase, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`).

        Every field is included — phases and ``failure_reason`` too —
        so exports carry the full forwarding story, not just the
        headline numbers.
        """
        return {
            "router": self.router,
            "source": self.source,
            "destination": self.destination,
            "delivered": self.delivered,
            "path": list(self.path),
            "phases": list(self.phases),
            "length": self.length,
            "perimeter_entries": self.perimeter_entries,
            "backup_entries": self.backup_entries,
            "bound_escapes": self.bound_escapes,
            "failure_reason": self.failure_reason,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RouteResult":
        """Rebuild a result from :meth:`to_dict` output.

        Validation in ``__post_init__`` still applies, so a tampered
        document (phases not matching the path, a "delivered" route
        ending elsewhere) is rejected rather than resurrected.
        """
        return cls(
            router=data["router"],
            source=data["source"],
            destination=data["destination"],
            delivered=data["delivered"],
            path=tuple(data["path"]),
            phases=tuple(data["phases"]),
            length=data["length"],
            perimeter_entries=data.get("perimeter_entries", 0),
            backup_entries=data.get("backup_entries", 0),
            bound_escapes=data.get("bound_escapes", 0),
            failure_reason=data.get("failure_reason"),
        )

    def __post_init__(self) -> None:
        if len(self.phases) != max(len(self.path) - 1, 0):
            raise ValueError(
                "phases must label exactly the hops of the path"
            )
        if self.delivered and (
            not self.path or self.path[-1] != self.destination
        ):
            raise ValueError("delivered route must end at the destination")


class PacketTrace:
    """Mutable accumulator used while a packet is in flight.

    Public since 1.1 so instrumentation (observers, custom routers
    outside this package) can read the in-flight state.
    """

    def __init__(
        self,
        graph: WasnGraph,
        source: NodeId,
        ttl: int,
        on_hop: OnHop | None = None,
        on_phase_change: OnPhaseChange | None = None,
    ):
        self.graph = graph
        self.path: list[NodeId] = [source]
        self.phases: list[str] = []
        self.length = 0.0
        self.ttl = ttl
        self.perimeter_entries = 0
        self.backup_entries = 0
        self.bound_escapes = 0
        self._on_hop = on_hop
        self._on_phase_change = on_phase_change

    @property
    def current(self) -> NodeId:
        return self.path[-1]

    @property
    def previous(self) -> NodeId | None:
        return self.path[-2] if len(self.path) >= 2 else None

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def exhausted(self) -> bool:
        return self.hops >= self.ttl

    def advance(self, node: NodeId, phase: str) -> None:
        """Record one transmission to ``node`` (and notify observers)."""
        sender = self.current
        if not self.graph.has_edge(sender, node):
            raise RoutingError(
                f"illegal hop {sender} -> {node}: not an edge"
            )
        distance = self.graph.distance(sender, node)
        index = self.hops  # 0-based index of the hop being recorded
        if self._on_phase_change is not None:
            previous_phase = self.phases[-1] if self.phases else None
            if phase != previous_phase:
                self._on_phase_change(index, previous_phase, phase)
        self.length += distance
        self.path.append(node)
        self.phases.append(phase)
        if self._on_hop is not None:
            self._on_hop(
                HopEvent(
                    index=index,
                    sender=sender,
                    receiver=node,
                    phase=phase,
                    distance=distance,
                )
            )


class Router(ABC):
    """Base class for all routing schemes.

    Subclasses implement :meth:`_run`, advancing the packet trace until
    delivery or failure and returning an optional failure reason.

    TTL rule: an explicit ``ttl`` must be a positive integer and is
    honoured *exactly* as given — including values below
    :data:`MIN_TTL`; a deliberately tight budget is a legitimate
    experiment.  When ``ttl`` is omitted the budget is derived as
    ``DEFAULT_TTL_FACTOR * len(graph)``, floored at :data:`MIN_TTL` so
    small graphs still allow full perimeter walks.
    """

    #: Short name used in result tables ("GF", "LGF", "SLGF", "SLGF2").
    name: str = "?"

    def __init__(self, graph: WasnGraph, ttl: int | None = None):
        self._graph = graph
        self._batch_executor = None  # built lazily by route_batch
        self._numpy_kernel = None  # likewise; False = probed, absent
        if ttl is not None:
            # bool is an int subclass; ttl=True would silently mean 1.
            if isinstance(ttl, bool) or not isinstance(ttl, int):
                raise ValueError(
                    f"ttl must be an integer, got {ttl!r}"
                )
            if ttl <= 0:
                raise ValueError("ttl must be positive")
        self._explicit_ttl = ttl
        self._ttl = (
            ttl
            if ttl is not None
            else max(MIN_TTL, int(DEFAULT_TTL_FACTOR * len(graph)))
        )

    @property
    def graph(self) -> WasnGraph:
        """The network this router is currently bound to."""
        return self._graph

    @property
    def ttl(self) -> int:
        """Hop budget per packet."""
        return self._ttl

    # -- dynamic topologies ---------------------------------------------

    def rebind(
        self, graph: WasnGraph, delta: "TopologyDelta | None" = None
    ) -> None:
        """Point the router at an updated topology.

        The contract: after ``rebind``, routing behaves exactly as a
        freshly constructed router (same options) over ``graph`` — the
        metamorphic suite in ``tests/test_fuzz_routers.py`` pins this
        for every registered scheme.  A derived TTL is re-derived from
        the new size (an explicit one stays an exact contract), and
        subclasses invalidate their topology-derived caches
        (planarizations, safety models, hole boundaries) in
        :meth:`_on_topology_change`; ``delta`` — when the update comes
        from a :class:`~repro.network.dynamic.DynamicTopology` — tells
        them how local the change was.
        """
        self._graph = graph
        self._batch_executor = None  # columns belong to the old graph
        self._numpy_kernel = None
        if self._explicit_ttl is None:
            self._ttl = max(
                MIN_TTL, int(DEFAULT_TTL_FACTOR * len(graph))
            )
        self._on_topology_change(delta)

    def track(self, topology) -> Callable:
        """Subscribe to a ``DynamicTopology``: every delta rebinds.

        After ``router.track(topo)``, each ``topo`` mutation pushes
        ``rebind(topo.graph, delta)`` into this router, so cached
        state can never outlive the topology it was computed from.
        Returns the registered subscriber — pass it to
        ``topology.unsubscribe`` when discarding the router, or the
        topology keeps it (and this router) alive.

        Note the cost model: each delta materialises the topology's
        snapshot (O(n)), which is what makes the rebind cheap-but-live;
        a consumer batching many events between routing calls should
        prefer one ``rebind(topo.graph)`` after the batch.
        """

        def _rebind(delta) -> None:
            self.rebind(topology.graph, delta)

        topology.subscribe(_rebind)
        return _rebind

    def _on_topology_change(self, delta: "TopologyDelta | None") -> None:
        """Invalidate topology-derived caches; default: nothing cached.

        ``delta`` is ``None`` when the caller has no structured diff
        (a wholesale rebind); subclasses must then assume everything
        changed.
        """

    def route(
        self,
        source: NodeId,
        destination: NodeId,
        on_hop: OnHop | None = None,
        on_phase_change: OnPhaseChange | None = None,
    ) -> RouteResult:
        """Route one packet from ``source`` to ``destination``.

        ``on_hop`` / ``on_phase_change`` observers, when given, are
        called synchronously from inside the forwarding loop — they
        see hops in order, as they happen, and must not mutate the
        graph.
        """
        if source not in self._graph or destination not in self._graph:
            raise RoutingError("source or destination not in graph")
        if source == destination:
            raise RoutingError("source equals destination")
        trace = PacketTrace(
            self._graph,
            source,
            self._ttl,
            on_hop=on_hop,
            on_phase_change=on_phase_change,
        )
        failure = self._run(trace, destination)
        delivered = trace.current == destination and failure is None
        return RouteResult(
            router=self.name,
            source=source,
            destination=destination,
            delivered=delivered,
            path=tuple(trace.path),
            phases=tuple(trace.phases),
            length=trace.length,
            perimeter_entries=trace.perimeter_entries,
            backup_entries=trace.backup_entries,
            bound_escapes=trace.bound_escapes,
            failure_reason=failure,
        )

    def route_batch(
        self,
        pairs: "Iterable[tuple[NodeId, NodeId]]",
        backend: str = "auto",
    ) -> list[RouteResult]:
        """Route a batch of (source, destination) pairs, in order.

        Results are exactly those of sequential :meth:`route` calls —
        the per-scheme equivalence suite pins this bit for bit — but
        the four built-in schemes run their successor-selection inner
        loops on the graph's columnar core
        (:mod:`repro.routing.batch`), skipping the per-hop ``Point``
        and dict churn of the object path.  Schemes without a fast
        path (third-party routers, subclasses of the built-ins,
        graphs without a columnar core) fall back to sequential
        ``route`` calls transparently.

        ``backend`` selects the batch implementation:

        * ``"auto"`` (default) — the vectorized numpy kernel when
          numpy is importable and the scheme has a fast path,
          otherwise the scalar executor, otherwise sequential
          :meth:`route`.  Selection is silent: all three produce
          bit-identical results.
        * ``"scalar"`` — never touch numpy (the scalar executor, or
          sequential ``route`` without a fast path).
        * ``"numpy"`` — the vectorized kernel, or an error:
          :class:`~repro._optional.MissingDependencyError` when numpy
          is not importable, :class:`RoutingError` when the scheme has
          no fast path on this graph.

        Batches trade instrumentation for speed: there are no
        ``on_hop``/``on_phase_change`` observers here — use
        :meth:`route` for instrumented packets.
        """
        if backend not in ("auto", "scalar", "numpy"):
            raise ValueError(
                f"unknown backend {backend!r}; "
                "expected 'auto', 'scalar' or 'numpy'"
            )
        executor = self._batch_executor
        if executor is None:
            # Local import: repro.routing.batch imports the concrete
            # router classes, which import this module.
            from repro.routing.batch import executor_for

            executor = executor_for(self)
            # Cache the negative outcome too (as False): probing for
            # a fast path costs an O(E) core check on coreless graphs
            # and must not be repeated per batch.
            self._batch_executor = executor if executor else False
        if backend == "numpy":
            kernel = self._numpy_kernel
            if not kernel:
                from repro._optional import require_numpy
                from repro.routing.batch import numpy_kernel_for

                require_numpy("route_batch(backend='numpy')")
                if not executor:
                    raise RoutingError(
                        "no vectorized fast path for "
                        f"{type(self).__name__} on this graph; "
                        "use backend='scalar' or backend='auto'"
                    )
                kernel = numpy_kernel_for(self, executor)
                self._numpy_kernel = kernel
            return kernel.route_batch(pairs)
        if backend == "auto" and executor:
            kernel = self._numpy_kernel
            if kernel is None:
                from repro.routing.batch import numpy_kernel_for

                kernel = numpy_kernel_for(self, executor)
                self._numpy_kernel = kernel if kernel else False
            if kernel:
                return kernel.route_batch(pairs)
        if not executor:
            return [self.route(s, d) for s, d in pairs]
        route = executor.route
        return [route(s, d) for s, d in pairs]

    @abstractmethod
    def _run(self, trace: PacketTrace, destination: NodeId) -> str | None:
        """Advance ``trace`` until delivery or failure.

        Returns ``None`` on delivery, otherwise a short failure-reason
        string (e.g. ``"ttl_exceeded"``, ``"perimeter_loop"``).
        """
