"""Batched routing executors — the index-based successor-selection fast path.

:meth:`Router.route_batch` routes whole (source, destination) batches
over one :class:`~repro.network.core.TopologyCore`.  The per-scheme
executors in this module run the hot forwarding loops — greedy/safe
advance everywhere, plus LGF/SLGF's tried-set perimeter sweep —
directly on the core's flat columns: neighbour-id tuples, plain-list
coordinate reads, one ``math.hypot`` per surviving candidate.  No
``Point`` objects, no per-hop dict lookups, no ``PacketTrace`` method
dispatch.

Exactness is non-negotiable: ``route_batch`` must return results
bit-identical to sequential :meth:`Router.route` calls (the
equivalence suite pins this per scheme).  Three mechanisms guarantee
it:

* **Conservative squared-distance prefilter.**  Greedy selection
  compares ``hypot`` distances exactly as the object path does; the
  fast loop merely *skips* candidates whose squared distance already
  proves ``hypot`` would lose.  The filter bound carries a relative
  margin of 1e-12 — four orders of magnitude wider than the ~1e-16
  relative error of squaring vs. ``hypot`` — so no candidate that
  could win (or tie) is ever skipped, and every surviving comparison
  uses the same ``math.hypot`` values the legacy code computes.

* **Operation-for-operation replicas.**  Where a phase is fast-pathed
  (the ray-sweep perimeter of Algorithm 1 step 4, the superseding
  splits gate of Algorithm 3 step 3), the replica performs the same
  floating-point operations in the same order — ``atan2``/``fmod``
  normalisation, tie-breaks, epsilon conventions — only on flat
  columns instead of objects.

* **Handover before divergence.**  The moment a scheme would do
  anything the executor does not replicate — GF's face recovery,
  SLGF2's backup/perimeter ladder — it materialises a
  :class:`~repro.routing.base.PacketTrace` seeded with the hops
  routed so far and hands the packet to the scheme's own ``_run``.
  Every scheme's per-packet state is still at its initial value at
  that moment, so the original loop continues exactly as if it had
  routed the prefix itself.

Executors dispatch on the *exact* router type: subclasses that
override selection behaviour fall back to sequential ``route`` calls
rather than inheriting a fast path that no longer matches them.
"""

from __future__ import annotations

import math

from repro._optional import load_numpy
from repro.geometry import Point
from repro.network.node import NodeId
from repro.routing.base import (
    PacketTrace,
    Phase,
    RouteResult,
    Router,
    RoutingError,
)
from repro.routing.greedy import GreedyRouter
from repro.routing.lgf import LgfRouter
from repro.routing.slgf import SlgfRouter
from repro.routing.slgf2 import Slgf2Router

__all__ = ["executor_for", "numpy_kernel_for"]

_EPS = 1e-9  # the routers' successor-selection tolerance (see greedy.py)

# Relative margin of the squared-distance prefilter.  Squaring and
# ``hypot`` each err by ~1 ulp (~1.1e-16 relative); a candidate whose
# squared distance exceeds the bound by 1e-12 relative is therefore
# provably farther than the incumbent, with ~1e4 slack.
_GUARD = 1.0 + 1e-12

_GREEDY = Phase.GREEDY
_SAFE = Phase.SAFE
_PERIMETER = Phase.PERIMETER

_TAU = math.tau


def _zone_type_rel(dx: float, dy: float) -> int:
    """``zone_type_of(v, d)`` from ``dx = xv - xd``, ``dy = yv - yd``.

    Returns 0 for the coincident case the callers treat as trivially
    safe (``zone_type_of`` itself raises there).  The branch order
    mirrors the original's sequential boundary tie-breaking exactly.
    """
    if dx == 0.0 and dy == 0.0:
        return 0
    if dx < 0.0 and dy <= 0.0:
        return 1
    if dy < 0.0:  # dx >= 0 here
        return 2
    if dx > 0.0:  # dy >= 0 here
        return 3
    return 4


def _norm(theta: float) -> float:
    """``normalize_angle`` replica: map onto ``[0, tau)`` bit-for-bit."""
    theta = math.fmod(theta, _TAU)
    if theta < 0.0:
        theta += _TAU
    if theta >= _TAU:
        theta -= _TAU
    return theta


class _Executor:
    """Shared per-batch state and the exact slow-path bridges."""

    def __init__(self, router: Router, core) -> None:
        self.router = router
        self.xs, self.ys = core.coords_by_id()
        self.rows = core.rows_by_id()

    # -- bridges to the object path -------------------------------------

    def _check(self, source: NodeId, destination: NodeId) -> None:
        graph = self.router.graph
        if source not in graph or destination not in graph:
            raise RoutingError("source or destination not in graph")
        if source == destination:
            raise RoutingError("source equals destination")

    def _handover(
        self,
        source: NodeId,
        destination: NodeId,
        path: list[NodeId],
        phases: list[str],
        length: float,
    ) -> RouteResult:
        """Finish the route through the scheme's own ``_run``.

        The trace is seeded with the fast-path prefix; ``_run``
        re-examines the current node from scratch, so the hop the fast
        path declined to take is decided by the original code.
        """
        router = self.router
        trace = PacketTrace(router.graph, source, router.ttl)
        trace.path = path
        trace.phases = phases
        trace.length = length
        failure = router._run(trace, destination)
        delivered = trace.current == destination and failure is None
        return RouteResult(
            router=router.name,
            source=source,
            destination=destination,
            delivered=delivered,
            path=tuple(trace.path),
            phases=tuple(trace.phases),
            length=trace.length,
            perimeter_entries=trace.perimeter_entries,
            backup_entries=trace.backup_entries,
            bound_escapes=trace.bound_escapes,
            failure_reason=failure,
        )

    def _finish(
        self,
        source: NodeId,
        destination: NodeId,
        path: list[NodeId],
        phases: list[str],
        length: float,
        arrived: bool,
        perimeter_entries: int = 0,
        failure: str | None = None,
    ) -> RouteResult:
        if failure is None and not arrived:
            failure = "ttl_exceeded"
        return RouteResult(
            router=self.router.name,
            source=source,
            destination=destination,
            delivered=arrived and failure is None,
            path=tuple(path),
            phases=tuple(phases),
            length=length,
            perimeter_entries=perimeter_entries,
            failure_reason=failure,
        )

    # -- the tried-set perimeter phase (Algorithm 1 step 4) -------------

    def _tried_perimeter(
        self,
        u: NodeId,
        destination: NodeId,
        path: list[NodeId],
        phases: list[str],
        length: float,
        ttl: int,
    ) -> tuple[NodeId, float, str | None, bool]:
        """Exact replica of ``LgfRouter._tried_set_perimeter``.

        Right-hand-rule sweep over untried neighbours with
        backtracking; returns ``(current, length, failure, walking)``
        where ``walking=False`` means the phase ended (resume greedy,
        arrived, or failed) exactly as the object implementation
        would.  Appends to ``path``/``phases`` in place.
        """
        xs = self.xs
        ys = self.ys
        rows = self.rows
        hyp = math.hypot
        atan2 = math.atan2
        xd = xs[destination]
        yd = ys[destination]
        stuck_limit = hyp(xs[u] - xd, ys[u] - yd) - _EPS
        tried = {u}
        stack = [u]
        hops = len(path) - 1
        while hops < ttl:
            xu = xs[u]
            yu = ys[u]
            if hyp(xu - xd, yu - yd) < stuck_limit:
                return u, length, None, False  # resume greedy phase
            row = rows[u]
            if destination in row:
                path.append(destination)
                phases.append(_PERIMETER)
                length += hyp(xu - xd, yu - yd)
                return destination, length, None, False
            # The CCW "first node hit by the ray ud" sweep, with the
            # reference implementation's tie-breaks: smaller CCW
            # offset first, Euclidean distance on exact angle ties,
            # first-seen on full ties.  Candidates coincident with u
            # are skipped (they have no direction).
            ref = _norm(atan2(yd - yu, xd - xu))
            best = -1
            best_off = 0.0
            best_dist = -1.0  # lazily computed, only on angle ties
            saw_untried = False
            for v in row:
                if v in tried:
                    continue
                saw_untried = True
                xv = xs[v]
                yv = ys[v]
                if xv == xu and yv == yu:
                    continue
                off = _norm(_norm(atan2(yv - yu, xv - xu)) - ref)
                if best < 0 or off < best_off:
                    best = v
                    best_off = off
                    best_dist = -1.0
                elif off == best_off:
                    if best_dist < 0.0:
                        best_dist = hyp(xs[best] - xu, ys[best] - yu)
                    dv = hyp(xv - xu, yv - yu)
                    if dv < best_dist:
                        best = v
                        best_off = off
                        best_dist = dv
            if saw_untried:
                if best < 0:
                    # Every untried neighbour coincides with u: the
                    # object path would advance(None) and raise.
                    raise RoutingError(
                        f"illegal hop {u} -> None: not an edge"
                    )
                tried.add(best)
                stack.append(best)
                path.append(best)
                phases.append(_PERIMETER)
                length += hyp(xu - xs[best], yu - ys[best])
                u = best
                hops += 1
                continue
            # Dead end: backtrack along the phase's own path.
            stack.pop()
            if not stack:
                return u, length, "unreachable", False
            prev = stack[-1]
            path.append(prev)
            phases.append(_PERIMETER)
            length += hyp(xu - xs[prev], yu - ys[prev])
            u = prev
            hops += 1
        return u, length, "ttl_exceeded", False


class _GreedyExecutor(_Executor):
    """GF fast path: greedy advance; recovery phases hand over."""

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        self._check(source, destination)
        xs = self.xs
        ys = self.ys
        rows = self.rows
        hyp = math.hypot
        ttl = self.router.ttl
        xd = xs[destination]
        yd = ys[destination]
        path = [source]
        phases: list[str] = []
        length = 0.0
        u = source
        hops = 0
        du = hyp(xs[u] - xd, ys[u] - yd)
        while hops < ttl:
            if u == destination:
                break
            row = rows[u]
            xu = xs[u]
            yu = ys[u]
            if destination in row:
                path.append(destination)
                phases.append(_GREEDY)
                length += hyp(xu - xd, yu - yd)
                u = destination
                hops += 1
                continue
            best = -1
            best_dist = du - _EPS
            cut = best_dist * best_dist * _GUARD
            for v in row:
                dx = xs[v] - xd
                dy = ys[v] - yd
                if dx * dx + dy * dy >= cut:
                    continue
                dv = hyp(dx, dy)
                if dv < best_dist:
                    best = v
                    best_dist = dv
                    cut = dv * dv * _GUARD
            if best < 0:
                # Local minimum: the original recovery machinery owns
                # the rest of the packet (face walk or hole boundary).
                return self._handover(
                    source, destination, path, phases, length
                )
            path.append(best)
            phases.append(_GREEDY)
            length += hyp(xu - xs[best], yu - ys[best])
            u = best
            du = best_dist
            hops += 1
        return self._finish(
            source, destination, path, phases, length, u == destination
        )


class _LgfExecutor(_Executor):
    """LGF fast path: request-zone greedy advance + ray-sweep perimeter."""

    def __init__(self, router: LgfRouter, core) -> None:
        super().__init__(router, core)
        self.zone_scope = router._scope == "zone"

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        self._check(source, destination)
        xs = self.xs
        ys = self.ys
        rows = self.rows
        hyp = math.hypot
        zone_scope = self.zone_scope
        ttl = self.router.ttl
        xd = xs[destination]
        yd = ys[destination]
        path = [source]
        phases: list[str] = []
        length = 0.0
        u = source
        hops = 0
        perimeter_entries = 0
        du = hyp(xs[u] - xd, ys[u] - yd)
        while hops < ttl:
            if u == destination:
                break
            row = rows[u]
            xu = xs[u]
            yu = ys[u]
            if destination in row:
                path.append(destination)
                phases.append(_GREEDY)
                length += hyp(xu - xd, yu - yd)
                u = destination
                hops += 1
                continue
            if xu == xd and yu == yd:
                # Coincident with the destination: zone machinery is
                # degenerate here; let the original code decide.
                return self._handover(
                    source, destination, path, phases, length
                )
            best = -1
            if zone_scope:
                # Z_k(u, d): the closed rectangle with u and d at
                # opposite corners (Rect.from_corners + contains).
                xlo, xhi = (xu, xd) if xu <= xd else (xd, xu)
                ylo, yhi = (yu, yd) if yu <= yd else (yd, yu)
                best_dist = math.inf
                cut = math.inf
                for v in row:
                    xv = xs[v]
                    if xv < xlo or xv > xhi:
                        continue
                    yv = ys[v]
                    if yv < ylo or yv > yhi:
                        continue
                    dx = xv - xd
                    dy = yv - yd
                    if dx * dx + dy * dy >= cut:
                        continue
                    dv = hyp(dx, dy)
                    if dv < best_dist:
                        best = v
                        best_dist = dv
                        cut = dv * dv * _GUARD
            else:
                # Q_k(u) ∩ strictly-closer (quadrant scope).
                ddx = xd - xu
                ddy = yd - yu
                if ddx > 0.0 and ddy >= 0.0:
                    k = 1
                elif ddx <= 0.0 and ddy > 0.0:
                    k = 2
                elif ddx < 0.0 and ddy <= 0.0:
                    k = 3
                else:
                    k = 4
                best_dist = du - _EPS
                cut = best_dist * best_dist * _GUARD
                for v in row:
                    xv = xs[v]
                    yv = ys[v]
                    dx = xv - xu
                    dy = yv - yu
                    if k == 1:
                        if dx < 0.0 or dy < 0.0:
                            continue
                    elif k == 2:
                        if dx > 0.0 or dy < 0.0:
                            continue
                    elif k == 3:
                        if dx > 0.0 or dy > 0.0:
                            continue
                    else:
                        if dx < 0.0 or dy > 0.0:
                            continue
                    if dx == 0.0 and dy == 0.0:
                        continue  # coincident with u: in no zone
                    dx = xv - xd
                    dy = yv - yd
                    if dx * dx + dy * dy >= cut:
                        continue
                    dv = hyp(dx, dy)
                    if dv < best_dist:
                        best = v
                        best_dist = dv
                        cut = dv * dv * _GUARD
            if best < 0:
                # Local minimum: Algorithm 1 step 4.
                perimeter_entries += 1
                u, length, failure, _ = self._tried_perimeter(
                    u, destination, path, phases, length, ttl
                )
                if failure is not None:
                    return self._finish(
                        source,
                        destination,
                        path,
                        phases,
                        length,
                        False,
                        perimeter_entries,
                        failure,
                    )
                if u == destination:
                    break
                hops = len(path) - 1
                du = hyp(xs[u] - xd, ys[u] - yd)
                continue
            path.append(best)
            phases.append(_GREEDY)
            length += hyp(xu - xs[best], yu - ys[best])
            u = best
            du = best_dist
            hops += 1
        return self._finish(
            source,
            destination,
            path,
            phases,
            length,
            u == destination,
            perimeter_entries,
        )


def _statuses_by_id(model, size: int) -> list:
    """Safety tuples indexed by node id (None where no node)."""
    table: list = [None] * size
    for u, status in model.safety.statuses.items():
        table[u] = status
    return table


class _SlgfExecutor(_LgfExecutor):
    """SLGF fast path: safe-preferred zone advance + ray-sweep perimeter."""

    def __init__(self, router: SlgfRouter, core) -> None:
        super().__init__(router, core)
        # Touching .model here rebuilds it if a rebind left it stale,
        # exactly as the first route() after a rebind would.
        self.safety = _statuses_by_id(router.model, len(self.rows))

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        self._check(source, destination)
        xs = self.xs
        ys = self.ys
        rows = self.rows
        safety = self.safety
        hyp = math.hypot
        zone_scope = self.zone_scope
        ttl = self.router.ttl
        xd = xs[destination]
        yd = ys[destination]
        path = [source]
        phases: list[str] = []
        length = 0.0
        u = source
        hops = 0
        perimeter_entries = 0
        du = hyp(xs[u] - xd, ys[u] - yd)
        while hops < ttl:
            if u == destination:
                break
            row = rows[u]
            xu = xs[u]
            yu = ys[u]
            if destination in row:
                path.append(destination)
                phases.append(_SAFE)
                length += hyp(xu - xd, yu - yd)
                u = destination
                hops += 1
                continue
            if xu == xd and yu == yd:
                return self._handover(
                    source, destination, path, phases, length
                )
            if zone_scope:
                xlo, xhi = (xu, xd) if xu <= xd else (xd, xu)
                ylo, yhi = (yu, yd) if yu <= yd else (yd, yu)
                floor = math.inf
            else:
                ddx = xd - xu
                ddy = yd - yu
                if ddx > 0.0 and ddy >= 0.0:
                    k = 1
                elif ddx <= 0.0 and ddy > 0.0:
                    k = 2
                elif ddx < 0.0 and ddy <= 0.0:
                    k = 3
                else:
                    k = 4
                floor = du - _EPS
            best_plain = -1
            plain_dist = floor
            best_safe = -1
            safe_dist = floor
            # The shared prefilter is anchored on the *safe* incumbent:
            # plain_dist <= safe_dist holds throughout (plain updates
            # on every admitted improvement), so nothing at or beyond
            # safe_dist can improve either minimum.
            cut = safe_dist * safe_dist * _GUARD
            for v in row:
                xv = xs[v]
                yv = ys[v]
                if zone_scope:
                    if xv < xlo or xv > xhi or yv < ylo or yv > yhi:
                        continue
                else:
                    dx = xv - xu
                    dy = yv - yu
                    if k == 1:
                        if dx < 0.0 or dy < 0.0:
                            continue
                    elif k == 2:
                        if dx > 0.0 or dy < 0.0:
                            continue
                    elif k == 3:
                        if dx > 0.0 or dy > 0.0:
                            continue
                    else:
                        if dx < 0.0 or dy > 0.0:
                            continue
                    if dx == 0.0 and dy == 0.0:
                        continue
                dx = xv - xd
                dy = yv - yd
                if dx * dx + dy * dy >= cut:
                    continue
                dv = hyp(dx, dy)
                if dv < plain_dist:
                    best_plain = v
                    plain_dist = dv
                if dv < safe_dist:
                    # Safe for v's own request zone toward d (the zone
                    # type is re-evaluated at v, per Section 4); a node
                    # exactly at d's position is trivially safe.
                    kv = _zone_type_rel(dx, dy)
                    if kv == 0 or safety[v][kv - 1]:
                        best_safe = v
                        safe_dist = dv
                        cut = dv * dv * _GUARD
            if best_safe >= 0:
                pick = best_safe
                pick_dist = safe_dist
                phase = _SAFE
            elif best_plain >= 0:
                pick = best_plain
                pick_dist = plain_dist
                phase = _GREEDY
            else:
                perimeter_entries += 1
                u, length, failure, _ = self._tried_perimeter(
                    u, destination, path, phases, length, ttl
                )
                if failure is not None:
                    return self._finish(
                        source,
                        destination,
                        path,
                        phases,
                        length,
                        False,
                        perimeter_entries,
                        failure,
                    )
                if u == destination:
                    break
                hops = len(path) - 1
                du = hyp(xs[u] - xd, ys[u] - yd)
                continue
            path.append(pick)
            phases.append(phase)
            length += hyp(xu - xs[pick], yu - ys[pick])
            u = pick
            du = pick_dist
            hops += 1
        return self._finish(
            source,
            destination,
            path,
            phases,
            length,
            u == destination,
            perimeter_entries,
        )


class _Slgf2Executor(_Executor):
    """SLGF2 fast path: the safe-forwarding rungs of Algorithm 3.

    Handles hops where a safe zone candidate exists (steps 2-3, the
    dominant case), including the superseding rule's split gathering
    over precomputed per-node unsafe types; the first hop that needs
    the detour ladder — unsafe greedy entry, backup paths, perimeter
    routing — hands the packet to the original ``_run`` with all
    per-packet state still at its initial value.
    """

    def __init__(self, router: Slgf2Router, core) -> None:
        super().__init__(router, core)
        self.quadrant_scope = router._scope == "quadrant"
        self.superseding = router._use_superseding
        model = router.model
        self.safety = _statuses_by_id(model, len(self.rows))
        # Unsafe zone types per node id, ascending (usually empty):
        # the splits of the superseding rule can only come from these.
        self.unsafe_types: list[tuple[int, ...]] = [
            ()
            if status is None
            else tuple(t for t in (1, 2, 3, 4) if not status[t - 1])
            for status in self.safety
        ]

    def _splits_at(self, u: NodeId, destination: NodeId):
        """Exact replica of ``Slgf2Router._region_splits_at``.

        Same (node, type) enumeration order — ``u`` first, then its
        neighbours ascending, types ascending — but driven by the
        precomputed unsafe-type tuples, so fully-safe neighbourhood
        members cost one empty-tuple check instead of four model
        calls.
        """
        router = self.router
        xs = self.xs
        ys = self.ys
        unsafe_types = self.unsafe_types
        xd = xs[destination]
        yd = ys[destination]
        splits = []
        model = None
        pd = None
        for w in (u, *self.rows[u]):
            types = unsafe_types[w]
            if not types:
                continue
            xw = xs[w]
            yw = ys[w]
            dx = xd - xw
            dy = yd - yw
            if dx == 0.0 and dy == 0.0:
                continue  # pd == pw: in no forwarding zone
            for t in types:
                if t == 1:
                    if dx < 0.0 or dy < 0.0:
                        continue
                elif t == 2:
                    if dx > 0.0 or dy < 0.0:
                        continue
                elif t == 3:
                    if dx > 0.0 or dy > 0.0:
                        continue
                else:
                    if dx < 0.0 or dy > 0.0:
                        continue
                if model is None:
                    model = router.model
                    pd = router.graph.position(destination)
                split = model.region_split(w, t, pd)
                if split is not None and split.destination_side != 0:
                    splits.append(split)
        return splits

    def _superseded_pick(
        self,
        row,
        xu: float,
        yu: float,
        xd: float,
        yd: float,
        k: int,
        floor: float,
        splits,
    ) -> NodeId:
        """Steps 2+3 with visible splits: exact flat-column replica.

        Rebuilds the *ordered* safe candidate set (the cut-prefiltered
        main scan only tracks the minimum), drops candidates inside
        any split's forbidden region — a preference, not a constraint:
        when every candidate is forbidden the unfiltered set is used —
        and greedy-picks among the survivors, matching
        ``_safe_zone_candidates`` → ``_prefer_non_forbidden`` →
        ``_greedy_pick`` decision for decision.  ``k`` is the zone
        type (0 = rectangle scope).
        """
        xs = self.xs
        ys = self.ys
        safety = self.safety
        hyp = math.hypot
        if k == 0:
            xlo, xhi = (xu, xd) if xu <= xd else (xd, xu)
            ylo, yhi = (yu, yd) if yu <= yd else (yd, yu)
        safe: list[NodeId] = []
        dists: list[float] = []
        for v in row:
            xv = xs[v]
            yv = ys[v]
            if k == 0:
                if xv < xlo or xv > xhi or yv < ylo or yv > yhi:
                    continue
            else:
                dx = xv - xu
                dy = yv - yu
                if k == 1:
                    if dx < 0.0 or dy < 0.0:
                        continue
                elif k == 2:
                    if dx > 0.0 or dy < 0.0:
                        continue
                elif k == 3:
                    if dx > 0.0 or dy > 0.0:
                        continue
                else:
                    if dx < 0.0 or dy > 0.0:
                        continue
                if dx == 0.0 and dy == 0.0:
                    continue
            dx = xv - xd
            dy = yv - yd
            dv = hyp(dx, dy)
            if k != 0 and dv >= floor:
                continue  # quadrant scope: strictly-closer only
            kv = _zone_type_rel(dx, dy)
            if kv == 0 or safety[v][kv - 1]:
                safe.append(v)
                dists.append(dv)
        preferred = [
            i
            for i, v in enumerate(safe)
            if not any(
                split.in_forbidden_region(Point(xs[v], ys[v]))
                for split in splits
            )
        ]
        if not preferred:
            preferred = range(len(safe))
        best = -1
        best_dist = math.inf
        for i in preferred:
            dv = dists[i]
            if dv < best_dist:
                best = safe[i]
                best_dist = dv
        return best

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        self._check(source, destination)
        router = self.router
        xs = self.xs
        ys = self.ys
        rows = self.rows
        safety = self.safety
        unsafe_types = self.unsafe_types
        superseding = self.superseding
        hyp = math.hypot
        quadrant_scope = self.quadrant_scope
        ttl = router.ttl
        xd = xs[destination]
        yd = ys[destination]
        path = [source]
        phases: list[str] = []
        length = 0.0
        u = source
        hops = 0
        du = hyp(xs[u] - xd, ys[u] - yd)
        while hops < ttl:
            if u == destination:
                break
            row = rows[u]
            xu = xs[u]
            yu = ys[u]
            if destination in row:
                path.append(destination)
                phases.append(_SAFE)  # in_backup is False on this path
                length += hyp(xu - xd, yu - yd)
                u = destination
                hops += 1
                continue
            if xu == xd and yu == yd:
                return self._handover(
                    source, destination, path, phases, length
                )
            if quadrant_scope:
                ddx = xd - xu
                ddy = yd - yu
                if ddx > 0.0 and ddy >= 0.0:
                    k = 1
                elif ddx <= 0.0 and ddy > 0.0:
                    k = 2
                elif ddx < 0.0 and ddy <= 0.0:
                    k = 3
                else:
                    k = 4
                floor = du - _EPS
                cut = floor * floor * _GUARD
            else:
                xlo, xhi = (xu, xd) if xu <= xd else (xd, xu)
                ylo, yhi = (yu, yd) if yu <= yd else (yd, yu)
                floor = math.inf
                cut = math.inf
            best_safe = -1
            safe_dist = floor
            needs_splits = superseding and bool(unsafe_types[u])
            for v in row:
                if superseding and unsafe_types[v]:
                    needs_splits = True
                xv = xs[v]
                yv = ys[v]
                if quadrant_scope:
                    dx = xv - xu
                    dy = yv - yu
                    if k == 1:
                        if dx < 0.0 or dy < 0.0:
                            continue
                    elif k == 2:
                        if dx > 0.0 or dy < 0.0:
                            continue
                    elif k == 3:
                        if dx > 0.0 or dy > 0.0:
                            continue
                    else:
                        if dx < 0.0 or dy > 0.0:
                            continue
                    if dx == 0.0 and dy == 0.0:
                        continue
                else:
                    if xv < xlo or xv > xhi or yv < ylo or yv > yhi:
                        continue
                dx = xv - xd
                dy = yv - yd
                if dx * dx + dy * dy >= cut:
                    continue
                dv = hyp(dx, dy)
                if dv < safe_dist:
                    kv = _zone_type_rel(dx, dy)
                    if kv == 0 or safety[v][kv - 1]:
                        best_safe = v
                        safe_dist = dv
                        cut = dv * dv * _GUARD
            if best_safe < 0:
                # No safe zone successor (or, under adaptive greedy, a
                # candidate set this loop does not model): steps 3-5
                # belong to the original ladder.
                return self._handover(
                    source, destination, path, phases, length
                )
            pick = best_safe
            if needs_splits:
                splits = self._splits_at(u, destination)
                if splits:
                    # Splits visible: apply the paper's superseding
                    # rule (step 3) over the full ordered safe set.
                    pick = self._superseded_pick(
                        row,
                        xu,
                        yu,
                        xd,
                        yd,
                        k if quadrant_scope else 0,
                        floor,
                        splits,
                    )
            path.append(pick)
            phases.append(_SAFE)
            length += hyp(xu - xs[pick], yu - ys[pick])
            u = pick
            du = hyp(xs[u] - xd, ys[u] - yd)
            hops += 1
        return self._finish(
            source, destination, path, phases, length, u == destination
        )


_BUILDERS = {
    GreedyRouter: _GreedyExecutor,
    LgfRouter: _LgfExecutor,
    SlgfRouter: _SlgfExecutor,
    Slgf2Router: _Slgf2Executor,
}


def executor_for(router: Router):
    """A batch executor for ``router``, or ``None`` for no fast path.

    ``None`` (sequential fallback) when the scheme has no registered
    executor, when the router is a *subclass* of a known scheme (its
    overridden behaviour must win), or when the graph cannot provide a
    columnar core (hand-built, unsorted adjacency rows).
    """
    builder = _BUILDERS.get(type(router))
    if builder is None:
        return None
    try:
        core = router.graph.core
    except ValueError:
        return None
    return builder(router, core)


# ---------------------------------------------------------------------------
# The vectorized (numpy) batch backend.
# ---------------------------------------------------------------------------

# A packet this close to the destination defects: the quadrant-scope
# floor ``du - _EPS`` stops being meaningfully positive, and coincident
# geometry (the executors' hand-over cases) hides below it.  Far larger
# than the decision bands, far smaller than any real hop.
_NEAR_DEST = 1e-6

# The two sides of the squared-distance decision band.  A comparison
# against a threshold ``t`` is only trusted when the squared distance
# clears ``t**2`` by a relative ``1e-12`` margin on the matching side;
# the gap between the kernel's ``sqrt(dx*dx + dy*dy)`` and the scalar
# executors' ``math.hypot`` is a few ulp (~1e-16 relative), so a clear
# verdict here is the scalar verdict.  Anything inside the band — and
# any near-tie between candidates — defects to the scalar replica.
_BAND_LO = 1.0 - 1e-12
_BAND_HI = _GUARD

# Packets vectorized per wave.  A memory guard, not a tuning knob:
# per-step working arrays are (max_degree, active) float64, so an
# unbounded batch of a million packets would allocate gigabytes.
# Below this size one wave is fastest — per-element cost is flat while
# per-wave numpy dispatch is not.
_WAVE = 32768


class _NumpyBatchKernel:
    """Vectorized batch backend: one array step advances every packet.

    The CSR columns are re-laid once per kernel into degree-padded
    neighbour matrices of shape ``(max_degree, n)``; padding entries
    point at a phantom node at ``(inf, inf)``, so their squared
    distance to any destination is ``inf`` and every mask ignores them
    for free.  Each step gathers the active packets' columns into
    ``(max_degree, active)`` working arrays, applies the scheme's
    forwarding-zone filter (and safety statuses for SLGF/SLGF2) as
    elementwise sign tests, and takes per-packet tier minima of the
    squared distance to the destination along ``axis=0`` — the long
    contiguous axis, which numpy reduces far faster than short rows.
    Delivered packets (destination adjacent) finish; packets whose
    winning candidate *provably* matches the scalar executors' choice
    advance.

    Exactness comes from proof, not replication: every floating-point
    decision is checked against the conservative bands above, and any
    packet the kernel cannot decide bit-identically — recovery or
    safe-ladder entry, (near-)ties, coincident geometry, near-destination
    thresholds, SLGF2's superseding gate — *defects*: it is re-routed
    from the source by the wrapped scalar executor, which is exact by
    construction.  Hop lengths are gathered from the core's
    ``math.hypot``-computed ``lengths`` column and accumulated one add
    per hop in path order, so delivered lengths are bit-identical too.
    """

    def __init__(self, np, mode: str, router: Router, core, scalar) -> None:
        self.np = np
        self.mode = mode
        self.router = router
        self.scalar = scalar
        self.ids = core.ids  # python-int tuple: index -> node id
        views = core.ndarray_views()
        self.xs = views.xs
        self.ys = views.ys
        self.ids_np = views.ids
        indptr = views.indptr
        indices = views.indices
        n = len(core.ids)
        self.n = n
        deg = indptr[1:] - indptr[:-1]
        self.deg = deg
        # Degree-padded columns, stored *transposed*: column u of the
        # ``(max_degree, n)`` matrices holds u's neighbour data in CSR
        # order, padded with a phantom node at (inf, inf).  Squared
        # distances through the padding are inf, so it never wins a
        # minimum, never matches a destination, and needs no mask of
        # its own.  Neighbour coordinates (and, for the safety modes,
        # packed safety bits) are materialised per (slot, node) here so
        # a step's working arrays are ``(max_degree, active)`` and the
        # per-packet reductions run along ``axis=0`` — over the long
        # contiguous axis, where numpy's reductions vectorise roughly
        # an order of magnitude better than along short rows.
        width = int(deg.max()) if n else 0
        pad_mask = np.arange(width)[None, :] < deg[:, None]
        nb_pad = np.full((n, width), n, dtype=np.int64)
        nb_pad[pad_mask] = indices
        len_pad = np.zeros((n, width))
        len_pad[pad_mask] = views.lengths
        xs_pad = np.concatenate((self.xs, [np.inf]))
        ys_pad = np.concatenate((self.ys, [np.inf]))
        self.width = width
        self.nb_t = np.ascontiguousarray(nb_pad.T)
        self.len_t = np.ascontiguousarray(len_pad.T)
        # Both coordinate planes in one (2, max_degree, n) block, so a
        # step fetches every candidate coordinate with a single gather
        # and differences both axes in a single ufunc pass.
        self.xy_t = np.ascontiguousarray(
            np.stack((xs_pad[nb_pad].T, ys_pad[nb_pad].T))
        )
        # (2*width, n) alias of the coordinate block: one 2-D ``take``
        # along axis 1 fetches both planes of a step's columns, which
        # measures ~30% faster than the equivalent 3-D fancy index.
        self.xy_take = self.xy_t.reshape(2 * width, n)
        # Step working buffers (gather, differences, minima, tie band),
        # grown on demand in _route_wave: reusing warm pages beats
        # fresh megabyte allocations, which hit mmap'd zero pages and
        # page-fault on every first touch.
        self._buf_cap = 0
        self._bufs = None
        if mode == "gf":
            self.quadrant = False
            self.rect = False  # full neighbourhood, no zone filter
        elif mode in ("lgf", "slgf"):
            self.rect = router._scope == "zone"
            self.quadrant = not self.rect
        else:  # slgf2
            self.quadrant = router._scope == "quadrant"
            self.rect = not self.quadrant
        if mode in ("slgf", "slgf2"):
            # Touching .model rebuilds it if a rebind left it stale,
            # exactly as the scalar executors do.  The phantom row is
            # all-safe; its inf distance already excludes it.
            statuses = router.model.safety.statuses
            safety = np.ones((n + 1, 4), dtype=bool)
            for i, u in enumerate(core.ids):
                safety[i] = statuses[u]
            self.safety = safety
            # Zone-type-t safety of neighbour (u, slot), packed as bits
            # t-1 of one int8 (phantom: all-safe 0b1111).
            packed = (
                (safety.astype(np.uint8) << np.arange(4, dtype=np.uint8))
                .sum(axis=1)
                .astype(np.int8)
            )
            self.safe_t = np.ascontiguousarray(packed[nb_pad].T)
        else:
            self.safety = None
            self.safe_t = None
        if mode == "slgf2" and router._use_superseding:
            # needs_splits gate, precomputed per node: u or any row
            # neighbour has an unsafe zone type.
            unsafe = ~self.safety[:n].all(axis=1)
            csum = np.concatenate(
                ([0], np.cumsum(unsafe[indices], dtype=np.int64))
            )
            gate = unsafe | (csum[indptr[1:]] > csum[indptr[:-1]])
            self.gate = gate if gate.any() else None
        else:
            self.gate = None
        # Per-hop phase label for single-phase schemes (SLGF labels
        # per hop: safe picks _SAFE, plain picks _GREEDY), plus a cache
        # of ready-made ``(phase,) * hops`` tuples — building one per
        # result is a measurable share of a large batch.
        self.hop_phase = _GREEDY if mode in ("gf", "lgf") else _SAFE
        self._phases: dict[int, tuple] = {}

    def _locate(self, pairs):
        """(sources, destinations) as index arrays, pairs validated.

        The happy path is one vectorized membership-plus-distinctness
        sweep (binary search against the sorted id column); anything
        suspicious falls back to the scalar ``_check`` loop, which
        raises the exact sequential-path error for the first offending
        pair in order.
        """
        np = self.np
        n = self.n
        try:
            flat = np.asarray(pairs, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            flat = None
        if flat is not None and flat.shape == (len(pairs), 2) and n:
            pos = np.searchsorted(self.ids_np, flat)
            pos[pos >= n] = 0  # clamp for the gather; id 0 mismatches
            member = self.ids_np[pos] == flat
            if member.all() and (flat[:, 0] != flat[:, 1]).all():
                return pos[:, 0], pos[:, 1]
        for s, d in pairs:
            self.scalar._check(s, d)
        index_of = self.router.graph.core.index_of
        count = len(pairs)
        cur = np.fromiter(
            (index_of(s) for s, _ in pairs), dtype=np.int64, count=count
        )
        dst = np.fromiter(
            (index_of(d) for _, d in pairs), dtype=np.int64, count=count
        )
        return cur, dst

    def route_batch(self, pairs) -> list[RouteResult]:
        pairs = list(pairs)
        if len(pairs) <= _WAVE:
            return self._route_wave(pairs)
        # Bounded memory for unbounded batches; see _WAVE.
        results: list[RouteResult] = []
        for start in range(0, len(pairs), _WAVE):
            results.extend(self._route_wave(pairs[start : start + _WAVE]))
        return results

    def _tiers(self, np, cur, dst, dval, safe_t):
        """One step's candidate evaluation: masks and tier minima.

        Returns ``(m_sel, d2t, m_band, ok, deliver, use_safe)``: the
        selected tier's per-packet minimum and candidate matrix, the
        tie band around that minimum, the banded progress verdict, the
        delivery trigger, and (SLGF only) the per-packet safe-tier
        flags.
        """
        mode = self.mode
        xs, ys = self.xs, self.ys
        active = cur.shape[0]
        width = self.width
        g_flat, d_flat, m_flat, _ = self._bufs
        span = 2 * width * active
        # Candidate block: active packets' padded neighbour columns as
        # (width, active) working arrays, both coordinate planes
        # gathered and differenced in one pass each, into the wave's
        # persistent buffers (see __init__).
        xy = g_flat[:span].reshape(2 * width, active)
        np.take(self.xy_take, cur, axis=1, out=xy)
        xy = xy.reshape(2, width, active)
        xv = xy[0]
        yv = xy[1]
        xd = xs[dst]
        yd = ys[dst]
        dxy = d_flat[:span].reshape(2, width, active)
        np.subtract(xy, np.stack((xd, yd))[:, None, :], out=dxy)
        dx = dxy[0]
        dy = dxy[1]

        # Forwarding-zone and safety masks (exact: sign tests only)
        # come before the in-place squaring consumes dx/dy; padding
        # rides through every mask with d2 == inf.
        valid = None
        if mode == "gf":
            pass  # full neighbourhood, no zone filter
        elif self.quadrant:
            xu = xs[cur]
            yu = ys[cur]
            ddx = xd - xu
            ddy = yd - yu
            k = np.select(
                [
                    (ddx > 0.0) & (ddy >= 0.0),
                    (ddx <= 0.0) & (ddy > 0.0),
                    (ddx < 0.0) & (ddy <= 0.0),
                ],
                [1, 2, 3],
                default=4,
            )
            dxu = xv - xu
            dyu = yv - yu
            px = dxu >= 0.0
            py = dyu >= 0.0
            nx = dxu <= 0.0
            ny = dyu <= 0.0
            valid = (
                ((k == 1) & px & py)
                | ((k == 2) & nx & py)
                | ((k == 3) & nx & ny)
                | ((k == 4) & px & ny)
            )
            valid &= ~((dxu == 0.0) & (dyu == 0.0))
        else:
            xu = xs[cur]
            yu = ys[cur]
            xlo = np.minimum(xu, xd)
            xhi = np.maximum(xu, xd)
            ylo = np.minimum(yu, yd)
            yhi = np.maximum(yu, yd)
            valid = (
                (xv >= xlo)
                & (xv <= xhi)
                & (yv >= ylo)
                & (yv <= yhi)
            )

        safe_ok = None
        if safe_t is not None:
            # _zone_type_rel, branch for branch, on (dx, dy); the
            # candidate's own safety bit comes out of the packed
            # per-slot bits by the zone type's shift.
            kv = np.select(
                [
                    (dx == 0.0) & (dy == 0.0),
                    (dx < 0.0) & (dy <= 0.0),
                    dy < 0.0,
                    dx > 0.0,
                ],
                [0, 1, 2, 3],
                default=4,
            )
            bit = safe_t[:, cur] >> np.maximum(kv - 1, 0)
            safe_ok = (kv == 0) | (bit & 1).astype(bool)

        # Squared distance to the destination, both planes in one
        # pass; the in-place square frees dx/dy.
        np.multiply(dxy, dxy, out=dxy)
        d2 = np.add(dxy[0], dxy[1], out=dxy[0])
        d2v = d2 if valid is None else np.where(valid, d2, np.inf)
        if safe_ok is not None:
            d2s = np.where(safe_ok, d2v, np.inf)

        # Tier minima and the banded clear/defect verdicts.
        banded = self.quadrant or mode == "gf"
        if banded:
            thr = dval - _EPS
            thr2 = thr * thr
            lo2 = thr2 * _BAND_LO
            hi2 = thr2 * _BAND_HI
        if mode in ("gf", "lgf"):
            m_all = np.minimum.reduce(d2v, axis=0, out=m_flat[:active])
            ok = m_all < lo2 if banded else np.isfinite(m_all)
            m_sel = m_all
            d2t = d2v
            use_safe = None
        elif mode == "slgf":
            m_all = d2v.min(axis=0)
            m_safe = d2s.min(axis=0)
            if banded:
                safe_clear = m_safe < lo2
                safe_empty = m_safe >= hi2
                plain_clear = m_all < lo2
            else:
                safe_clear = np.isfinite(m_safe)
                safe_empty = ~safe_clear
                plain_clear = np.isfinite(m_all)
            use_safe = safe_clear
            ok = safe_clear | (safe_empty & plain_clear)
            m_sel = np.where(use_safe, m_safe, m_all)
            d2t = np.where(use_safe, d2s, d2v)
        else:  # slgf2: safe tier only
            m_safe = d2s.min(axis=0)
            ok = m_safe < lo2 if banded else np.isfinite(m_safe)
            m_sel = m_safe
            d2t = d2s
            use_safe = None

        # Delivery: a destination adjacent to its packet.  Its
        # candidate entry has squared distance exactly 0.0 and passes
        # every zone and safety filter, so ``m_sel == 0.0`` is a
        # complete (and cheap) trigger; the caller's column scan then
        # tells a true destination from a node merely coincident with
        # it.
        deliver = m_sel == 0.0
        return m_sel, d2t, m_sel * _BAND_HI, ok, deliver, use_safe

    def _route_wave(self, pairs: list) -> list[RouteResult]:
        np = self.np
        mode = self.mode
        scalar = self.scalar
        count = len(pairs)
        if count == 0:
            return []
        ids = self.ids
        n = self.n
        xs, ys = self.xs, self.ys
        nb_t, len_t, deg = self.nb_t, self.len_t, self.deg
        nb_flat, len_flat = nb_t.ravel(), len_t.ravel()
        safe_t = self.safe_t
        gate = self.gate
        rname = self.router.name
        phase_cache = self._phases
        results: list[RouteResult | None] = [None] * count
        defects: list[int] = []
        paths: list[list[NodeId]] = [[s] for s, _ in pairs]
        phase_rows = [[] for _ in range(count)] if mode == "slgf" else None

        if count > self._buf_cap:
            plane = 2 * self.width * count
            self._bufs = (
                np.empty(plane),
                np.empty(plane),
                np.empty(count),
                np.empty(self.width * count, dtype=bool),
            )
            self._buf_cap = count

        slot = np.arange(count, dtype=np.int64)
        cur, dst = self._locate(pairs)
        length = np.zeros(count)
        dval = np.hypot(xs[cur] - xs[dst], ys[cur] - ys[dst])

        first = True
        for _ in range(self.router.ttl):
            if not slot.size:
                break
            # Pre-decision defects: (near-)coincident with the
            # destination, SLGF2 superseding gate, and — only possible
            # on the first hop, every later node has a neighbour —
            # isolated sources.
            bad = dval <= _NEAR_DEST
            if first:
                bad |= deg[cur] == 0
                first = False
            if gate is not None:
                bad |= gate[cur]
            if bad.any():
                defects.extend(slot[bad].tolist())
                keep = ~bad
                slot = slot[keep]
                cur = cur[keep]
                dst = dst[keep]
                dval = dval[keep]
                length = length[keep]
                if not slot.size:
                    break

            m_sel, d2t, m_band, ok, deliver, use_safe = self._tiers(
                np, cur, dst, dval, safe_t
            )

            dmatch = None
            if deliver.any():
                zrows = np.nonzero(deliver)[0]
                dmatch = nb_t[:, cur[zrows]] == dst[zrows]
                deliver[zrows] = dmatch.any(axis=0)

            # A winner must be *uniquely* within the tie band of the
            # tier minimum, or the scalar scan-order tie-break decides.
            within = self._bufs[3][: d2t.size].reshape(d2t.shape)
            np.less_equal(d2t, m_band, out=within)
            cnt = within.sum(axis=0)
            advance = ok & (cnt == 1) & ~deliver
            defect = ~deliver & ~advance
            if defect.any():
                defects.extend(slot[defect].tolist())
            if dmatch is not None and deliver.any():
                hit = deliver[zrows]
                done = zrows[hit]
                dcol = dmatch[:, hit].argmax(axis=0)
                fin_len = (
                    length[done] + len_flat[dcol * n + cur[done]]
                ).tolist()
                # Delivered results are built directly (positional
                # dataclass call, cached phase tuples): the ergonomic
                # ``_finish`` wrapper costs more than every array op
                # of a step combined when thousands of packets finish.
                for s_slot, flen in zip(slot[done].tolist(), fin_len):
                    source, destination = pairs[s_slot]
                    path = paths[s_slot]
                    path.append(destination)
                    if phase_rows is not None:
                        ph = phase_rows[s_slot]
                        ph.append(_SAFE)
                        ph = tuple(ph)
                    else:
                        hops = len(path) - 1
                        ph = phase_cache.get(hops)
                        if ph is None:
                            phase_cache[hops] = ph = (
                                self.hop_phase,
                            ) * hops
                    results[s_slot] = RouteResult(
                        rname,
                        source,
                        destination,
                        True,
                        tuple(path),
                        ph,
                        flen,
                    )

            adv = np.nonzero(advance)[0]
            if adv.size:
                # The advancing packets' unique in-band candidate is
                # the tier minimum; its padded slot (first along the
                # CSR axis, matching the scalar first-wins scan) keys
                # the flat neighbour/length lookups.
                wrow = within.argmax(axis=0)
                wflat = wrow[adv] * n + cur[adv]
                wnb = nb_flat[wflat]
                widx = wnb.tolist()
                if phase_rows is not None:
                    safe_flags = use_safe[adv].tolist()
                    for s_slot, wi, sflag in zip(
                        slot[adv].tolist(), widx, safe_flags
                    ):
                        paths[s_slot].append(ids[wi])
                        phase_rows[s_slot].append(
                            _SAFE if sflag else _GREEDY
                        )
                else:
                    for s_slot, wi in zip(slot[adv].tolist(), widx):
                        paths[s_slot].append(ids[wi])
                length = length[adv] + len_flat[wflat]
                cur = wnb
                dval = np.sqrt(m_sel[adv])
            slot = slot[adv]
            dst = dst[adv]

        # TTL-exhausted survivors.
        for j in range(slot.size):
            s_slot = int(slot[j])
            source, destination = pairs[s_slot]
            path = paths[s_slot]
            if phase_rows is not None:
                ph = tuple(phase_rows[s_slot])
            else:
                ph = (self.hop_phase,) * (len(path) - 1)
            results[s_slot] = RouteResult(
                rname,
                source,
                destination,
                False,
                tuple(path),
                ph,
                float(length[j]),
                failure_reason="ttl_exceeded",
            )

        # Defected packets: the scalar replica re-routes from scratch
        # (its first hops recompute exactly what the kernel already
        # proved, so re-walking the prefix cannot diverge).
        for s_slot in sorted(defects):
            source, destination = pairs[s_slot]
            results[s_slot] = scalar.route(source, destination)
        return results


def numpy_kernel_for(router: Router, executor=None):
    """A vectorized batch kernel for ``router``, or ``None``.

    ``None`` when numpy is unavailable or when the router has no scalar
    fast path (``executor_for`` rules: unknown scheme, subclass, no
    columnar core) — the kernel defects packets to the scalar replica,
    so it cannot exist without one.  ``executor`` reuses an
    already-built scalar executor instead of building a fresh one.
    """
    np = load_numpy()
    if np is None:
        return None
    if executor is None:
        executor = executor_for(router)
    if executor is None:
        return None
    mode = _KERNEL_MODES.get(type(router))
    if mode is None:
        return None
    return _NumpyBatchKernel(np, mode, router, router.graph.core, executor)


_KERNEL_MODES = {
    GreedyRouter: "gf",
    LgfRouter: "lgf",
    SlgfRouter: "slgf",
    Slgf2Router: "slgf2",
}
