"""Batched routing executors — the index-based successor-selection fast path.

:meth:`Router.route_batch` routes whole (source, destination) batches
over one :class:`~repro.network.core.TopologyCore`.  The per-scheme
executors in this module run the hot forwarding loops — greedy/safe
advance everywhere, plus LGF/SLGF's tried-set perimeter sweep —
directly on the core's flat columns: neighbour-id tuples, plain-list
coordinate reads, one ``math.hypot`` per surviving candidate.  No
``Point`` objects, no per-hop dict lookups, no ``PacketTrace`` method
dispatch.

Exactness is non-negotiable: ``route_batch`` must return results
bit-identical to sequential :meth:`Router.route` calls (the
equivalence suite pins this per scheme).  Three mechanisms guarantee
it:

* **Conservative squared-distance prefilter.**  Greedy selection
  compares ``hypot`` distances exactly as the object path does; the
  fast loop merely *skips* candidates whose squared distance already
  proves ``hypot`` would lose.  The filter bound carries a relative
  margin of 1e-12 — four orders of magnitude wider than the ~1e-16
  relative error of squaring vs. ``hypot`` — so no candidate that
  could win (or tie) is ever skipped, and every surviving comparison
  uses the same ``math.hypot`` values the legacy code computes.

* **Operation-for-operation replicas.**  Where a phase is fast-pathed
  (the ray-sweep perimeter of Algorithm 1 step 4, the superseding
  splits gate of Algorithm 3 step 3), the replica performs the same
  floating-point operations in the same order — ``atan2``/``fmod``
  normalisation, tie-breaks, epsilon conventions — only on flat
  columns instead of objects.

* **Handover before divergence.**  The moment a scheme would do
  anything the executor does not replicate — GF's face recovery,
  SLGF2's backup/perimeter ladder — it materialises a
  :class:`~repro.routing.base.PacketTrace` seeded with the hops
  routed so far and hands the packet to the scheme's own ``_run``.
  Every scheme's per-packet state is still at its initial value at
  that moment, so the original loop continues exactly as if it had
  routed the prefix itself.

Executors dispatch on the *exact* router type: subclasses that
override selection behaviour fall back to sequential ``route`` calls
rather than inheriting a fast path that no longer matches them.
"""

from __future__ import annotations

import math

from repro.geometry import Point
from repro.network.node import NodeId
from repro.routing.base import (
    PacketTrace,
    Phase,
    RouteResult,
    Router,
    RoutingError,
)
from repro.routing.greedy import GreedyRouter
from repro.routing.lgf import LgfRouter
from repro.routing.slgf import SlgfRouter
from repro.routing.slgf2 import Slgf2Router

__all__ = ["executor_for"]

_EPS = 1e-9  # the routers' successor-selection tolerance (see greedy.py)

# Relative margin of the squared-distance prefilter.  Squaring and
# ``hypot`` each err by ~1 ulp (~1.1e-16 relative); a candidate whose
# squared distance exceeds the bound by 1e-12 relative is therefore
# provably farther than the incumbent, with ~1e4 slack.
_GUARD = 1.0 + 1e-12

_GREEDY = Phase.GREEDY
_SAFE = Phase.SAFE
_PERIMETER = Phase.PERIMETER

_TAU = math.tau


def _zone_type_rel(dx: float, dy: float) -> int:
    """``zone_type_of(v, d)`` from ``dx = xv - xd``, ``dy = yv - yd``.

    Returns 0 for the coincident case the callers treat as trivially
    safe (``zone_type_of`` itself raises there).  The branch order
    mirrors the original's sequential boundary tie-breaking exactly.
    """
    if dx == 0.0 and dy == 0.0:
        return 0
    if dx < 0.0 and dy <= 0.0:
        return 1
    if dy < 0.0:  # dx >= 0 here
        return 2
    if dx > 0.0:  # dy >= 0 here
        return 3
    return 4


def _norm(theta: float) -> float:
    """``normalize_angle`` replica: map onto ``[0, tau)`` bit-for-bit."""
    theta = math.fmod(theta, _TAU)
    if theta < 0.0:
        theta += _TAU
    if theta >= _TAU:
        theta -= _TAU
    return theta


class _Executor:
    """Shared per-batch state and the exact slow-path bridges."""

    def __init__(self, router: Router, core) -> None:
        self.router = router
        self.xs, self.ys = core.coords_by_id()
        self.rows = core.rows_by_id()

    # -- bridges to the object path -------------------------------------

    def _check(self, source: NodeId, destination: NodeId) -> None:
        graph = self.router.graph
        if source not in graph or destination not in graph:
            raise RoutingError("source or destination not in graph")
        if source == destination:
            raise RoutingError("source equals destination")

    def _handover(
        self,
        source: NodeId,
        destination: NodeId,
        path: list[NodeId],
        phases: list[str],
        length: float,
    ) -> RouteResult:
        """Finish the route through the scheme's own ``_run``.

        The trace is seeded with the fast-path prefix; ``_run``
        re-examines the current node from scratch, so the hop the fast
        path declined to take is decided by the original code.
        """
        router = self.router
        trace = PacketTrace(router.graph, source, router.ttl)
        trace.path = path
        trace.phases = phases
        trace.length = length
        failure = router._run(trace, destination)
        delivered = trace.current == destination and failure is None
        return RouteResult(
            router=router.name,
            source=source,
            destination=destination,
            delivered=delivered,
            path=tuple(trace.path),
            phases=tuple(trace.phases),
            length=trace.length,
            perimeter_entries=trace.perimeter_entries,
            backup_entries=trace.backup_entries,
            bound_escapes=trace.bound_escapes,
            failure_reason=failure,
        )

    def _finish(
        self,
        source: NodeId,
        destination: NodeId,
        path: list[NodeId],
        phases: list[str],
        length: float,
        arrived: bool,
        perimeter_entries: int = 0,
        failure: str | None = None,
    ) -> RouteResult:
        if failure is None and not arrived:
            failure = "ttl_exceeded"
        return RouteResult(
            router=self.router.name,
            source=source,
            destination=destination,
            delivered=arrived and failure is None,
            path=tuple(path),
            phases=tuple(phases),
            length=length,
            perimeter_entries=perimeter_entries,
            failure_reason=failure,
        )

    # -- the tried-set perimeter phase (Algorithm 1 step 4) -------------

    def _tried_perimeter(
        self,
        u: NodeId,
        destination: NodeId,
        path: list[NodeId],
        phases: list[str],
        length: float,
        ttl: int,
    ) -> tuple[NodeId, float, str | None, bool]:
        """Exact replica of ``LgfRouter._tried_set_perimeter``.

        Right-hand-rule sweep over untried neighbours with
        backtracking; returns ``(current, length, failure, walking)``
        where ``walking=False`` means the phase ended (resume greedy,
        arrived, or failed) exactly as the object implementation
        would.  Appends to ``path``/``phases`` in place.
        """
        xs = self.xs
        ys = self.ys
        rows = self.rows
        hyp = math.hypot
        atan2 = math.atan2
        xd = xs[destination]
        yd = ys[destination]
        stuck_limit = hyp(xs[u] - xd, ys[u] - yd) - _EPS
        tried = {u}
        stack = [u]
        hops = len(path) - 1
        while hops < ttl:
            xu = xs[u]
            yu = ys[u]
            if hyp(xu - xd, yu - yd) < stuck_limit:
                return u, length, None, False  # resume greedy phase
            row = rows[u]
            if destination in row:
                path.append(destination)
                phases.append(_PERIMETER)
                length += hyp(xu - xd, yu - yd)
                return destination, length, None, False
            # The CCW "first node hit by the ray ud" sweep, with the
            # reference implementation's tie-breaks: smaller CCW
            # offset first, Euclidean distance on exact angle ties,
            # first-seen on full ties.  Candidates coincident with u
            # are skipped (they have no direction).
            ref = _norm(atan2(yd - yu, xd - xu))
            best = -1
            best_off = 0.0
            best_dist = -1.0  # lazily computed, only on angle ties
            saw_untried = False
            for v in row:
                if v in tried:
                    continue
                saw_untried = True
                xv = xs[v]
                yv = ys[v]
                if xv == xu and yv == yu:
                    continue
                off = _norm(_norm(atan2(yv - yu, xv - xu)) - ref)
                if best < 0 or off < best_off:
                    best = v
                    best_off = off
                    best_dist = -1.0
                elif off == best_off:
                    if best_dist < 0.0:
                        best_dist = hyp(xs[best] - xu, ys[best] - yu)
                    dv = hyp(xv - xu, yv - yu)
                    if dv < best_dist:
                        best = v
                        best_off = off
                        best_dist = dv
            if saw_untried:
                if best < 0:
                    # Every untried neighbour coincides with u: the
                    # object path would advance(None) and raise.
                    raise RoutingError(
                        f"illegal hop {u} -> None: not an edge"
                    )
                tried.add(best)
                stack.append(best)
                path.append(best)
                phases.append(_PERIMETER)
                length += hyp(xu - xs[best], yu - ys[best])
                u = best
                hops += 1
                continue
            # Dead end: backtrack along the phase's own path.
            stack.pop()
            if not stack:
                return u, length, "unreachable", False
            prev = stack[-1]
            path.append(prev)
            phases.append(_PERIMETER)
            length += hyp(xu - xs[prev], yu - ys[prev])
            u = prev
            hops += 1
        return u, length, "ttl_exceeded", False


class _GreedyExecutor(_Executor):
    """GF fast path: greedy advance; recovery phases hand over."""

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        self._check(source, destination)
        xs = self.xs
        ys = self.ys
        rows = self.rows
        hyp = math.hypot
        ttl = self.router.ttl
        xd = xs[destination]
        yd = ys[destination]
        path = [source]
        phases: list[str] = []
        length = 0.0
        u = source
        hops = 0
        du = hyp(xs[u] - xd, ys[u] - yd)
        while hops < ttl:
            if u == destination:
                break
            row = rows[u]
            xu = xs[u]
            yu = ys[u]
            if destination in row:
                path.append(destination)
                phases.append(_GREEDY)
                length += hyp(xu - xd, yu - yd)
                u = destination
                hops += 1
                continue
            best = -1
            best_dist = du - _EPS
            cut = best_dist * best_dist * _GUARD
            for v in row:
                dx = xs[v] - xd
                dy = ys[v] - yd
                if dx * dx + dy * dy >= cut:
                    continue
                dv = hyp(dx, dy)
                if dv < best_dist:
                    best = v
                    best_dist = dv
                    cut = dv * dv * _GUARD
            if best < 0:
                # Local minimum: the original recovery machinery owns
                # the rest of the packet (face walk or hole boundary).
                return self._handover(
                    source, destination, path, phases, length
                )
            path.append(best)
            phases.append(_GREEDY)
            length += hyp(xu - xs[best], yu - ys[best])
            u = best
            du = best_dist
            hops += 1
        return self._finish(
            source, destination, path, phases, length, u == destination
        )


class _LgfExecutor(_Executor):
    """LGF fast path: request-zone greedy advance + ray-sweep perimeter."""

    def __init__(self, router: LgfRouter, core) -> None:
        super().__init__(router, core)
        self.zone_scope = router._scope == "zone"

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        self._check(source, destination)
        xs = self.xs
        ys = self.ys
        rows = self.rows
        hyp = math.hypot
        zone_scope = self.zone_scope
        ttl = self.router.ttl
        xd = xs[destination]
        yd = ys[destination]
        path = [source]
        phases: list[str] = []
        length = 0.0
        u = source
        hops = 0
        perimeter_entries = 0
        du = hyp(xs[u] - xd, ys[u] - yd)
        while hops < ttl:
            if u == destination:
                break
            row = rows[u]
            xu = xs[u]
            yu = ys[u]
            if destination in row:
                path.append(destination)
                phases.append(_GREEDY)
                length += hyp(xu - xd, yu - yd)
                u = destination
                hops += 1
                continue
            if xu == xd and yu == yd:
                # Coincident with the destination: zone machinery is
                # degenerate here; let the original code decide.
                return self._handover(
                    source, destination, path, phases, length
                )
            best = -1
            if zone_scope:
                # Z_k(u, d): the closed rectangle with u and d at
                # opposite corners (Rect.from_corners + contains).
                xlo, xhi = (xu, xd) if xu <= xd else (xd, xu)
                ylo, yhi = (yu, yd) if yu <= yd else (yd, yu)
                best_dist = math.inf
                cut = math.inf
                for v in row:
                    xv = xs[v]
                    if xv < xlo or xv > xhi:
                        continue
                    yv = ys[v]
                    if yv < ylo or yv > yhi:
                        continue
                    dx = xv - xd
                    dy = yv - yd
                    if dx * dx + dy * dy >= cut:
                        continue
                    dv = hyp(dx, dy)
                    if dv < best_dist:
                        best = v
                        best_dist = dv
                        cut = dv * dv * _GUARD
            else:
                # Q_k(u) ∩ strictly-closer (quadrant scope).
                ddx = xd - xu
                ddy = yd - yu
                if ddx > 0.0 and ddy >= 0.0:
                    k = 1
                elif ddx <= 0.0 and ddy > 0.0:
                    k = 2
                elif ddx < 0.0 and ddy <= 0.0:
                    k = 3
                else:
                    k = 4
                best_dist = du - _EPS
                cut = best_dist * best_dist * _GUARD
                for v in row:
                    xv = xs[v]
                    yv = ys[v]
                    dx = xv - xu
                    dy = yv - yu
                    if k == 1:
                        if dx < 0.0 or dy < 0.0:
                            continue
                    elif k == 2:
                        if dx > 0.0 or dy < 0.0:
                            continue
                    elif k == 3:
                        if dx > 0.0 or dy > 0.0:
                            continue
                    else:
                        if dx < 0.0 or dy > 0.0:
                            continue
                    if dx == 0.0 and dy == 0.0:
                        continue  # coincident with u: in no zone
                    dx = xv - xd
                    dy = yv - yd
                    if dx * dx + dy * dy >= cut:
                        continue
                    dv = hyp(dx, dy)
                    if dv < best_dist:
                        best = v
                        best_dist = dv
                        cut = dv * dv * _GUARD
            if best < 0:
                # Local minimum: Algorithm 1 step 4.
                perimeter_entries += 1
                u, length, failure, _ = self._tried_perimeter(
                    u, destination, path, phases, length, ttl
                )
                if failure is not None:
                    return self._finish(
                        source,
                        destination,
                        path,
                        phases,
                        length,
                        False,
                        perimeter_entries,
                        failure,
                    )
                if u == destination:
                    break
                hops = len(path) - 1
                du = hyp(xs[u] - xd, ys[u] - yd)
                continue
            path.append(best)
            phases.append(_GREEDY)
            length += hyp(xu - xs[best], yu - ys[best])
            u = best
            du = best_dist
            hops += 1
        return self._finish(
            source,
            destination,
            path,
            phases,
            length,
            u == destination,
            perimeter_entries,
        )


def _statuses_by_id(model, size: int) -> list:
    """Safety tuples indexed by node id (None where no node)."""
    table: list = [None] * size
    for u, status in model.safety.statuses.items():
        table[u] = status
    return table


class _SlgfExecutor(_LgfExecutor):
    """SLGF fast path: safe-preferred zone advance + ray-sweep perimeter."""

    def __init__(self, router: SlgfRouter, core) -> None:
        super().__init__(router, core)
        # Touching .model here rebuilds it if a rebind left it stale,
        # exactly as the first route() after a rebind would.
        self.safety = _statuses_by_id(router.model, len(self.rows))

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        self._check(source, destination)
        xs = self.xs
        ys = self.ys
        rows = self.rows
        safety = self.safety
        hyp = math.hypot
        zone_scope = self.zone_scope
        ttl = self.router.ttl
        xd = xs[destination]
        yd = ys[destination]
        path = [source]
        phases: list[str] = []
        length = 0.0
        u = source
        hops = 0
        perimeter_entries = 0
        du = hyp(xs[u] - xd, ys[u] - yd)
        while hops < ttl:
            if u == destination:
                break
            row = rows[u]
            xu = xs[u]
            yu = ys[u]
            if destination in row:
                path.append(destination)
                phases.append(_SAFE)
                length += hyp(xu - xd, yu - yd)
                u = destination
                hops += 1
                continue
            if xu == xd and yu == yd:
                return self._handover(
                    source, destination, path, phases, length
                )
            if zone_scope:
                xlo, xhi = (xu, xd) if xu <= xd else (xd, xu)
                ylo, yhi = (yu, yd) if yu <= yd else (yd, yu)
                floor = math.inf
            else:
                ddx = xd - xu
                ddy = yd - yu
                if ddx > 0.0 and ddy >= 0.0:
                    k = 1
                elif ddx <= 0.0 and ddy > 0.0:
                    k = 2
                elif ddx < 0.0 and ddy <= 0.0:
                    k = 3
                else:
                    k = 4
                floor = du - _EPS
            best_plain = -1
            plain_dist = floor
            best_safe = -1
            safe_dist = floor
            # The shared prefilter is anchored on the *safe* incumbent:
            # plain_dist <= safe_dist holds throughout (plain updates
            # on every admitted improvement), so nothing at or beyond
            # safe_dist can improve either minimum.
            cut = safe_dist * safe_dist * _GUARD
            for v in row:
                xv = xs[v]
                yv = ys[v]
                if zone_scope:
                    if xv < xlo or xv > xhi or yv < ylo or yv > yhi:
                        continue
                else:
                    dx = xv - xu
                    dy = yv - yu
                    if k == 1:
                        if dx < 0.0 or dy < 0.0:
                            continue
                    elif k == 2:
                        if dx > 0.0 or dy < 0.0:
                            continue
                    elif k == 3:
                        if dx > 0.0 or dy > 0.0:
                            continue
                    else:
                        if dx < 0.0 or dy > 0.0:
                            continue
                    if dx == 0.0 and dy == 0.0:
                        continue
                dx = xv - xd
                dy = yv - yd
                if dx * dx + dy * dy >= cut:
                    continue
                dv = hyp(dx, dy)
                if dv < plain_dist:
                    best_plain = v
                    plain_dist = dv
                if dv < safe_dist:
                    # Safe for v's own request zone toward d (the zone
                    # type is re-evaluated at v, per Section 4); a node
                    # exactly at d's position is trivially safe.
                    kv = _zone_type_rel(dx, dy)
                    if kv == 0 or safety[v][kv - 1]:
                        best_safe = v
                        safe_dist = dv
                        cut = dv * dv * _GUARD
            if best_safe >= 0:
                pick = best_safe
                pick_dist = safe_dist
                phase = _SAFE
            elif best_plain >= 0:
                pick = best_plain
                pick_dist = plain_dist
                phase = _GREEDY
            else:
                perimeter_entries += 1
                u, length, failure, _ = self._tried_perimeter(
                    u, destination, path, phases, length, ttl
                )
                if failure is not None:
                    return self._finish(
                        source,
                        destination,
                        path,
                        phases,
                        length,
                        False,
                        perimeter_entries,
                        failure,
                    )
                if u == destination:
                    break
                hops = len(path) - 1
                du = hyp(xs[u] - xd, ys[u] - yd)
                continue
            path.append(pick)
            phases.append(phase)
            length += hyp(xu - xs[pick], yu - ys[pick])
            u = pick
            du = pick_dist
            hops += 1
        return self._finish(
            source,
            destination,
            path,
            phases,
            length,
            u == destination,
            perimeter_entries,
        )


class _Slgf2Executor(_Executor):
    """SLGF2 fast path: the safe-forwarding rungs of Algorithm 3.

    Handles hops where a safe zone candidate exists (steps 2-3, the
    dominant case), including the superseding rule's split gathering
    over precomputed per-node unsafe types; the first hop that needs
    the detour ladder — unsafe greedy entry, backup paths, perimeter
    routing — hands the packet to the original ``_run`` with all
    per-packet state still at its initial value.
    """

    def __init__(self, router: Slgf2Router, core) -> None:
        super().__init__(router, core)
        self.quadrant_scope = router._scope == "quadrant"
        self.superseding = router._use_superseding
        model = router.model
        self.safety = _statuses_by_id(model, len(self.rows))
        # Unsafe zone types per node id, ascending (usually empty):
        # the splits of the superseding rule can only come from these.
        self.unsafe_types: list[tuple[int, ...]] = [
            ()
            if status is None
            else tuple(t for t in (1, 2, 3, 4) if not status[t - 1])
            for status in self.safety
        ]

    def _splits_at(self, u: NodeId, destination: NodeId):
        """Exact replica of ``Slgf2Router._region_splits_at``.

        Same (node, type) enumeration order — ``u`` first, then its
        neighbours ascending, types ascending — but driven by the
        precomputed unsafe-type tuples, so fully-safe neighbourhood
        members cost one empty-tuple check instead of four model
        calls.
        """
        router = self.router
        xs = self.xs
        ys = self.ys
        unsafe_types = self.unsafe_types
        xd = xs[destination]
        yd = ys[destination]
        splits = []
        model = None
        pd = None
        for w in (u, *self.rows[u]):
            types = unsafe_types[w]
            if not types:
                continue
            xw = xs[w]
            yw = ys[w]
            dx = xd - xw
            dy = yd - yw
            if dx == 0.0 and dy == 0.0:
                continue  # pd == pw: in no forwarding zone
            for t in types:
                if t == 1:
                    if dx < 0.0 or dy < 0.0:
                        continue
                elif t == 2:
                    if dx > 0.0 or dy < 0.0:
                        continue
                elif t == 3:
                    if dx > 0.0 or dy > 0.0:
                        continue
                else:
                    if dx < 0.0 or dy > 0.0:
                        continue
                if model is None:
                    model = router.model
                    pd = router.graph.position(destination)
                split = model.region_split(w, t, pd)
                if split is not None and split.destination_side != 0:
                    splits.append(split)
        return splits

    def _superseded_pick(
        self,
        row,
        xu: float,
        yu: float,
        xd: float,
        yd: float,
        k: int,
        floor: float,
        splits,
    ) -> NodeId:
        """Steps 2+3 with visible splits: exact flat-column replica.

        Rebuilds the *ordered* safe candidate set (the cut-prefiltered
        main scan only tracks the minimum), drops candidates inside
        any split's forbidden region — a preference, not a constraint:
        when every candidate is forbidden the unfiltered set is used —
        and greedy-picks among the survivors, matching
        ``_safe_zone_candidates`` → ``_prefer_non_forbidden`` →
        ``_greedy_pick`` decision for decision.  ``k`` is the zone
        type (0 = rectangle scope).
        """
        xs = self.xs
        ys = self.ys
        safety = self.safety
        hyp = math.hypot
        if k == 0:
            xlo, xhi = (xu, xd) if xu <= xd else (xd, xu)
            ylo, yhi = (yu, yd) if yu <= yd else (yd, yu)
        safe: list[NodeId] = []
        dists: list[float] = []
        for v in row:
            xv = xs[v]
            yv = ys[v]
            if k == 0:
                if xv < xlo or xv > xhi or yv < ylo or yv > yhi:
                    continue
            else:
                dx = xv - xu
                dy = yv - yu
                if k == 1:
                    if dx < 0.0 or dy < 0.0:
                        continue
                elif k == 2:
                    if dx > 0.0 or dy < 0.0:
                        continue
                elif k == 3:
                    if dx > 0.0 or dy > 0.0:
                        continue
                else:
                    if dx < 0.0 or dy > 0.0:
                        continue
                if dx == 0.0 and dy == 0.0:
                    continue
            dx = xv - xd
            dy = yv - yd
            dv = hyp(dx, dy)
            if k != 0 and dv >= floor:
                continue  # quadrant scope: strictly-closer only
            kv = _zone_type_rel(dx, dy)
            if kv == 0 or safety[v][kv - 1]:
                safe.append(v)
                dists.append(dv)
        preferred = [
            i
            for i, v in enumerate(safe)
            if not any(
                split.in_forbidden_region(Point(xs[v], ys[v]))
                for split in splits
            )
        ]
        if not preferred:
            preferred = range(len(safe))
        best = -1
        best_dist = math.inf
        for i in preferred:
            dv = dists[i]
            if dv < best_dist:
                best = safe[i]
                best_dist = dv
        return best

    def route(self, source: NodeId, destination: NodeId) -> RouteResult:
        self._check(source, destination)
        router = self.router
        xs = self.xs
        ys = self.ys
        rows = self.rows
        safety = self.safety
        unsafe_types = self.unsafe_types
        superseding = self.superseding
        hyp = math.hypot
        quadrant_scope = self.quadrant_scope
        ttl = router.ttl
        xd = xs[destination]
        yd = ys[destination]
        path = [source]
        phases: list[str] = []
        length = 0.0
        u = source
        hops = 0
        du = hyp(xs[u] - xd, ys[u] - yd)
        while hops < ttl:
            if u == destination:
                break
            row = rows[u]
            xu = xs[u]
            yu = ys[u]
            if destination in row:
                path.append(destination)
                phases.append(_SAFE)  # in_backup is False on this path
                length += hyp(xu - xd, yu - yd)
                u = destination
                hops += 1
                continue
            if xu == xd and yu == yd:
                return self._handover(
                    source, destination, path, phases, length
                )
            if quadrant_scope:
                ddx = xd - xu
                ddy = yd - yu
                if ddx > 0.0 and ddy >= 0.0:
                    k = 1
                elif ddx <= 0.0 and ddy > 0.0:
                    k = 2
                elif ddx < 0.0 and ddy <= 0.0:
                    k = 3
                else:
                    k = 4
                floor = du - _EPS
                cut = floor * floor * _GUARD
            else:
                xlo, xhi = (xu, xd) if xu <= xd else (xd, xu)
                ylo, yhi = (yu, yd) if yu <= yd else (yd, yu)
                floor = math.inf
                cut = math.inf
            best_safe = -1
            safe_dist = floor
            needs_splits = superseding and bool(unsafe_types[u])
            for v in row:
                if superseding and unsafe_types[v]:
                    needs_splits = True
                xv = xs[v]
                yv = ys[v]
                if quadrant_scope:
                    dx = xv - xu
                    dy = yv - yu
                    if k == 1:
                        if dx < 0.0 or dy < 0.0:
                            continue
                    elif k == 2:
                        if dx > 0.0 or dy < 0.0:
                            continue
                    elif k == 3:
                        if dx > 0.0 or dy > 0.0:
                            continue
                    else:
                        if dx < 0.0 or dy > 0.0:
                            continue
                    if dx == 0.0 and dy == 0.0:
                        continue
                else:
                    if xv < xlo or xv > xhi or yv < ylo or yv > yhi:
                        continue
                dx = xv - xd
                dy = yv - yd
                if dx * dx + dy * dy >= cut:
                    continue
                dv = hyp(dx, dy)
                if dv < safe_dist:
                    kv = _zone_type_rel(dx, dy)
                    if kv == 0 or safety[v][kv - 1]:
                        best_safe = v
                        safe_dist = dv
                        cut = dv * dv * _GUARD
            if best_safe < 0:
                # No safe zone successor (or, under adaptive greedy, a
                # candidate set this loop does not model): steps 3-5
                # belong to the original ladder.
                return self._handover(
                    source, destination, path, phases, length
                )
            pick = best_safe
            if needs_splits:
                splits = self._splits_at(u, destination)
                if splits:
                    # Splits visible: apply the paper's superseding
                    # rule (step 3) over the full ordered safe set.
                    pick = self._superseded_pick(
                        row,
                        xu,
                        yu,
                        xd,
                        yd,
                        k if quadrant_scope else 0,
                        floor,
                        splits,
                    )
            path.append(pick)
            phases.append(_SAFE)
            length += hyp(xu - xs[pick], yu - ys[pick])
            u = pick
            du = hyp(xs[u] - xd, ys[u] - yd)
            hops += 1
        return self._finish(
            source, destination, path, phases, length, u == destination
        )


_BUILDERS = {
    GreedyRouter: _GreedyExecutor,
    LgfRouter: _LgfExecutor,
    SlgfRouter: _SlgfExecutor,
    Slgf2Router: _Slgf2Executor,
}


def executor_for(router: Router):
    """A batch executor for ``router``, or ``None`` for no fast path.

    ``None`` (sequential fallback) when the scheme has no registered
    executor, when the router is a *subclass* of a known scheme (its
    overridden behaviour must win), or when the graph cannot provide a
    columnar core (hand-built, unsorted adjacency rows).
    """
    builder = _BUILDERS.get(type(router))
    if builder is None:
        return None
    try:
        core = router.graph.core
    except ValueError:
        return None
    return builder(router, core)
