"""One guard for the package's optional scientific dependencies.

numpy (and, for the alpha shape, scipy) are *optional*: every
feature that wants them has an exact dependency-free path, and an
environment without them must degrade predictably — loudly where the
fallback changes results (:func:`repro.geometry.hull.alpha_shape_boundary`),
silently where it only changes speed (the vectorized routing backend
behind ``route_batch(backend="auto")``).

This module is the single place that decides whether numpy exists, so
the guards of independent features cannot drift apart.  Two rules keep
the behaviour testable:

* **No module-level caching.**  :func:`load_numpy` attempts the import
  on every call, so the no-numpy test suites can block the import with
  a ``builtins.__import__`` monkeypatch at any point and every guard
  sees the blocked world.  Long-lived consumers (a batch kernel, a
  core's cached views) hold the returned module themselves; the probe
  is a ``sys.modules`` hit when numpy is importable, which is cheap.
* **Requirement errors are one type.**  :class:`MissingDependencyError`
  subclasses ``ImportError``, so callers can catch either the specific
  contract ("this feature needs numpy") or the general condition.
"""

from __future__ import annotations

__all__ = ["MissingDependencyError", "load_numpy", "require_numpy"]


class MissingDependencyError(ImportError):
    """An optional dependency is required for the requested feature."""


def load_numpy():
    """The ``numpy`` module, or ``None`` when it cannot be imported.

    Use for features that *degrade* without numpy (e.g. backend
    selection under ``backend="auto"``).  Callers that cannot degrade
    want :func:`require_numpy` instead.
    """
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def require_numpy(feature: str):
    """The ``numpy`` module, or :class:`MissingDependencyError`.

    ``feature`` names what the caller was asked to do, so the error
    explains itself at the call site that triggered it::

        np = require_numpy("route_batch(backend='numpy')")
    """
    np = load_numpy()
    if np is None:
        raise MissingDependencyError(
            f"{feature} requires numpy, which is not installed; "
            "install numpy or use the scalar path"
        )
    return np
