"""repro — reproduction of "A Straightforward Path Routing in Wireless
Ad Hoc Sensor Networks" (Jiang, Ma, Lou, Wu — ICDCS Workshops 2009).

The package rebuilds the paper's entire stack in Python:

* :mod:`repro.geometry` — planar geometry substrate;
* :mod:`repro.network` — unit-disk WASNs, deployments (IA/FA),
  planarization, failures;
* :mod:`repro.core` — the safety information model (Definition 1,
  Algorithm 2, critical/forbidden regions);
* :mod:`repro.routing` — GF, LGF, SLGF and SLGF2 (Algorithm 3);
* :mod:`repro.protocols` — the round-based message-passing kernel,
  distributed information construction, BOUNDHOLE;
* :mod:`repro.experiments` — the Section 5 evaluation harness
  (Figs. 5-7);
* :mod:`repro.analysis` / :mod:`repro.viz` — statistics, oracles and
  terminal rendering.

Quickstart::

    import random
    from repro import (
        InformationModel, Rect, Slgf2Router, build_unit_disk_graph,
    )
    from repro.network import EdgeDetector, UniformDeployment

    rng = random.Random(7)
    area = Rect(0, 0, 200, 200)
    positions = UniformDeployment(area).sample(400, rng)
    graph = EdgeDetector().apply(build_unit_disk_graph(positions, 20.0))
    model = InformationModel.build(graph)
    result = Slgf2Router(model).route(0, 42)
    print(result.delivered, result.hops, result.length)
"""

from repro.core import InformationModel, SafetyModel, ShapeModel
from repro.geometry import Point, Rect
from repro.network import WasnGraph, build_unit_disk_graph
from repro.routing import (
    GreedyRouter,
    LgfRouter,
    RouteResult,
    Router,
    SlgfRouter,
    Slgf2Router,
)

__version__ = "1.1.0"

# Facade names resolve lazily (PEP 562): the facade pulls in the whole
# experiments harness, and `import repro` for geometry/routing alone
# should not pay for it.
_API_EXPORTS = frozenset(
    {"RouteSet", "Scenario", "Session", "register_router", "run_scenario"}
)


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "GreedyRouter",
    "InformationModel",
    "LgfRouter",
    "Point",
    "Rect",
    "RouteResult",
    "RouteSet",
    "Router",
    "SafetyModel",
    "Scenario",
    "Session",
    "ShapeModel",
    "SlgfRouter",
    "Slgf2Router",
    "WasnGraph",
    "build_unit_disk_graph",
    "register_router",
    "run_scenario",
    "__version__",
]
