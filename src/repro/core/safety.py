"""The safety information model — Definition 1 and its labeling process.

    "Initially, each healthy node ``u`` sets its status ``S_i(u)`` to 1
    (1 <= i <= 4) where '1' (or '0') stands for the safe (or unsafe)
    status.  Any status, say ``S_i(u)``, will change to unsafe if there
    is no type-``i`` safe neighbor in the type-``i`` forwarding zone;
    that is, for all ``v`` in ``N(u) ∩ Q_i(u)``, ``S_i(v) = 0``.  The
    connected unsafe nodes constitute an unsafe area."  (Definition 1.)

    "In our labeling process, each edge node will always keep its
    status tuple as (1, 1, 1, 1)."  (Section 3.)

This module computes the stabilised labels centrally (the reference
implementation; the message-passing version in
:mod:`repro.protocols.safety_protocol` must agree with it, and a test
asserts that).  The labeling is a *greatest fixed point*: starting from
all-safe, statuses only ever flip safe -> unsafe, so a worklist pass
converges in O(edges) per type regardless of propagation order — the
order-independence that makes the paper's distributed construction
well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.zones import ZONE_TYPES, ZoneType, forwarding_zone_contains
from repro.network import construct as _construct
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["SafetyModel", "compute_safety"]


@dataclass(frozen=True)
class SafetyModel:
    """Stabilised safety statuses for every node and zone type.

    ``statuses[u]`` is the paper's safety tuple ``(S_1(u), S_2(u),
    S_3(u), S_4(u))`` with ``True`` = safe.
    """

    graph: WasnGraph
    statuses: dict[NodeId, tuple[bool, bool, bool, bool]]
    rounds: int

    def is_safe(self, u: NodeId, zone_type: ZoneType) -> bool:
        """``S_i(u) = 1`` — is ``u`` safe for type-``i`` forwarding?"""
        return self.statuses[u][zone_type - 1]

    def tuple_of(self, u: NodeId) -> tuple[bool, bool, bool, bool]:
        """The full safety tuple of ``u``."""
        return self.statuses[u]

    def is_safe_any(self, u: NodeId) -> bool:
        """Does ``u`` have *some* safe type (``∃i: S_i(u) > 0``)?

        Algorithm 3's backup-path phase forwards through such nodes.
        """
        return any(self.statuses[u])

    def is_fully_unsafe(self, u: NodeId) -> bool:
        """Safety tuple ``(0, 0, 0, 0)`` — the perimeter-phase trigger.

        "When the source or the destination has the safety tuple
        (0, 0, 0, 0), the network may have disconnected." (Section 4.)
        """
        return not self.is_safe_any(u)

    def unsafe_nodes(self, zone_type: ZoneType) -> set[NodeId]:
        """All type-``i`` unsafe nodes."""
        return {
            u
            for u, status in self.statuses.items()
            if not status[zone_type - 1]
        }

    def unsafe_areas(self, zone_type: ZoneType) -> list[set[NodeId]]:
        """Connected groups of type-``i`` unsafe nodes.

        "The connected unsafe nodes constitute an unsafe area"
        (Definition 1): connectivity is via ordinary graph edges,
        restricted to nodes that are type-``i`` unsafe.  Areas are
        returned largest-first (ties by smallest member) for
        deterministic reporting.
        """
        remaining = self.unsafe_nodes(zone_type)
        areas: list[set[NodeId]] = []
        while remaining:
            start = min(remaining)
            area = {start}
            remaining.discard(start)
            frontier = [start]
            while frontier:
                w = frontier.pop()
                for v in self.graph.neighbors(w):
                    if v in remaining:
                        remaining.discard(v)
                        area.add(v)
                        frontier.append(v)
            areas.append(area)
        areas.sort(key=lambda a: (-len(a), min(a)))
        return areas

    def stuck_nodes(self, zone_type: ZoneType) -> set[NodeId]:
        """Type-``i`` unsafe nodes with an *empty* ``N(u) ∩ Q_i(u)``.

        These are the local minima themselves — the nodes at which a
        type-``i`` forwarding has no candidate at all.  Other unsafe
        nodes merely *lead to* stuck nodes ("their type-1 forwarding
        successors are all stuck nodes", Fig. 3 discussion).
        """
        out: set[NodeId] = set()
        for u in self.graph.node_ids:
            if self.is_safe(u, zone_type):
                continue
            pu = self.graph.position(u)
            if not any(
                forwarding_zone_contains(pu, zone_type, self.graph.position(v))
                for v in self.graph.neighbors(u)
            ):
                out.add(u)
        return out

    def safe_fraction(self, zone_type: ZoneType | None = None) -> float:
        """Fraction of nodes safe for ``zone_type`` (or in all types)."""
        if not self.statuses:
            return 1.0
        if zone_type is None:
            safe = sum(1 for s in self.statuses.values() if all(s))
        else:
            safe = sum(1 for s in self.statuses.values() if s[zone_type - 1])
        return safe / len(self.statuses)


def _quadrant_tables(graph: WasnGraph, np=None):
    """Per-type quadrant membership, forward and reverse.

    ``forward[i-1][u]`` holds the neighbours of ``u`` inside the
    closed quadrant ``Q_i(u)`` (neighbour order preserved);
    ``reverse[i-1][v]`` the nodes whose ``Q_i`` contains ``v``.  The
    sweep runs on the graph's columnar core — one coordinate-difference
    per directed edge classifies all four quadrants at once — and
    falls back to the object API for graphs without a core.  With
    ``np`` (the resolved numpy module) the classification runs as the
    vectorized kernel of :mod:`repro.network.construct` instead of the
    per-edge branch loop.  Every path yields identical tables (the
    cross-backend differential suite pins the numpy kernel against
    this scalar sweep).
    """
    node_ids = graph.node_ids
    try:
        core = graph.core
    except ValueError:
        core = None
    if core is not None and np is not None:
        return _construct.quadrant_tables(
            np,
            core.ids,
            np.frombuffer(core.xs, dtype=np.float64),
            np.frombuffer(core.ys, dtype=np.float64),
            np.frombuffer(core.indptr, dtype=np.int64),
            np.frombuffer(core.indices, dtype=np.int64),
        )
    forward: list[dict[NodeId, tuple[NodeId, ...]]] = [{} for _ in ZONE_TYPES]
    reverse: list[dict[NodeId, list[NodeId]]] = [
        {u: [] for u in node_ids} for _ in ZONE_TYPES
    ]
    if core is not None:
        xs, ys = core.coords_by_id()
        rows = core.rows_by_id()
        for u in node_ids:
            xu = xs[u]
            yu = ys[u]
            in1: list[NodeId] = []
            in2: list[NodeId] = []
            in3: list[NodeId] = []
            in4: list[NodeId] = []
            for v in rows[u]:
                dx = xs[v] - xu
                dy = ys[v] - yu
                if dx > 0.0:
                    if dy >= 0.0:
                        in1.append(v)
                        if dy <= 0.0:
                            in4.append(v)
                    else:
                        in4.append(v)
                elif dx < 0.0:
                    if dy >= 0.0:
                        in2.append(v)
                        if dy <= 0.0:
                            in3.append(v)
                    else:
                        in3.append(v)
                else:  # dx == 0: coincident or on the vertical boundary
                    if dy > 0.0:
                        in1.append(v)
                        in2.append(v)
                    elif dy < 0.0:
                        in3.append(v)
                        in4.append(v)
                    # dy == 0: v sits exactly at u's position — a
                    # member of no forwarding zone, like the object
                    # path's ``p == u`` exclusion.
            for index, inside in enumerate((in1, in2, in3, in4)):
                forward[index][u] = tuple(inside)
                rev = reverse[index]
                for v in inside:
                    rev[v].append(u)
        return forward, reverse
    positions = {u: graph.position(u) for u in node_ids}
    for index, zone_type in enumerate(ZONE_TYPES):
        fwd = forward[index]
        rev = reverse[index]
        for u in node_ids:
            pu = positions[u]
            inside = tuple(
                v
                for v in graph.neighbors(u)
                if forwarding_zone_contains(pu, zone_type, positions[v])
            )
            fwd[u] = inside
            for v in inside:
                rev[v].append(u)
    return forward, reverse


def compute_safety(graph: WasnGraph, backend: str = "auto") -> SafetyModel:
    """Run the labeling process of Definition 1 to its fixed point.

    Edge nodes (``graph.is_edge_node``) are pinned to (1, 1, 1, 1);
    every other node starts all-safe and flips type-by-type whenever
    its forwarding zone holds no safe neighbour of that type.  A node
    with *no* neighbour in ``Q_i(u)`` is vacuously unsafe — that is the
    local-minimum case itself.

    ``rounds`` reports how many synchronous rounds the equivalent
    round-based process would need (the longest propagation chain),
    which the construction-cost benchmarks compare against BOUNDHOLE.

    ``backend`` selects the implementation: ``"numpy"`` runs both the
    quadrant classification *and* the synchronous fixed-point
    iteration as the vectorized kernel
    :func:`repro.network.construct.safety_labels` (raising
    :class:`~repro._optional.MissingDependencyError` without numpy),
    ``"auto"`` (default) does so when numpy is importable and silently
    falls back otherwise, ``"scalar"`` forces the per-edge reference
    sweep and the worklist below.  Graphs without a columnar core
    always use the reference path.  Statuses and the round count are
    identical across backends — the sign tests of the classification
    carry no rounding and the worklist's round-``k`` frontier *is* the
    synchronous round-``k`` flip set — and the cross-backend
    differential suite pins both.
    """
    np = _construct.resolve_backend(
        backend, "compute_safety(backend='numpy')"
    )
    node_ids = graph.node_ids
    if np is not None:
        try:
            core = graph.core
        except ValueError:
            core = None
        if core is not None:
            columns, rounds = _construct.safety_labels(
                np,
                np.frombuffer(core.xs, dtype=np.float64),
                np.frombuffer(core.ys, dtype=np.float64),
                np.frombuffer(core.indptr, dtype=np.int64),
                np.frombuffer(core.indices, dtype=np.int64),
                core.edge_flags,
            )
            c1, c2, c3, c4 = columns
            statuses = {
                u: (c1[i], c2[i], c3[i], c4[i])
                for i, u in enumerate(node_ids)
            }
            return SafetyModel(
                graph=graph, statuses=statuses, rounds=rounds
            )
    # status[i-1][u] — mutable working state per type.
    status: list[dict[NodeId, bool]] = [
        {u: True for u in node_ids} for _ in ZONE_TYPES
    ]

    # Precompute quadrant neighbour lists once per type: the labeling
    # only ever asks "which neighbours of u lie in Q_i(u)" and the
    # reverse "which nodes have u in their Q_i".
    quadrant_neighbors, reverse_quadrant = _quadrant_tables(graph, np=np)

    total_rounds = 0
    for index, zone_type in enumerate(ZONE_TYPES):
        forward = quadrant_neighbors[index]
        reverse = reverse_quadrant[index]
        st = status[index]

        def becomes_unsafe(u: NodeId) -> bool:
            if graph.is_edge_node(u):
                return False  # pinned (1,1,1,1)
            return not any(st[v] for v in forward[u])

        # Round-structured worklist: "frontier" holds the nodes that
        # flipped in the previous round; only their reverse-quadrant
        # dependents can flip next.  Counting the rounds this way gives
        # exactly the synchronous-round count of Definition 1.
        frontier = {u for u in node_ids if st[u] and becomes_unsafe(u)}
        rounds = 0
        while frontier:
            rounds += 1
            for u in frontier:
                st[u] = False
            next_frontier: set[NodeId] = set()
            for u in frontier:
                for w in reverse[u]:
                    if st[w] and becomes_unsafe(w):
                        next_frontier.add(w)
            frontier = next_frontier
        total_rounds = max(total_rounds, rounds)

    statuses = {
        u: (status[0][u], status[1][u], status[2][u], status[3][u])
        for u in node_ids
    }
    return SafetyModel(graph=graph, statuses=statuses, rounds=total_rounds)
