"""Request zones and forwarding zones (LAR scheme 1).

Section 3 of the paper:

    "Rectangle ``[x_u : x_d, y_u : y_d]`` has both ``u`` and ``d`` at
    the opposite corners.  It is also called the *request zone* of node
    ``u`` in LAR scheme 1.  The request zones with respect to ``d`` in
    quadrants I, II, III, and IV are of types 1, 2, 3, and 4, denoted
    by ``Z_i(u, d)``.  Respectively, each corresponding quadrant is
    called a *type-i forwarding zone*, denoted by ``Q_i(u)``."

Conventions fixed here (and relied on everywhere above):

* Quadrant numbering is the standard counter-clockwise one: type 1 =
  north-east, 2 = north-west, 3 = south-west, 4 = south-east.
* Quadrants are **closed**: a point due east of ``u`` belongs to both
  ``Q_1(u)`` and ``Q_4(u)``.  Membership tests therefore accept the
  boundary, while :func:`zone_type_of` breaks boundary ties
  deterministically (toward the counter-clockwise-first type) so the
  "type of the request zone" is always a single number.
* Request zones are closed rectangles.
"""

from __future__ import annotations

import math

from repro.geometry import Point, Rect

__all__ = [
    "ZoneType",
    "ZONE_TYPES",
    "forwarding_zone_contains",
    "opposite_zone_type",
    "quadrant_start_angle",
    "request_zone",
    "zone_type_of",
]

ZoneType = int

# All four types, in paper order.
ZONE_TYPES: tuple[ZoneType, ...] = (1, 2, 3, 4)

# The CCW scan of Q_i starts at this angle (the "first" quadrant edge):
# Q_1 spans [0, pi/2], Q_2 spans [pi/2, pi], and so on.
_START_ANGLE = {1: 0.0, 2: math.pi / 2, 3: math.pi, 4: 3 * math.pi / 2}


def zone_type_of(u: Point, d: Point) -> ZoneType:
    """The type of the request zone of ``u`` with respect to ``d``.

    Determined by the quadrant of ``d`` relative to ``u``.  Boundary
    ties (``d`` exactly north, south, east or west of ``u``) resolve to
    the type whose quadrant has that ray as its *starting* (clockwise)
    edge — e.g. due east is type 1, due north type 2 — which keeps the
    mapping total and deterministic.  ``d == u`` is a caller error
    (routing terminates before asking for a zone type at ``d``).
    """
    if u == d:
        raise ValueError("zone type undefined for coincident points")
    dx = d.x - u.x
    dy = d.y - u.y
    if dx > 0 and dy >= 0:
        return 1
    if dx <= 0 and dy > 0:
        return 2
    if dx < 0 and dy <= 0:
        return 3
    return 4  # dx >= 0 and dy < 0


def opposite_zone_type(k: ZoneType) -> ZoneType:
    """The paper's ``k' = (k + 2) Mod 4`` with ``1 <= k' <= 4``.

    If ``d`` lies in quadrant ``k`` of ``u``, then ``u`` lies in
    quadrant ``k'`` of ``d``; Algorithm 3's safe-forwarding condition
    checks the destination's safety in this reverse type.
    """
    _check_type(k)
    return ((k + 1) % 4) + 1


def request_zone(u: Point, d: Point) -> Rect:
    """``Z_k(u, d)`` — the rectangle with ``u`` and ``d`` at opposite corners."""
    return Rect.from_corners(u, d)


def forwarding_zone_contains(u: Point, zone_type: ZoneType, p: Point) -> bool:
    """Is ``p`` inside the (closed) type-``i`` forwarding zone ``Q_i(u)``?

    ``u`` itself is *not* a member of its own forwarding zone: the zone
    is where successors live, and self-forwarding is meaningless.
    """
    _check_type(zone_type)
    if p == u:
        return False
    dx = p.x - u.x
    dy = p.y - u.y
    if zone_type == 1:
        return dx >= 0 and dy >= 0
    if zone_type == 2:
        return dx <= 0 and dy >= 0
    if zone_type == 3:
        return dx <= 0 and dy <= 0
    return dx >= 0 and dy <= 0


def quadrant_start_angle(zone_type: ZoneType) -> float:
    """Angle at which the CCW scan of ``Q_i`` begins (Algorithm 2 step 3)."""
    _check_type(zone_type)
    return _START_ANGLE[zone_type]


def _check_type(zone_type: ZoneType) -> None:
    if zone_type not in ZONE_TYPES:
        raise ValueError(f"zone type must be 1..4, got {zone_type}")
