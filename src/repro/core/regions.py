"""Critical and forbidden regions — contribution (a) of the paper.

    "Considering the relative locations of the destination and unsafe
    areas, the whole forwarding zone is divided into the critical and
    forbidden regions. ... According to ``E_i(v) : [x_v : x_v(1), y_v :
    y_v(2)]``, ``Q_i(v)`` is divided by the ray ``(x_v, y_v)(x_v(1),
    y_v(2))`` into two parts.  The region with ``d`` is called critical
    region and the other is called forbidden region. ... The access of
    forbidden region will be avoided when the destination is inside the
    critical region."  (Sections 1 and 4.)

The divider is the ray from the unsafe node ``v`` through the far
corner of its estimated rectangle.  Which side a point falls on is a
single cross-product sign; the routing layer uses three verdicts:

* the **side** of the destination (picks the hand rule: go around the
  estimated rectangle on the destination's side);
* whether a **candidate** successor sits in the forbidden region while
  the destination sits in the critical one (then the candidate is
  deprioritised — the "superseding rule" of Algorithm 3 step 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.shape import ShapeModel
from repro.core.zones import ZoneType, forwarding_zone_contains
from repro.geometry import Point
from repro.network.node import NodeId

__all__ = ["Hand", "RegionSplit", "region_split_for"]


class Hand(Enum):
    """Which hand rule a detour should commit to.

    ``RIGHT`` is the paper's counter-clockwise ray rotation; ``LEFT``
    the clockwise one.  Algorithm 3: "once a certain hand-rule is
    applied, the routing will keep using the same hand-rule until it
    escapes from the unsafe area" — the enum value travels with the
    packet to enforce that.
    """

    RIGHT = "right"  # counter-clockwise sweep
    LEFT = "left"  # clockwise sweep

    def flipped(self) -> "Hand":
        """The opposite hand."""
        return Hand.LEFT if self is Hand.RIGHT else Hand.RIGHT


@dataclass(frozen=True, slots=True)
class RegionSplit:
    """The critical/forbidden split induced by one unsafe neighbour.

    ``anchor`` is the unsafe node ``v``; ``corner`` the far corner of
    ``E_i(v)``; ``zone_type`` the type of the unsafe area.  The
    destination's side of the divider ray is cached in
    ``destination_side`` (+1 = counter-clockwise side, -1 = clockwise
    side, 0 = on the ray).
    """

    anchor: NodeId
    anchor_position: Point
    corner: Point
    zone_type: ZoneType
    destination_side: int

    def side_of(self, p: Point) -> int:
        """Sign of ``p`` relative to the divider ray (cross product)."""
        return _side(self.anchor_position, self.corner, p)

    def in_forbidden_region(self, p: Point) -> bool:
        """Is ``p`` in the forbidden region of this unsafe area?

        Only points inside ``Q_i(v)`` are part of either region; the
        forbidden region is the side of the divider *away* from the
        destination.  When the destination sits exactly on the divider
        (side 0) nothing is forbidden — there is no "other" side to
        avoid.
        """
        if self.destination_side == 0:
            return False
        if not forwarding_zone_contains(
            self.anchor_position, self.zone_type, p
        ):
            return False
        return self.side_of(p) == -self.destination_side

    def preferred_hand(self) -> Hand:
        """The hand rule that goes around the rectangle on ``d``'s side.

        The right-hand rule rotates rays counter-clockwise, walking the
        detour onto the counter-clockwise side of the divider; so a
        destination on that side (+1) chooses RIGHT, the other side
        LEFT.  A destination exactly on the divider defaults to RIGHT
        (the paper's base rule is the right-hand one).
        """
        return Hand.LEFT if self.destination_side < 0 else Hand.RIGHT


def _side(origin: Point, along: Point, p: Point) -> int:
    cross = (along - origin).cross(p - origin)
    if cross > 1e-12:
        return 1
    if cross < -1e-12:
        return -1
    return 0


def region_split_for(
    shapes: ShapeModel,
    unsafe_neighbor: NodeId,
    zone_type: ZoneType,
    destination: Point,
) -> RegionSplit | None:
    """Build the critical/forbidden split for one unsafe neighbour.

    Returns ``None`` when the neighbour carries no shape record for the
    type (i.e. it is safe in that type) or when its estimated rectangle
    is degenerate (a stuck node with an empty quadrant — a point-sized
    rectangle has no meaningful divider).
    """
    info = shapes.shape(unsafe_neighbor, zone_type)
    if info is None:
        return None
    corner = shapes.far_corner(unsafe_neighbor, zone_type)
    anchor_position = shapes.graph.position(unsafe_neighbor)
    if corner is None or corner == anchor_position:
        return None
    return RegionSplit(
        anchor=unsafe_neighbor,
        anchor_position=anchor_position,
        corner=corner,
        zone_type=zone_type,
        destination_side=_side(anchor_position, corner, destination),
    )
