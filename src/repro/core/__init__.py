"""The paper's primary contribution: the safety information model.

Layout of Section 3 and the first half of Section 4 onto modules:

* :mod:`~repro.core.zones` — request zones ``Z_i(u, d)`` and
  forwarding zones ``Q_i(u)`` (LAR scheme 1 machinery);
* :mod:`~repro.core.safety` — Definition 1's labeling process and the
  stabilised :class:`~repro.core.safety.SafetyModel`;
* :mod:`~repro.core.shape` — Algorithm 2's estimated shape information
  ``E_i(u)`` with the ``u^(1)``/``u^(2)`` chain propagation;
* :mod:`~repro.core.regions` — the critical/forbidden split of a
  forwarding zone and the either-hand rule's hand choice;
* :mod:`~repro.core.model` — :class:`~repro.core.model.InformationModel`,
  the facade the routers consume.
"""

from repro.core.model import InformationModel
from repro.core.regions import Hand, RegionSplit, region_split_for
from repro.core.safety import SafetyModel, compute_safety
from repro.core.shape import ShapeInfo, ShapeModel, compute_shapes
from repro.core.zones import (
    ZONE_TYPES,
    ZoneType,
    forwarding_zone_contains,
    opposite_zone_type,
    quadrant_start_angle,
    request_zone,
    zone_type_of,
)

__all__ = [
    "Hand",
    "InformationModel",
    "RegionSplit",
    "SafetyModel",
    "ShapeInfo",
    "ShapeModel",
    "ZONE_TYPES",
    "ZoneType",
    "compute_safety",
    "compute_shapes",
    "forwarding_zone_contains",
    "opposite_zone_type",
    "quadrant_start_angle",
    "region_split_for",
    "request_zone",
    "zone_type_of",
]
