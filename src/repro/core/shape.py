"""Estimated shape information — Algorithm 2 and Theorem 2.

Each type-``i`` unsafe node ``u`` summarises the unsafe area beyond it
as a rectangle.  The paper (Section 3, detailed for type 1):

    "Rotate a ray from ``u`` scanning ``G_i(u)`` counter-clockwise.  We
    denote that ``u^(1)`` and ``u^(2)`` are the farthest nodes that can
    be reached on the first and the last greedy forwarding paths. ...
    the shape of unsafe area can simply be represented by ``E_i(u)``:
    ``[x_u : x_u(1), y_u : y_u(2)]``."

    (Algorithm 2 step 3:) "For an unsafe node, say type-``i`` unsafe,
    set ``u^(1) = u^(2) = u`` if ``N(u) ∩ Q_i(u) = ∅``.  Otherwise,
    ``u^(1) = v_1^(1)`` and ``u^(2) = v_2^(2)``, where ``v_1`` and
    ``v_2`` are the first and the last type-``i`` unsafe neighbors hit
    by a ray from ``u`` when scanning ``Q_i(u)`` in counter-clockwise
    order."

Generalisation to types 2-4 (the paper works type 1 only): the CCW
scan of ``Q_i`` starts at the quadrant's clockwise edge.  The *first*
chain therefore hugs one axis of the quadrant and the *last* chain the
other.  Whichever chain hugs the **horizontal** quadrant edge supplies
the x-extent of ``E_i(u)``; the chain hugging the **vertical** edge
supplies the y-extent.  For type 1 (scan starts at the east axis) the
first chain is horizontal-hugging, which reproduces the paper's
``[x_u : x_u(1), y_u : y_u(2)]`` exactly; for types 2 and 4 the roles
swap because the scan starts at a vertical edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.safety import SafetyModel
from repro.core.zones import (
    ZONE_TYPES,
    ZoneType,
    forwarding_zone_contains,
    quadrant_start_angle,
)
from repro.geometry import Point, Rect
from repro.geometry.angles import sort_ccw
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["ShapeInfo", "ShapeModel", "compute_shapes"]


@dataclass(frozen=True, slots=True)
class ShapeInfo:
    """Per-node estimated shape record for one zone type.

    ``first_far`` is the paper's ``u^(1)`` (far node of the chain that
    the CCW scan hits first), ``last_far`` is ``u^(2)``.  ``rect`` is
    the estimated unsafe-area rectangle ``E_i(u)`` anchored at ``u``.
    """

    node: NodeId
    zone_type: ZoneType
    first_far: NodeId
    last_far: NodeId
    rect: Rect


# For these scan-start edges the *first* chain hugs the horizontal
# axis (so u^(1) provides the x-extent); for the others the roles swap.
_FIRST_CHAIN_IS_HORIZONTAL = {1: True, 2: False, 3: True, 4: False}


def _chain_sort_key(zone_type: ZoneType, p: Point) -> float:
    """Strictly increasing along any type-``i`` forwarding step.

    A successor ``v ∈ Q_i(u)`` with ``v != u`` strictly increases this
    key, so processing unsafe nodes in *descending* key order
    guarantees each node's scan targets are already resolved — an
    iterative stand-in for the paper's "propagate along the chain"
    recursion.
    """
    if zone_type == 1:
        return p.x + p.y
    if zone_type == 2:
        return p.y - p.x
    if zone_type == 3:
        return -(p.x + p.y)
    return p.x - p.y


@dataclass(frozen=True)
class ShapeModel:
    """Estimated shape information for every unsafe node and type."""

    graph: WasnGraph
    safety: SafetyModel
    shapes: dict[ZoneType, dict[NodeId, ShapeInfo]]

    def shape(self, u: NodeId, zone_type: ZoneType) -> ShapeInfo | None:
        """The shape record of ``u`` for ``zone_type`` (None when safe)."""
        return self.shapes[zone_type].get(u)

    def estimated_area(self, u: NodeId, zone_type: ZoneType) -> Rect | None:
        """``E_i(u)`` — the estimated unsafe-area rectangle at ``u``."""
        info = self.shapes[zone_type].get(u)
        return info.rect if info else None

    def far_corner(self, u: NodeId, zone_type: ZoneType) -> Point | None:
        """The corner ``(x_u(1), y_u(2))`` that the divider ray passes
        through (Section 4: the critical/forbidden split).

        Equivalently: the corner of ``E_i(u)`` diagonally opposite the
        anchor ``u``, i.e. the one pointing *into* the forwarding
        quadrant — a formulation that works for any shape mode.
        """
        info = self.shapes[zone_type].get(u)
        if info is None:
            return None
        rect = info.rect
        if zone_type == 1:
            return Point(rect.x_max, rect.y_max)
        if zone_type == 2:
            return Point(rect.x_min, rect.y_max)
        if zone_type == 3:
            return Point(rect.x_min, rect.y_min)
        return Point(rect.x_max, rect.y_min)

    def greedy_region(self, u: NodeId, zone_type: ZoneType) -> set[NodeId]:
        """``G_i(u)`` — unsafe nodes reachable from ``u`` by type-``i``
        forwarding through unsafe nodes (used for validation; Theorem 2
        claims ``E_i(u)`` estimates this region's extent)."""
        if self.safety.is_safe(u, zone_type):
            return set()
        region = {u}
        frontier = [u]
        while frontier:
            w = frontier.pop()
            pw = self.graph.position(w)
            for v in self.graph.neighbors(w):
                if v in region:
                    continue
                if not forwarding_zone_contains(
                    pw, zone_type, self.graph.position(v)
                ):
                    continue
                # All quadrant neighbours of an unsafe node are unsafe
                # (Definition 1), so membership is guaranteed; assert
                # stays as an internal consistency check.
                region.add(v)
                frontier.append(v)
        return region


def compute_shapes(safety: SafetyModel, mode: str = "chain") -> ShapeModel:
    """Estimated shape information for every unsafe node of every type.

    ``mode="chain"`` (default) is the paper's Algorithm 2 step 3: the
    rectangle spans the far nodes of the *first* and *last* scan
    chains.  Nodes are processed in descending chain order (see
    :func:`_chain_sort_key`) so that the far-node references
    ``u^(1) = v_1^(1)`` and ``u^(2) = v_2^(2)`` are resolved before
    they are needed.  Nodes at exactly coincident positions would form
    a two-cycle in the chain relation; the tie falls back to the
    neighbour node itself, keeping the construction total.

    ``mode="exact"`` realises the paper's future-work item "a further
    study on more accurate information for unsafe areas": the
    rectangle becomes the exact bounding box of the greedy region
    ``G_i(u)``, computed by the same chain-order pass (box(u) = u's
    position joined with the boxes of its unsafe quadrant neighbours —
    the extra cost over the chain mode is only the per-node box join,
    still one linear pass).  Theorem 2's containment then holds by
    construction instead of approximately.
    """
    if mode not in ("chain", "exact"):
        raise ValueError(
            f"unknown shape mode {mode!r}; expected 'chain' or 'exact'"
        )
    graph = safety.graph
    shapes: dict[ZoneType, dict[NodeId, ShapeInfo]] = {}
    for zone_type in ZONE_TYPES:
        per_node: dict[NodeId, ShapeInfo] = {}
        unsafe = safety.unsafe_nodes(zone_type)
        start_angle = quadrant_start_angle(zone_type)
        ordered = sorted(
            unsafe,
            key=lambda u: (
                -_chain_sort_key(zone_type, graph.position(u)),
                u,
            ),
        )
        for u in ordered:
            pu = graph.position(u)
            in_quadrant = [
                v
                for v in graph.neighbors(u)
                if forwarding_zone_contains(pu, zone_type, graph.position(v))
            ]
            if not in_quadrant:
                first_far = last_far = u
            else:
                scan = sort_ccw(
                    pu, start_angle, in_quadrant, graph.position
                )
                v1, v2 = scan[0], scan[-1]
                # v's record exists unless v coincides with u (degenerate
                # duplicate-position tie) — fall back to v itself then.
                v1_info = per_node.get(v1)
                v2_info = per_node.get(v2)
                first_far = v1_info.first_far if v1_info else v1
                last_far = v2_info.last_far if v2_info else v2

            if mode == "exact":
                # Bounding box of G_i(u): own position joined with the
                # (already computed) boxes of all unsafe quadrant
                # successors.
                rect = Rect.from_corners(pu, pu)
                for v in in_quadrant:
                    v_info = per_node.get(v)
                    if v_info is not None:
                        rect = rect.union_bounds(v_info.rect)
                    else:
                        rect = rect.union_bounds(
                            Rect.from_corners(
                                graph.position(v), graph.position(v)
                            )
                        )
            elif _FIRST_CHAIN_IS_HORIZONTAL[zone_type]:
                corner = Point(
                    graph.position(first_far).x, graph.position(last_far).y
                )
                rect = Rect.from_corners(pu, corner)
            else:
                corner = Point(
                    graph.position(last_far).x, graph.position(first_far).y
                )
                rect = Rect.from_corners(pu, corner)
            per_node[u] = ShapeInfo(
                node=u,
                zone_type=zone_type,
                first_far=first_far,
                last_far=last_far,
                rect=rect,
            )
        shapes[zone_type] = per_node
    return ShapeModel(graph=graph, safety=safety, shapes=shapes)
