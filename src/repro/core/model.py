"""The information model facade: safety labels + shape estimates.

Routers need the whole of Section 3 — the stabilised safety statuses
*and* the estimated shape rectangles — plus the graph they were
computed from.  :class:`InformationModel` bundles those, so the rest of
the code base passes one object around and cannot accidentally pair a
safety model with the shapes of a different network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.regions import RegionSplit, region_split_for
from repro.core.safety import SafetyModel, compute_safety
from repro.core.shape import ShapeModel, compute_shapes
from repro.core.zones import ZONE_TYPES, ZoneType
from repro.geometry import Point, Rect
from repro.network.graph import WasnGraph
from repro.network.node import NodeId

__all__ = ["InformationModel"]


@dataclass(frozen=True)
class InformationModel:
    """Everything an information-based router consults at a node."""

    graph: WasnGraph
    safety: SafetyModel
    shapes: ShapeModel
    #: How the shapes were estimated — recorded so :meth:`rebuild`
    #: can re-run the identical construction on an updated graph.
    shape_mode: str = "chain"

    @classmethod
    def build(
        cls,
        graph: WasnGraph,
        shape_mode: str = "chain",
        backend: str = "auto",
    ) -> "InformationModel":
        """Construct the full model for ``graph`` (Definition 1 +
        Algorithm 2).

        ``shape_mode="exact"`` swaps Algorithm 2's chain estimate for
        the exact greedy-region bounding boxes — the paper's
        future-work item on "more accurate information for unsafe
        areas" (see :func:`repro.core.shape.compute_shapes`).

        ``backend`` is forwarded to :func:`~repro.core.safety.compute_safety`
        (vectorized quadrant classification); it cannot change any
        value in the model.
        """
        safety = compute_safety(graph, backend=backend)
        shapes = compute_shapes(safety, mode=shape_mode)
        return cls(
            graph=graph,
            safety=safety,
            shapes=shapes,
            shape_mode=shape_mode,
        )

    def rebuild(self, graph: WasnGraph) -> "InformationModel":
        """The same construction — same ``shape_mode`` — over an
        updated graph.  What a router's rebind uses so that a drifted
        topology gets exactly the information a fresh construction
        with the original options would produce."""
        return type(self).build(graph, shape_mode=self.shape_mode)

    # Convenience pass-throughs used heavily by the routers -----------

    def is_safe(self, u: NodeId, zone_type: ZoneType) -> bool:
        """``S_i(u)`` — see :meth:`SafetyModel.is_safe`."""
        return self.safety.is_safe(u, zone_type)

    def is_safe_any(self, u: NodeId) -> bool:
        """Some-type safety — see :meth:`SafetyModel.is_safe_any`."""
        return self.safety.is_safe_any(u)

    def is_fully_unsafe(self, u: NodeId) -> bool:
        """Tuple (0,0,0,0) — see :meth:`SafetyModel.is_fully_unsafe`."""
        return self.safety.is_fully_unsafe(u)

    def estimated_area(self, u: NodeId, zone_type: ZoneType) -> Rect | None:
        """``E_i(u)`` — see :meth:`ShapeModel.estimated_area`."""
        return self.shapes.estimated_area(u, zone_type)

    def region_split(
        self, unsafe_neighbor: NodeId, zone_type: ZoneType, destination: Point
    ) -> RegionSplit | None:
        """Critical/forbidden split — see :func:`region_split_for`."""
        return region_split_for(
            self.shapes, unsafe_neighbor, zone_type, destination
        )

    def known_unsafe_rects(self, u: NodeId) -> list[Rect]:
        """Estimated rectangles visible from ``u``: its own and its
        unsafe neighbours', over all types.

        SLGF2's bounded perimeter phase routes "in the area that covers
        all four E areas" — this is that collection, gathered exactly
        the way a real node would (from its own state and its
        neighbours' broadcasts)."""
        rects: list[Rect] = []
        for zone_type in ZONE_TYPES:
            own = self.shapes.estimated_area(u, zone_type)
            if own is not None:
                rects.append(own)
            for v in self.graph.neighbors(u):
                theirs = self.shapes.estimated_area(v, zone_type)
                if theirs is not None:
                    rects.append(theirs)
        return rects
