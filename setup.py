"""Setuptools shim.

All project metadata lives in ``pyproject.toml``.  This file exists only
so that ``pip install -e .`` works on offline environments whose pip
cannot build PEP 517 editable wheels (no ``wheel`` package available):
``pip install -e . --no-build-isolation --no-use-pep517`` takes the
legacy ``setup.py develop`` path through this shim.
"""

from setuptools import setup

setup()
