"""Packaging for the repro-wasn distribution.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so that
``pip install -e . --no-build-isolation --no-use-pep517`` works on
offline environments whose pip cannot build PEP 517 editable wheels
(no ``wheel`` package available) — the legacy ``setup.py develop``
path needs nothing beyond setuptools itself.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

ROOT = Path(__file__).resolve().parent


def _version() -> str:
    init = (ROOT / "src" / "repro" / "__init__.py").read_text(
        encoding="utf-8"
    )
    match = re.search(r'^__version__ = "([^"]+)"', init, re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-wasn",
    version=_version(),
    description=(
        "Reproduction of 'A Straightforward Path Routing in Wireless "
        "Ad Hoc Sensor Networks' (ICDCS Workshops 2009)"
    ),
    long_description=(ROOT / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["repro-wasn=repro.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3 :: Only",
        "Topic :: System :: Networking",
        "Topic :: Scientific/Engineering",
    ],
)
